# Convenience targets for the repro project.

.PHONY: install test bench exhibits examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every paper exhibit, printing the renderings.
exhibits:
	pytest benchmarks/ --benchmark-only -s -k "table or figure"

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
