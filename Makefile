# Convenience targets for the repro project.

.PHONY: install test bench bench-quick bench-trend obs-smoke obs-bench profile-bench analytic-bench vector-bench vector-smoke zoo-smoke zoo-bench check-diff check-diff-long exhibits examples serve smoke-service fleet-smoke fleet-bench clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Reduced sweep through the parallel engine + trace store; asserts the
# warm-store path is >=3x faster than a serial cold start and records
# the timings in BENCH_PR1.json for cross-PR perf tracking.
bench-quick:
	PYTHONPATH=src python benchmarks/bench_quick.py

# Cross-PR regression gate: aggregates the committed BENCH_PR*.json
# into per-metric series and fails if any tracked headline metric's
# latest point is >10% worse than its series best (BENCH_TREND.json).
bench-trend:
	PYTHONPATH=src python benchmarks/bench_trend.py

# Telemetry gate (docs/observability.md): a traced quick sweep must
# produce a schema-valid Perfetto trace with one `cell` span per
# executed cell and a manifest whose outcome counts sum to the grid.
obs-smoke:
	PYTHONPATH=src python -m repro.obs.smoke

# Telemetry overhead probe alone (also runs as part of bench-quick):
# traced vs untraced warm sweeps, <=5% overhead, BENCH_PR5.json.
obs-bench:
	PYTHONPATH=src python benchmarks/bench_obs.py

# Analytic Table-4 screen gate: the stack-distance search must agree
# with brute force on every cell while simulating <=25% of the config
# grid; timings land in BENCH_PR4.json (docs/analytic.md).
profile-bench:
	PYTHONPATH=src python benchmarks/bench_profile.py

# PR 8 analytic gate: the combined-locality screen must beat the PR 4
# simulated-config baseline strictly, and every closed-form stream
# sweep's witness replay must land inside its declared error bound;
# results in BENCH_PR8.json (docs/analytic.md).
analytic-bench:
	PYTHONPATH=src python benchmarks/bench_analytic.py

# Vector engine gate alone (also runs as part of bench-quick): scalar
# vs batch l1.simulate span times and the warm jobs=1 sweep wall time,
# bit-identical across engines, BENCH_PR6.json (docs/vectorized.md).
vector-bench:
	PYTHONPATH=src python benchmarks/bench_vector.py

# Vector differ stage on a small corpus: the batch engines of
# repro.sim.vector vs their scalar counterparts, first-diverging-event
# reports (`repro check --replay vector:SEED` reproduces one).
vector-smoke:
	PYTHONPATH=src python -m repro check --seeds 50 --no-registry --stages vector

# Mechanism-zoo differ stages on a small corpus: the production victim
# cache, miss cache and hybrid stacks vs their golden oracles, per-event
# and through run()/replay_secondary() (docs/mechanisms.md).
zoo-smoke:
	PYTHONPATH=src python -m repro check --seeds 50 --no-registry \
		--stages victim,misscache,hybrid

# PR 9 mechanism-zoo gate: the mechzoo exhibit (min matching L2 per
# secondary mechanism) over a reduced slice, cold vs warm store, every
# match witnessed by a probed simulation; results in BENCH_PR9.json.
zoo-bench:
	PYTHONPATH=src python benchmarks/bench_mechzoo.py

# Differential check: optimized simulators vs the golden reference
# models over a fixed random corpus (docs/modeling.md).  Fails on any
# divergence; `repro check --replay STAGE:SEED` reproduces one.
check-diff:
	PYTHONPATH=src python -m repro check --seeds 50

# Extended corpus for pre-release confidence: more seeds, longer traces,
# and the runtime invariants armed throughout.
check-diff-long:
	REPRO_CHECK=1 PYTHONPATH=src python -m repro check --seeds 300 --events 4000 \
		--registry-scale 0.1

# The always-on simulation service (docs/service.md).  Local dev
# defaults: pool of 4 workers sharing a persistent store.
serve:
	PYTHONPATH=src python -m repro serve --port 8077 --jobs 4 \
		--trace-store .trace-store --max-queue 64

# Boot a real `repro serve` subprocess, one request round-trip, SIGINT
# shutdown — the CI service-smoke job runs exactly this.
smoke-service:
	PYTHONPATH=src python -m repro.service.smoke

# Fleet gate (docs/fleet.md): 1 frontend + 2 self-registering worker
# subprocesses, duplicate concurrent sweeps executed exactly once
# cluster-wide, >=2 worker pids in the merged manifest, clean SIGINT.
fleet-smoke:
	PYTHONPATH=src python -m repro.fleet.smoke

# Zipf load generator vs fleets of 0 / 2 / 4 workers; throughput,
# latency percentiles and dedup counters land in BENCH_PR7.json.
# CI runs the reduced profile: make FLEET_BENCH_PROFILE=ci fleet-bench
FLEET_BENCH_PROFILE ?= full
fleet-bench:
	PYTHONPATH=src python benchmarks/bench_fleet.py --profile $(FLEET_BENCH_PROFILE)

# Regenerate every paper exhibit, printing the renderings.
exhibits:
	pytest benchmarks/ --benchmark-only -s -k "table or figure"

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	rm -rf benchmarks/.trace-store
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
