"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.caches.cache import Cache, CacheConfig
from repro.core.config import StreamConfig
from repro.mem.address import AddressSpace
from repro.trace.events import AccessKind, Trace


@pytest.fixture
def space() -> AddressSpace:
    """Default 8B-word / 64B-block geometry."""
    return AddressSpace()


@pytest.fixture
def tiny_cache_config() -> CacheConfig:
    """A 1KB 2-way cache: small enough to force evictions in tests."""
    return CacheConfig(capacity=1024, assoc=2, block_size=64, policy="lru")


@pytest.fixture
def paper_l1() -> CacheConfig:
    return CacheConfig.paper_l1()


@pytest.fixture
def default_stream_config() -> StreamConfig:
    return StreamConfig.jouppi(n_streams=4)


def make_trace(addrs, kind: AccessKind = AccessKind.READ) -> Trace:
    """Build a uniform-kind trace from a plain address list."""
    return Trace.uniform(np.asarray(addrs, dtype=np.int64), kind)


@pytest.fixture
def sequential_trace() -> Trace:
    """1024 word reads walking 8KB: every 8th access starts a new block."""
    return make_trace(np.arange(1024, dtype=np.int64) * 8)
