"""Tests for repro.trace.compress, including the exactness guarantee."""

import numpy as np
import pytest

from repro.caches.cache import Cache, CacheConfig
from repro.mem.address import AddressSpace
from repro.trace.compress import compress_consecutive
from repro.trace.events import Access, AccessKind, Trace


class TestBasicCompression:
    def test_word_walk_compresses_eight_to_one(self):
        trace = Trace.uniform(np.arange(64, dtype=np.int64) * 8)
        compressed = compress_consecutive(trace)
        assert len(compressed.trace) == 8
        assert compressed.original_length == 64
        assert compressed.compression_ratio == pytest.approx(8.0)

    def test_weights_sum_to_original_length(self):
        trace = Trace.uniform([0, 8, 64, 72, 80, 128])
        compressed = compress_consecutive(trace)
        assert int(compressed.weights.sum()) == 6
        assert compressed.weights.tolist() == [2, 3, 1]

    def test_alternating_blocks_not_compressed(self):
        trace = Trace.uniform([0, 64, 0, 64])
        compressed = compress_consecutive(trace)
        assert len(compressed.trace) == 4

    def test_empty_trace(self):
        compressed = compress_consecutive(Trace.empty())
        assert len(compressed.trace) == 0
        assert compressed.compression_ratio == 1.0

    def test_write_in_run_keeps_first_kind_and_sets_dirty(self):
        # The first access is the one that can miss, so the collapsed
        # access keeps READ (the miss event's kind); the write hit in the
        # run is carried as a dirty flag instead.
        trace = Trace.from_accesses([Access.read(0), Access.write(8)])
        compressed = compress_consecutive(trace)
        assert len(compressed.trace) == 1
        assert compressed.trace[0].kind is AccessKind.READ
        assert compressed.dirty.tolist() == [True]

    def test_write_led_run_keeps_write_kind(self):
        trace = Trace.from_accesses([Access.write(0), Access.read(8)])
        compressed = compress_consecutive(trace)
        assert compressed.trace[0].kind is AccessKind.WRITE
        assert compressed.dirty.tolist() == [True]

    def test_read_only_run_stays_read(self):
        trace = Trace.from_accesses([Access.read(0), Access.read(8)])
        compressed = compress_consecutive(trace)
        assert compressed.trace[0].kind is AccessKind.READ
        assert compressed.dirty.tolist() == [False]

    def test_ifetch_breaks_data_run(self):
        trace = Trace.from_accesses([Access.read(0), Access.ifetch(8), Access.read(16)])
        compressed = compress_consecutive(trace)
        assert len(compressed.trace) == 3

    def test_ifetch_runs_compress_together(self):
        trace = Trace.from_accesses([Access.ifetch(0), Access.ifetch(8)])
        compressed = compress_consecutive(trace)
        assert len(compressed.trace) == 1
        assert compressed.trace[0].kind is AccessKind.IFETCH

    def test_respects_block_size(self):
        trace = Trace.uniform([0, 64])
        small = compress_consecutive(trace, AddressSpace(block_size=64))
        large = compress_consecutive(trace, AddressSpace(block_size=128))
        assert len(small.trace) == 2
        assert len(large.trace) == 1

    def test_mismatched_weights_rejected(self):
        from repro.trace.compress import CompressedTrace

        with pytest.raises(ValueError):
            CompressedTrace(Trace.uniform([1, 2]), np.ones(3, dtype=np.int64))


class TestExactness:
    """Compression must not change any cache's miss behaviour."""

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_miss_stream_bit_identical(self, policy):
        rng = np.random.default_rng(7)
        # A blend of sequential walks and random jumps over 64KB.
        walks = np.arange(2000, dtype=np.int64) * 8
        jumps = rng.integers(0, 1 << 16, size=500, dtype=np.int64)
        addrs = np.concatenate([walks[:1000], jumps, walks[1000:]])
        kinds = rng.integers(0, 2, size=addrs.shape[0]).astype(np.uint8)
        trace = Trace(addrs, kinds)

        config = CacheConfig(capacity=4096, assoc=2, block_size=64, policy=policy, seed=3)
        full = Cache(config)
        full_miss = full.simulate(trace)

        compressed = compress_consecutive(trace)
        partial = Cache(config)
        partial_miss = partial.simulate(
            compressed.trace, weights=compressed.weights, dirty=compressed.dirty
        )

        assert full.stats.misses == partial.stats.misses
        assert full.stats.read_misses == partial.stats.read_misses
        assert full.stats.write_misses == partial.stats.write_misses
        assert full.stats.writebacks == partial.stats.writebacks
        # The full event stream — addresses AND kinds — must be
        # bit-identical: downstream consumers (simulate_secondary) read
        # the READ/WRITE miss classification off the kinds.
        assert np.array_equal(full_miss.addrs, partial_miss.addrs)
        assert np.array_equal(full_miss.kinds, partial_miss.kinds)

    def test_dirty_rejected_for_write_through(self):
        trace = Trace.uniform([0, 8])
        compressed = compress_consecutive(trace)
        cache = Cache(
            CacheConfig(capacity=1024, assoc=2, block_size=64, write_back=False)
        )
        with pytest.raises(ValueError, match="write-back"):
            cache.simulate(
                compressed.trace, weights=compressed.weights, dirty=compressed.dirty
            )

    def test_dirty_length_validated(self):
        trace = Trace.uniform([0, 128])
        cache = Cache(CacheConfig(capacity=1024, assoc=2, block_size=64))
        with pytest.raises(ValueError, match="dirty length"):
            cache.simulate(trace, dirty=np.ones(1, dtype=bool))

    def test_read_led_dirty_run_writes_back(self):
        # read 0 (miss), write 8 (hit, dirties block 0) -> evicting block
        # 0 later must write it back even though the compressed access is
        # a READ.  Direct-mapped single-set cache forces the eviction.
        trace = Trace.from_accesses(
            [Access.read(0), Access.write(8), Access.read(64), Access.read(0)]
        )
        config = CacheConfig(capacity=64, assoc=1, block_size=64, policy="lru")
        full = Cache(config)
        full_miss = full.simulate(trace)

        compressed = compress_consecutive(trace)
        partial = Cache(config)
        partial_miss = partial.simulate(
            compressed.trace, weights=compressed.weights, dirty=compressed.dirty
        )
        assert full.stats.writebacks == partial.stats.writebacks == 1
        assert np.array_equal(full_miss.kinds, partial_miss.kinds)
        assert np.array_equal(full_miss.addrs, partial_miss.addrs)

    def test_access_and_hit_counts_reconstructed(self):
        trace = Trace.uniform(np.arange(512, dtype=np.int64) * 8)
        compressed = compress_consecutive(trace)
        cache = Cache(CacheConfig(capacity=1024, assoc=2, block_size=64, policy="lru"))
        cache.simulate(compressed.trace, weights=compressed.weights)
        assert cache.stats.accesses == 512
        assert cache.stats.hits == 512 - cache.stats.misses

    def test_weights_length_validated(self):
        trace = Trace.uniform([0, 8])
        compressed = compress_consecutive(trace)
        cache = Cache(CacheConfig(capacity=1024, assoc=2, block_size=64))
        with pytest.raises(ValueError):
            cache.simulate(trace, weights=compressed.weights[:1])
