"""Unit tests for the service building blocks.

Covers the pieces in isolation: wire-format validation and lossless
encoding (api), counter/histogram accounting and renderings (metrics),
admission backpressure and deadline expiry (queue), in-flight
coalescing (coalesce) and micro-batch flushing (batcher).  The
end-to-end behaviour of the assembled service lives in
``test_service_e2e.py``.

No pytest-asyncio dependency: async cases run through ``asyncio.run``.
"""

import asyncio

import pytest

from repro.core.config import StreamConfig
from repro.service import api
from repro.service.batcher import MicroBatcher
from repro.service.coalesce import Coalescer
from repro.service.metrics import Counter, Histogram, MetricsRegistry
from repro.service.queue import (
    AdmissionQueue,
    DeadlineExceeded,
    QueueFullError,
    with_deadline,
)
from repro.sim.parallel import SweepTask, TaskError
from repro.sim.runner import run_result
from repro.trace.store import stats_from_dict


# -- api --------------------------------------------------------------------


class TestConfigFromPayload:
    def test_none_is_paper_default(self):
        assert api.config_from_payload(None) == StreamConfig.jouppi()

    def test_fields(self):
        config = api.config_from_payload({"n_streams": 4, "depth": 3})
        assert config.n_streams == 4 and config.depth == 3

    def test_preset_with_overrides(self):
        config = api.config_from_payload({"preset": "non_unit", "czone_bits": 20})
        assert config.stride_detector == "czone"
        assert config.czone_bits == 20

    def test_unknown_field_rejected(self):
        with pytest.raises(api.ValidationError, match="unknown config field"):
            api.config_from_payload({"n_stream": 4})  # typo must not pass

    def test_unknown_preset_rejected(self):
        with pytest.raises(api.ValidationError, match="unknown config preset"):
            api.config_from_payload({"preset": "bogus"})

    def test_invariant_violation_becomes_validation_error(self):
        with pytest.raises(api.ValidationError, match="invalid config"):
            api.config_from_payload({"n_streams": 0})


class TestParseRequests:
    def test_run_request(self):
        request = api.parse_run_request(
            {"workload": "sweep", "scale": 0.5, "config": {"n_streams": 3}}
        )
        assert request.kind == "run"
        (cell,) = request.cells
        assert cell.workload == "sweep"
        assert cell.scale == 0.5
        assert cell.config.n_streams == 3

    def test_unknown_workload(self):
        with pytest.raises(api.ValidationError, match="unknown workload"):
            api.parse_run_request({"workload": "not-a-benchmark"})

    def test_wire_version_checked(self):
        with pytest.raises(api.ValidationError, match="unsupported wire version"):
            api.parse_run_request({"v": 99, "workload": "sweep"})

    def test_sweep_grid_and_dedup(self):
        request = api.parse_sweep_request(
            {"workloads": ["sweep", "stride"], "n_streams": [4, 1, 4]}
        )
        assert request.kind == "sweep"
        assert [cell.key for cell in request.cells] == [
            ("sweep", 1), ("sweep", 4), ("stride", 1), ("stride", 4),
        ]

    def test_sweep_cell_cap(self):
        huge = list(range(1, api.MAX_CELLS_PER_REQUEST + 2))
        with pytest.raises(api.ValidationError, match="per-request cap"):
            api.parse_sweep_request({"workloads": ["sweep"], "n_streams": huge})

    def test_sweep_rejects_bad_n(self):
        with pytest.raises(api.ValidationError, match="positive integers"):
            api.parse_sweep_request({"workloads": ["sweep"], "n_streams": [0]})

    def test_bad_timeout(self):
        with pytest.raises(api.ValidationError, match="timeout_s"):
            api.parse_run_request({"workload": "sweep", "timeout_s": -1})

    def test_exhibit_request(self):
        request = api.parse_exhibit_request({"name": "table1", "benchmarks": ["mgrid"]})
        assert request.name == "table1"
        assert request.benchmarks == ("mgrid",)

    def test_exhibit_unknown_name(self):
        with pytest.raises(api.ValidationError, match="unknown exhibit"):
            api.parse_exhibit_request({"name": "figure99"})


class TestEncoding:
    def test_cell_result_roundtrips_stats_exactly(self):
        config = StreamConfig.jouppi(n_streams=3)
        result = run_result("sweep", config, scale=0.25)
        cell = api.CellSpec(key=("sweep", 3), workload="sweep", config=config, scale=0.25)
        payload = api.encode_cell_result(cell, result)
        assert payload["key"] == ["sweep", 3]
        assert stats_from_dict(payload["stats"]) == result.streams
        assert payload["l1"]["misses"] == result.l1.misses

    def test_task_error_payload_keeps_traceback(self):
        error = TaskError(
            key=("buk", 2), workload="buk", error="ValueError: boom",
            details="Traceback (most recent call last):\n  ...\nValueError: boom",
        )
        payload = api.encode_task_error(error)
        assert payload["key"] == ["buk", 2]
        assert "Traceback" in payload["traceback"]
        assert payload["error"] == "ValueError: boom"

    def test_envelopes(self):
        ok = api.ok_envelope("sweep", results=[])
        assert ok["ok"] and ok["v"] == api.WIRE_VERSION
        err = api.error_envelope("bad_request", "nope")
        assert not err["ok"] and err["error"]["code"] == "bad_request"


# -- metrics ----------------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_histogram_percentiles(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.sum == pytest.approx(5050.0)
        assert histogram.percentile(50) == pytest.approx(50, abs=2)
        assert histogram.percentile(95) == pytest.approx(95, abs=2)
        assert Histogram("empty").percentile(95) == 0.0

    def test_histogram_window_bounded(self):
        histogram = Histogram("h", max_samples=8)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000  # exact even though sampled
        assert histogram.percentile(50) >= 992 - 8  # window holds the tail

    def test_registry_snapshot_and_text(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "help text").inc(3)
        registry.gauge("queue_depth").set(2)
        registry.histogram("latency_ms").observe(12.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests_total"] == 3
        assert snapshot["gauges"]["queue_depth"] == 2
        assert snapshot["histograms"]["latency_ms"]["count"] == 1
        text = registry.render_text()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        assert 'repro_latency_ms{quantile="0.5"}' in text

    def test_registry_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x")
        assert registry.counter("x") is a
        with pytest.raises(TypeError):
            registry.gauge("x")


# -- queue ------------------------------------------------------------------


class TestAdmissionQueue:
    def test_backpressure(self):
        depths = []
        queue = AdmissionQueue(2, on_depth=depths.append)
        queue.acquire()
        queue.acquire()
        with pytest.raises(QueueFullError) as excinfo:
            queue.acquire()
        assert excinfo.value.limit == 2
        queue.release()
        queue.acquire()  # slot freed, admission resumes
        assert depths == [1, 2, 1, 2]

    def test_slot_releases_on_error(self):
        queue = AdmissionQueue(1)

        async def scenario():
            with pytest.raises(RuntimeError):
                async with queue.slot():
                    assert queue.depth == 1
                    raise RuntimeError("boom")
            assert queue.depth == 0

        asyncio.run(scenario())

    def test_deadline_expiry(self):
        async def scenario():
            with pytest.raises(DeadlineExceeded):
                await with_deadline(asyncio.sleep(5), 0.01)

        asyncio.run(scenario())

    def test_deadline_none_means_unbounded(self):
        async def scenario():
            return await with_deadline(asyncio.sleep(0, result=7), None)

        assert asyncio.run(scenario()) == 7


# -- coalescer --------------------------------------------------------------


class TestCoalescer:
    def test_joins_inflight_and_clears_on_done(self):
        async def scenario():
            coalescer = Coalescer()
            started = 0

            async def compute():
                nonlocal started
                started += 1
                await asyncio.sleep(0.01)
                return "value"

            factory = lambda: asyncio.ensure_future(compute())
            fut_a, coalesced_a = coalescer.admit("k", factory)
            fut_b, coalesced_b = coalescer.admit("k", factory)
            assert fut_a is fut_b
            assert (coalesced_a, coalesced_b) == (False, True)
            assert len(coalescer) == 1
            results = await asyncio.gather(asyncio.shield(fut_a), asyncio.shield(fut_b))
            assert results == ["value", "value"] and started == 1
            await asyncio.sleep(0)  # let the done callback run
            assert len(coalescer) == 0
            _, coalesced_again = coalescer.admit("k", factory)
            assert coalesced_again is False  # fresh flight after completion

        asyncio.run(scenario())

    def test_waiter_cancellation_leaves_flight_alive(self):
        async def scenario():
            coalescer = Coalescer()

            async def compute():
                await asyncio.sleep(0.05)
                return 42

            fut, _ = coalescer.admit("k", lambda: asyncio.ensure_future(compute()))
            waiter = asyncio.ensure_future(asyncio.shield(fut))
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert await fut == 42  # shared flight unharmed

        asyncio.run(scenario())


# -- batcher ----------------------------------------------------------------


def _task(n):
    return SweepTask(key=n, workload="sweep", config=StreamConfig.jouppi(n_streams=n))


class TestMicroBatcher:
    def test_batches_and_resolves_in_order(self):
        async def scenario():
            batches = []

            async def run_batch(tasks):
                batches.append(len(tasks))
                return [f"r{task.key}" for task in tasks]

            batcher = MicroBatcher(run_batch, max_batch=10, window_s=0.01)
            await batcher.start()
            futures = [batcher.submit(_task(n)) for n in (1, 2, 3)]
            results = await asyncio.gather(*futures)
            await batcher.close()
            assert results == ["r1", "r2", "r3"]
            assert batches == [3]  # one flush, not three

        asyncio.run(scenario())

    def test_max_batch_splits_flushes(self):
        async def scenario():
            batches = []

            async def run_batch(tasks):
                batches.append(len(tasks))
                return [task.key for task in tasks]

            batcher = MicroBatcher(run_batch, max_batch=2, window_s=0.05)
            await batcher.start()
            futures = [batcher.submit(_task(n)) for n in (1, 2, 3, 4, 5)]
            await asyncio.gather(*futures)
            await batcher.close()
            assert sum(batches) == 5
            assert max(batches) <= 2

        asyncio.run(scenario())

    def test_machinery_failure_rejects_batch(self):
        async def scenario():
            async def run_batch(tasks):
                raise OSError("pool died")

            batcher = MicroBatcher(run_batch, max_batch=4, window_s=0.01)
            await batcher.start()
            future = batcher.submit(_task(1))
            with pytest.raises(OSError, match="pool died"):
                await future
            await batcher.close()

        asyncio.run(scenario())

    def test_submit_after_close_raises(self):
        async def scenario():
            async def run_batch(tasks):
                return [None for _ in tasks]

            batcher = MicroBatcher(run_batch)
            await batcher.start()
            await batcher.close()
            with pytest.raises(RuntimeError, match="not running"):
                batcher.submit(_task(1))

        asyncio.run(scenario())

    def test_result_count_mismatch_is_error(self):
        async def scenario():
            async def run_batch(tasks):
                return []  # broken runner

            batcher = MicroBatcher(run_batch, window_s=0.0)
            await batcher.start()
            future = batcher.submit(_task(1))
            with pytest.raises(RuntimeError, match="results for"):
                await future
            await batcher.close()

        asyncio.run(scenario())
