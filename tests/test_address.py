"""Tests for repro.mem.address."""

import pytest

from repro.mem.address import AddressSpace, is_power_of_two, log2_int


class TestPowerOfTwo:
    def test_powers_are_recognised(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_are_rejected(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100):
            assert not is_power_of_two(value)

    def test_log2_int_roundtrip(self):
        for exponent in range(20):
            assert log2_int(1 << exponent) == exponent

    def test_log2_int_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_int(3)

    def test_log2_int_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_int(0)


class TestAddressSpaceConstruction:
    def test_defaults(self):
        space = AddressSpace()
        assert space.word_size == 8
        assert space.block_size == 64

    def test_block_bits(self):
        assert AddressSpace(block_size=64).block_bits == 6
        assert AddressSpace(block_size=128).block_bits == 7

    def test_word_bits(self):
        assert AddressSpace(word_size=4, block_size=64).word_bits == 2

    def test_words_per_block(self):
        assert AddressSpace().words_per_block == 8
        assert AddressSpace(word_size=4, block_size=64).words_per_block == 16

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            AddressSpace(block_size=48)

    def test_rejects_non_power_of_two_word(self):
        with pytest.raises(ValueError):
            AddressSpace(word_size=3)

    def test_rejects_block_smaller_than_word(self):
        with pytest.raises(ValueError):
            AddressSpace(word_size=16, block_size=8)


class TestBlockMath:
    def test_block_of(self):
        space = AddressSpace()
        assert space.block_of(0) == 0
        assert space.block_of(63) == 0
        assert space.block_of(64) == 1
        assert space.block_of(1000) == 15

    def test_block_base(self):
        space = AddressSpace()
        assert space.block_base(0) == 0
        assert space.block_base(63) == 0
        assert space.block_base(65) == 64

    def test_block_offset(self):
        space = AddressSpace()
        assert space.block_offset(0) == 0
        assert space.block_offset(63) == 63
        assert space.block_offset(64) == 0

    def test_addr_of_block_roundtrip(self):
        space = AddressSpace()
        for block in (0, 1, 17, 1 << 20):
            assert space.block_of(space.addr_of_block(block)) == block

    def test_word_of(self):
        space = AddressSpace()
        assert space.word_of(0) == 0
        assert space.word_of(7) == 0
        assert space.word_of(8) == 1

    def test_addr_of_word_roundtrip(self):
        space = AddressSpace()
        for word in (0, 5, 1 << 16):
            assert space.word_of(space.addr_of_word(word)) == word


class TestCzone:
    def test_czone_tag_partitions_by_high_bits(self):
        space = AddressSpace()
        assert space.czone_tag(0x12345, 16) == 0x1
        assert space.czone_tag(0x1FFFF, 16) == 0x1
        assert space.czone_tag(0x20000, 16) == 0x2

    def test_same_partition_iff_same_tag(self):
        space = AddressSpace()
        a, b = 0x40000, 0x40000 + (1 << 15)
        assert space.czone_tag(a, 16) == space.czone_tag(b, 16)
        assert space.czone_tag(a, 14) != space.czone_tag(b, 14)

    def test_negative_czone_bits_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().czone_tag(0, -1)


class TestBlockStride:
    def test_positive_strides_round_down(self):
        space = AddressSpace()
        assert space.block_stride(64) == 1
        assert space.block_stride(127) == 1
        assert space.block_stride(128) == 2

    def test_sub_block_stride_is_zero(self):
        space = AddressSpace()
        assert space.block_stride(0) == 0
        assert space.block_stride(63) == 0
        assert space.block_stride(-63) == 0

    def test_negative_strides_round_toward_zero(self):
        space = AddressSpace()
        assert space.block_stride(-64) == -1
        assert space.block_stride(-127) == -1
        assert space.block_stride(-128) == -2

    def test_symmetry(self):
        space = AddressSpace()
        for delta in (64, 100, 1000, 4096):
            assert space.block_stride(-delta) == -space.block_stride(delta)
