"""Tests for repro.caches.secondary and repro.caches.sampling."""

import numpy as np
import pytest

from repro.caches.cache import Cache, CacheConfig, MissEventKind, MissTrace
from repro.caches.sampling import (
    SamplingPlan,
    sampled_hit_rate,
    sampling_error_bound,
    sampling_halfwidth,
)
from repro.caches.secondary import (
    PAPER_L2_SIZES,
    best_hit_rate_at_size,
    candidate_configs,
    simulate_secondary,
)
from repro.trace.events import Trace


def make_miss_trace(blocks, kinds=None):
    blocks = np.asarray(blocks, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(blocks.shape[0], dtype=np.uint8)
    return MissTrace(blocks * 64, np.asarray(kinds, dtype=np.uint8), 6)


class TestSimulateSecondary:
    def test_repeated_misses_hit_l2(self):
        # L1 misses the same blocks twice; L2 catches the second round.
        mt = make_miss_trace(list(range(100)) + list(range(100)))
        result = simulate_secondary(mt, CacheConfig(capacity=64 * 1024, assoc=4, block_size=64, policy="lru"))
        assert result.demand_accesses == 200
        assert result.demand_hits == 100
        assert result.local_hit_rate == pytest.approx(0.5)

    def test_writebacks_update_but_do_not_count(self):
        wb = int(MissEventKind.WRITEBACK)
        rd = int(MissEventKind.READ_MISS)
        mt = make_miss_trace([5, 5], kinds=[wb, rd])
        result = simulate_secondary(mt, CacheConfig(capacity=64 * 1024, assoc=4, block_size=64, policy="lru"))
        assert result.demand_accesses == 1
        assert result.demand_hits == 1  # the write-back installed the block
        assert result.writebacks_received == 1

    def test_capacity_limits_hit_rate(self):
        blocks = list(range(4096)) * 2  # 256KB working set
        mt = make_miss_trace(blocks)
        small = simulate_secondary(mt, CacheConfig(capacity=64 * 1024, assoc=4, block_size=64, policy="lru"))
        large = simulate_secondary(mt, CacheConfig(capacity=512 * 1024, assoc=4, block_size=64, policy="lru"))
        assert small.local_hit_rate == 0.0  # LRU thrashes a cyclic sweep
        assert large.local_hit_rate == pytest.approx(0.5)

    def test_larger_blocks_exploit_spatial_locality(self):
        # The L1 (64B blocks) misses adjacent blocks; a 128B L2 block
        # fetches both halves at once.
        mt = make_miss_trace(list(range(1000)))
        result = simulate_secondary(
            mt, CacheConfig(capacity=1 << 20, assoc=2, block_size=128, policy="lru")
        )
        assert result.local_hit_rate == pytest.approx(0.5, abs=0.01)

    def test_invalid_sampling(self):
        mt = make_miss_trace([1])
        with pytest.raises(ValueError):
            simulate_secondary(mt, CacheConfig(capacity=1024, assoc=2, block_size=64), sample_every=0)

    def test_empty_trace(self):
        mt = make_miss_trace([])
        result = simulate_secondary(mt, CacheConfig(capacity=1024, assoc=2, block_size=64))
        assert result.local_hit_rate == 0.0


class TestCandidateGrid:
    def test_paper_grid_is_six_configs(self):
        configs = candidate_configs(1 << 20)
        assert len(configs) == 6
        assert {c.assoc for c in configs} == {1, 2, 4}
        assert {c.block_size for c in configs} == {64, 128}

    def test_paper_sizes_ladder(self):
        assert PAPER_L2_SIZES[0] == 64 * 1024
        assert PAPER_L2_SIZES[-1] == 4 * 1024 * 1024

    def test_best_hit_rate_picks_maximum(self):
        # A pattern with conflict misses in direct-mapped: two blocks one
        # cache-size apart, accessed alternately.
        stride_blocks = (64 * 1024) // 64
        mt = make_miss_trace([0, stride_blocks] * 50)
        best = best_hit_rate_at_size(mt, 64 * 1024)
        assert best.config.assoc > 1
        assert best.local_hit_rate > 0.9


class TestSetSampling:
    def test_sampling_approximates_full_simulation(self):
        rng = np.random.default_rng(5)
        blocks = rng.integers(0, 1 << 14, size=40_000)
        mt = make_miss_trace(blocks)
        config = CacheConfig(capacity=256 * 1024, assoc=4, block_size=64, policy="lru")
        full = simulate_secondary(mt, config)
        sampled = sampled_hit_rate(mt, config, SamplingPlan(sample_every=8))
        assert sampled.sampled_sets < config.n_sets
        assert abs(full.local_hit_rate - sampled.local_hit_rate) < 0.03

    def test_sampling_falls_back_for_tiny_caches(self):
        mt = make_miss_trace(list(range(64)))
        config = CacheConfig(capacity=4096, assoc=2, block_size=64, policy="lru")
        result = sampled_hit_rate(mt, config, SamplingPlan(sample_every=64))
        # 32 sets / 64 would leave <4 sets; the fallback widens coverage.
        assert result.sampled_sets >= 4

    def test_error_bound_helper(self):
        assert sampling_error_bound([0.5, 0.7], [0.52, 0.69]) == pytest.approx(0.02)
        assert sampling_error_bound([], []) == 0.0
        with pytest.raises(ValueError):
            sampling_error_bound([0.5], [])

    @pytest.mark.parametrize(
        "sampled,population,expected",
        [
            (0, None, 1.0),  # empty sample, unknown population: vacuous
            (-3, None, 1.0),
            (0, 100, 1.0),  # empty sample of a real population: vacuous
            (100, 100, 0.0),  # full coverage is an exact measurement
            (150, 100, 0.0),  # over-coverage cannot be worse than exact
            (100, 0, 0.0),  # empty population: nothing to mis-estimate
            (0, 0, 0.0),  # empty sample of an empty population: exact
            (100, -5, 0.0),
        ],
    )
    def test_halfwidth_degenerate_pins(self, sampled, population, expected):
        assert sampling_halfwidth(sampled, population=population) == expected

    def test_halfwidth_normal_band(self):
        # the binomial band, untouched by the pins
        expected = 3.0 * np.sqrt(0.25 / 400)
        assert sampling_halfwidth(400, population=100_000) == pytest.approx(expected)
        assert sampling_halfwidth(400) == pytest.approx(expected)
        # shrinks with sample size, never negative
        assert sampling_halfwidth(1600) < sampling_halfwidth(400)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan(sample_every=0)
        assert SamplingPlan(sample_every=16).sets_sampled(256) == 16
