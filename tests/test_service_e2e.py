"""End-to-end tests for the simulation service over real sockets.

Each test boots a :class:`ServiceServer` on an ephemeral port inside an
``asyncio.run`` scenario, speaks actual HTTP/1.1 through
:func:`repro.service.client.arequest`, and checks the externally
observable contract: coalescing (N concurrent duplicate sweeps execute
each unique cell exactly once), bit-identical results vs. a direct
:func:`run_grid`, 429 under backpressure, 504 past a deadline, and the
warm-store fast path.

Serial mode (``jobs=1``) keeps these fast: the request path through
validate → queue → coalesce → batch is identical to pool mode, only the
final ``run_grid`` call differs (covered by ``test_parallel.py`` and
the CI smoke job).
"""

import asyncio

import pytest

from repro.core.config import StreamConfig
from repro.service.client import arequest
from repro.service.server import ServiceConfig, ServiceServer, SimulationService
from repro.sim.parallel import SweepTask, run_grid
from repro.trace.store import stats_from_dict

WORKLOADS = ["sweep", "stride"]
N_STREAMS = [1, 4, 8]
SCALE = 0.25

SWEEP_PAYLOAD = {
    "workloads": WORKLOADS,
    "n_streams": N_STREAMS,
    "scale": SCALE,
    "timeout_s": 120,
}


def _sweep_tasks():
    return [
        SweepTask(
            key=(name, n),
            workload=name,
            config=StreamConfig.jouppi(n_streams=n),
            scale=SCALE,
        )
        for name in WORKLOADS
        for n in N_STREAMS
    ]


async def _serve(config: ServiceConfig):
    server = ServiceServer(SimulationService(config))
    host, port = await server.start()
    return server, host, port


class TestConcurrentCoalescing:
    def test_duplicate_sweeps_execute_each_cell_once(self, tmp_path):
        """The acceptance scenario: >=100 concurrent duplicate sweeps,
        one run_grid execution per unique cell, bit-identical results."""
        n_requests = 110
        unique_cells = len(WORKLOADS) * len(N_STREAMS)

        async def scenario():
            server, host, port = await _serve(
                ServiceConfig(
                    jobs=1,
                    store_root=str(tmp_path / "store"),
                    max_queue=2 * n_requests,
                    batch_window_s=0.01,
                )
            )
            try:
                responses = await asyncio.gather(
                    *(
                        arequest(host, port, "POST", "/v1/sweep", SWEEP_PAYLOAD, timeout=180)
                        for _ in range(n_requests)
                    )
                )
                _, metrics = await arequest(host, port, "GET", "/metrics.json")
                return responses, metrics
            finally:
                await server.close()

        responses, metrics = asyncio.run(scenario())

        statuses = {status for status, _ in responses}
        assert statuses == {200}, f"expected all 200s, saw {sorted(statuses)}"
        for _, body in responses:
            assert body["ok"] and not body["errors"]
            assert len(body["results"]) == unique_cells

        counters = metrics["counters"]
        # Exactly one run_grid execution per unique cell, despite 110
        # concurrent requests asking for the same grid.
        assert counters["cells_executed_total"] == unique_cells
        assert counters["cells_requested_total"] == n_requests * unique_cells
        assert counters["coalesce_hits_total"] > 0
        assert counters["requests_total"] == n_requests
        assert counters["requests_rejected_total"] == 0

        # Every response is bit-identical to a direct run_grid of the
        # same grid: replay stats survive the wire exactly.
        direct = {
            task.key: result
            for task, result in zip(_sweep_tasks(), run_grid(_sweep_tasks()))
        }
        for _, body in responses:
            for cell in body["results"]:
                key = tuple(cell["key"])
                assert stats_from_dict(cell["stats"]) == direct[key].streams
                assert cell["l1"]["misses"] == direct[key].l1.misses


class TestBackpressure:
    def test_over_capacity_rejected_with_429(self, tmp_path):
        async def scenario():
            # One admission slot + a long linger window: the first
            # admitted request parks in the batcher for 0.5s while the
            # rest of the burst arrives and must bounce.
            server, host, port = await _serve(
                ServiceConfig(jobs=1, max_queue=1, batch_window_s=0.5)
            )
            try:
                responses = await asyncio.gather(
                    *(
                        arequest(host, port, "POST", "/v1/sweep", SWEEP_PAYLOAD, timeout=60)
                        for _ in range(8)
                    )
                )
                _, metrics = await arequest(host, port, "GET", "/metrics.json")
                return responses, metrics
            finally:
                await server.close()

        responses, metrics = asyncio.run(scenario())

        statuses = sorted(status for status, _ in responses)
        assert 200 in statuses, f"no request got through: {statuses}"
        assert 429 in statuses, f"no request was rejected: {statuses}"
        rejected = [body for status, body in responses if status == 429]
        for body in rejected:
            assert not body["ok"]
            assert body["error"]["code"] == "over_capacity"
        assert metrics["counters"]["requests_rejected_total"] == len(rejected)


class TestDeadline:
    def test_expired_deadline_is_504_and_work_survives(self, tmp_path):
        async def scenario():
            # The linger window (0.5s) exceeds the first request's
            # deadline (50ms), so it must time out; the second request
            # (generous deadline) coalesces onto the surviving flight —
            # the shield keeps shared work alive past one waiter's 504.
            server, host, port = await _serve(
                ServiceConfig(jobs=1, batch_window_s=0.5)
            )
            try:
                impatient = dict(SWEEP_PAYLOAD, timeout_s=0.05)
                status_a, body_a = await arequest(
                    host, port, "POST", "/v1/sweep", impatient, timeout=60
                )
                status_b, body_b = await arequest(
                    host, port, "POST", "/v1/sweep", SWEEP_PAYLOAD, timeout=120
                )
                _, metrics = await arequest(host, port, "GET", "/metrics.json")
                return (status_a, body_a), (status_b, body_b), metrics
            finally:
                await server.close()

        (status_a, body_a), (status_b, body_b), metrics = asyncio.run(scenario())

        assert status_a == 504
        assert body_a["error"]["code"] == "deadline_exceeded"
        assert status_b == 200 and body_b["ok"]
        assert len(body_b["results"]) == len(WORKLOADS) * len(N_STREAMS)
        assert metrics["counters"]["requests_timeout_total"] == 1


class TestWarmStoreFastPath:
    def test_repeat_cell_served_from_store_without_execution(self, tmp_path):
        async def scenario():
            # result_cache_entries=0 disables the in-memory LRU, so the
            # repeat request must go through the store fast path rather
            # than re-entering the batcher.
            server, host, port = await _serve(
                ServiceConfig(
                    jobs=1,
                    store_root=str(tmp_path / "store"),
                    result_cache_entries=0,
                )
            )
            try:
                payload = {
                    "workload": "sweep",
                    "scale": SCALE,
                    "config": {"n_streams": 4},
                    "timeout_s": 120,
                }
                first = await arequest(host, port, "POST", "/v1/run", payload, timeout=60)
                second = await arequest(host, port, "POST", "/v1/run", payload, timeout=60)
                _, metrics = await arequest(host, port, "GET", "/metrics.json")
                return first, second, metrics
            finally:
                await server.close()

        (status_a, body_a), (status_b, body_b), metrics = asyncio.run(scenario())

        assert status_a == 200 and status_b == 200
        counters = metrics["counters"]
        assert counters["cells_executed_total"] == 1
        assert counters["store_fastpath_hits_total"] >= 1
        assert body_a["results"][0]["stats"] == body_b["results"][0]["stats"]


class TestHttpSurface:
    def test_endpoints_and_error_mapping(self, tmp_path):
        async def scenario():
            server, host, port = await _serve(ServiceConfig(jobs=1))
            try:
                health = await arequest(host, port, "GET", "/healthz")
                text = await arequest(host, port, "GET", "/metrics")
                snap = await arequest(host, port, "GET", "/metrics.json")
                missing = await arequest(host, port, "GET", "/nope")
                bad_method = await arequest(host, port, "DELETE", "/v1/run")
                bad_workload = await arequest(
                    host, port, "POST", "/v1/run", {"workload": "nope"}
                )
                bad_config = await arequest(
                    host,
                    port,
                    "POST",
                    "/v1/run",
                    {"workload": "sweep", "config": {"n_stream": 4}},
                )
                bad_exhibit = await arequest(
                    host, port, "POST", "/v1/exhibit", {"name": "figure99"}
                )
                return health, text, snap, missing, bad_method, bad_workload, bad_config, bad_exhibit
            finally:
                await server.close()

        (health, text, snap, missing, bad_method,
         bad_workload, bad_config, bad_exhibit) = asyncio.run(scenario())

        assert health[0] == 200 and health[1]["ok"]
        assert health[1]["jobs"] == 1
        assert text[0] == 200 and "repro_requests_total" in text[1]
        assert snap[0] == 200 and "counters" in snap[1]
        assert missing[0] == 404
        assert bad_method[0] == 405
        assert bad_workload[0] == 400
        assert bad_workload[1]["error"]["code"] == "bad_request"
        assert "unknown workload" in bad_workload[1]["error"]["message"]
        assert bad_config[0] == 400
        assert "unknown config field" in bad_config[1]["error"]["message"]
        assert bad_exhibit[0] == 400
        assert "unknown exhibit" in bad_exhibit[1]["error"]["message"]

    def test_exhibit_roundtrip(self, tmp_path):
        async def scenario():
            server, host, port = await _serve(
                ServiceConfig(jobs=1, store_root=str(tmp_path / "store"))
            )
            try:
                return await arequest(
                    host,
                    port,
                    "POST",
                    "/v1/exhibit",
                    {"name": "table1", "benchmarks": ["buk"], "timeout_s": 120},
                    timeout=180,
                )
            finally:
                await server.close()

        status, body = asyncio.run(scenario())
        assert status == 200 and body["ok"]
        assert body["name"] == "table1"
        assert "buk" in body["rendered"]
