"""Tests for repro.core.bank (multi-way stream buffers, Section 3)."""

import pytest

from repro.core.bank import Lookup, StreamBufferBank


def bank_with_stream(start=100, stride=1, n_streams=4, depth=2, min_lead=0):
    bank = StreamBufferBank(n_streams=n_streams, depth=depth, min_lead=min_lead)
    bank.allocate(start, stride)
    return bank


class TestLookup:
    def test_miss_on_empty_bank(self):
        bank = StreamBufferBank(n_streams=2, depth=2)
        assert bank.lookup(5) is Lookup.MISS
        assert bank.lookups == 1

    def test_hit_at_head(self):
        bank = bank_with_stream(100)
        assert bank.lookup(100) is Lookup.HIT
        assert bank.hits == 1

    def test_hit_advances_stream(self):
        bank = bank_with_stream(100)
        bank.lookup(100)
        assert bank.lookup(101) is Lookup.HIT
        assert bank.lookup(102) is Lookup.HIT

    def test_non_head_entry_is_a_miss(self):
        bank = bank_with_stream(100, depth=4)
        assert bank.lookup(102) is Lookup.MISS

    def test_strided_stream_hits(self):
        bank = bank_with_stream(100, stride=5)
        assert bank.lookup(100) is Lookup.HIT
        assert bank.lookup(105) is Lookup.HIT
        assert bank.lookup(110) is Lookup.HIT

    def test_parallel_streams(self):
        bank = StreamBufferBank(n_streams=3, depth=2)
        bank.allocate(100, 1)
        bank.allocate(500, 1)
        bank.allocate(900, 1)
        assert bank.lookup(500) is Lookup.HIT
        assert bank.lookup(100) is Lookup.HIT
        assert bank.lookup(900) is Lookup.HIT


class TestLRUReallocation:
    def test_allocate_replaces_least_recent(self):
        bank = StreamBufferBank(n_streams=2, depth=2)
        bank.allocate(100, 1)
        bank.allocate(200, 1)
        bank.lookup(100)  # stream 0 is now MRU
        bank.allocate(300, 1)  # must replace stream holding 200
        assert bank.lookup(101) is Lookup.HIT  # 100-stream survived
        assert bank.lookup(201) is Lookup.MISS
        assert bank.lookup(300) is Lookup.HIT

    def test_lru_order_tracks_usage(self):
        bank = StreamBufferBank(n_streams=3, depth=2)
        bank.allocate(10, 1)  # stream a
        bank.allocate(20, 1)  # stream b
        order = bank.lru_order()
        # The untouched stream is least recent.
        assert order[-1] == bank.lru_order()[-1]

    def test_reallocation_records_stream_length(self):
        bank = StreamBufferBank(n_streams=1, depth=2)
        bank.allocate(100, 1)
        bank.lookup(100)
        bank.lookup(101)
        bank.lookup(102)
        bank.allocate(500, 1)  # closes the 3-hit stream
        assert bank.lengths.hits_by_bucket[(1, 5)] == 3

    def test_zero_length_streams_tracked(self):
        bank = StreamBufferBank(n_streams=1, depth=2)
        bank.allocate(100, 1)
        bank.allocate(500, 1)
        assert bank.lengths.zero_length_streams == 1


class TestBandwidthAccounting:
    def test_allocation_issues_depth_prefetches(self):
        bank = StreamBufferBank(n_streams=2, depth=3)
        bank.allocate(10, 1)
        assert bank.prefetches_issued == 3

    def test_hit_issues_replacement_prefetch(self):
        bank = bank_with_stream(100, depth=2)
        issued_before = bank.prefetches_issued
        bank.lookup(100)
        assert bank.prefetches_issued == issued_before + 1
        assert bank.prefetches_used == 1

    def test_useless_prefetches(self):
        bank = StreamBufferBank(n_streams=1, depth=2)
        bank.allocate(10, 1)
        bank.lookup(10)
        bank.allocate(99, 1)  # flushes 2 outstanding entries
        bank.finalize()  # flushes 2 more
        assert bank.prefetches_useless == bank.prefetches_issued - 1


class TestInvalidation:
    def test_writeback_invalidates_matching_entries(self):
        bank = StreamBufferBank(n_streams=2, depth=2)
        bank.allocate(100, 1)
        assert bank.invalidate(101) == 1
        assert bank.invalidations == 1

    def test_invalidated_head_misses(self):
        bank = bank_with_stream(100)
        bank.invalidate(100)
        assert bank.lookup(100) is Lookup.MISS

    def test_invalidate_absent_block(self):
        bank = bank_with_stream(100)
        assert bank.invalidate(9999) == 0


class TestMinLead:
    def test_fresh_prefetch_is_in_flight(self):
        bank = bank_with_stream(100, min_lead=5)
        assert bank.lookup(100) is Lookup.IN_FLIGHT
        assert bank.hits == 0
        # The entry is consumed (demand coalesces with the prefetch).
        assert bank.prefetches_used == 1

    def test_aged_prefetch_hits(self):
        bank = bank_with_stream(100, min_lead=3)
        for block in (1000, 2000, 3000):  # three intervening misses
            bank.lookup(block)
        assert bank.lookup(100) is Lookup.HIT

    def test_zero_min_lead_always_hits(self):
        bank = bank_with_stream(100, min_lead=0)
        assert bank.lookup(100) is Lookup.HIT


class TestFinalize:
    def test_finalize_records_active_lengths(self):
        bank = StreamBufferBank(n_streams=2, depth=2)
        bank.allocate(100, 1)
        bank.lookup(100)
        bank.finalize()
        assert bank.lengths.hits_by_bucket[(1, 5)] == 1

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            StreamBufferBank(n_streams=0, depth=2)

    def test_properties(self):
        bank = StreamBufferBank(n_streams=3, depth=4)
        assert bank.n_streams == 3
        assert bank.depth == 4
        assert len(bank.streams()) == 3
