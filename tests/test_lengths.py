"""Tests for repro.core.lengths (Table 3 bookkeeping)."""

import pytest

from repro.core.lengths import (
    LENGTH_BUCKETS,
    StreamLengthHistogram,
    bucket_label,
    bucket_of,
)


class TestBuckets:
    def test_paper_buckets(self):
        labels = [bucket_label(b) for b in LENGTH_BUCKETS]
        assert labels == ["1-5", "6-10", "11-15", "16-20", ">20"]

    @pytest.mark.parametrize(
        "length,expected",
        [(1, "1-5"), (5, "1-5"), (6, "6-10"), (10, "6-10"), (11, "11-15"),
         (15, "11-15"), (16, "16-20"), (20, "16-20"), (21, ">20"), (1000, ">20")],
    )
    def test_bucket_of(self, length, expected):
        assert bucket_label(bucket_of(length)) == expected

    def test_bucket_of_rejects_zero(self):
        with pytest.raises(ValueError):
            bucket_of(0)


class TestHistogram:
    def test_record_weighted_by_hits(self):
        hist = StreamLengthHistogram()
        hist.record(3)
        hist.record(25)
        assert hist.hits_by_bucket[(1, 5)] == 3
        assert hist.hits_by_bucket[(21, 0)] == 25
        assert hist.total_hits == 28

    def test_percent_hits(self):
        hist = StreamLengthHistogram()
        hist.record(5)
        hist.record(5)
        hist.record(30)
        percents = hist.percent_hits()
        assert percents[(1, 5)] == pytest.approx(25.0)
        assert percents[(21, 0)] == pytest.approx(75.0)

    def test_percent_hits_empty(self):
        hist = StreamLengthHistogram()
        assert all(v == 0.0 for v in hist.percent_hits().values())

    def test_zero_length_streams_counted_separately(self):
        hist = StreamLengthHistogram()
        hist.record(0)
        assert hist.zero_length_streams == 1
        assert hist.total_hits == 0
        assert hist.total_streams == 1

    def test_total_streams(self):
        hist = StreamLengthHistogram()
        hist.record(0)
        hist.record(2)
        hist.record(40)
        assert hist.total_streams == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StreamLengthHistogram().record(-1)

    def test_as_row_order(self):
        hist = StreamLengthHistogram()
        hist.record(8)
        row = hist.as_row()
        assert row == [0.0, 100.0, 0.0, 0.0, 0.0]
        assert len(row) == 5
