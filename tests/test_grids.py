"""Tests for repro.workloads.grids."""

import numpy as np
import pytest

from repro.workloads.grids import (
    addrs_at,
    checkerboard_points,
    flat_index,
    hyperplane_points,
    neighbor_offset,
    sweep_points,
)


class TestFlatIndex:
    def test_fortran_order(self):
        shape = (4, 3, 2)
        assert flat_index(shape, np.int64(0), np.int64(0), np.int64(0)) == 0
        assert flat_index(shape, np.int64(1), np.int64(0), np.int64(0)) == 1
        assert flat_index(shape, np.int64(0), np.int64(1), np.int64(0)) == 4
        assert flat_index(shape, np.int64(0), np.int64(0), np.int64(1)) == 12

    def test_neighbor_offset(self):
        shape = (4, 3, 2)
        assert neighbor_offset(shape, di=1) == 1
        assert neighbor_offset(shape, dj=1) == 4
        assert neighbor_offset(shape, dk=1) == 12
        assert neighbor_offset(shape, di=-1, dk=1) == 11


class TestSweepPoints:
    def test_axis0_is_unit_stride(self):
        points = sweep_points((3, 2, 2), fastest_axis=0)
        assert points.tolist() == list(range(12))

    def test_axis1_strides_by_nx(self):
        points = sweep_points((3, 2, 2), fastest_axis=1)
        # First two points walk j at fixed (i=0, k=0): 0, 3.
        assert points[0] == 0
        assert points[1] == 3

    def test_axis2_strides_by_nx_ny(self):
        points = sweep_points((3, 2, 2), fastest_axis=2)
        assert points[0] == 0
        assert points[1] == 6

    def test_all_points_covered_once(self):
        for axis in (0, 1, 2):
            points = sweep_points((4, 3, 5), fastest_axis=axis)
            assert sorted(points.tolist()) == list(range(60))

    def test_halo_excludes_boundary(self):
        points = sweep_points((4, 4, 4), fastest_axis=0, halo=1)
        assert len(points) == 8  # 2^3 interior
        i = points % 4
        assert i.min() >= 1 and i.max() <= 2

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            sweep_points((2, 2, 2), fastest_axis=3)


class TestHyperplane:
    def test_diagonal_order(self):
        points = hyperplane_points((2, 2, 2))
        # i+j+k of the flat indices must be non-decreasing.
        i = points % 2
        j = (points // 2) % 2
        k = points // 4
        diag = (i + j + k).tolist()
        assert diag == sorted(diag)

    def test_covers_all_points(self):
        points = hyperplane_points((3, 3, 3))
        assert sorted(points.tolist()) == list(range(27))


class TestCheckerboard:
    def test_even_sites_first(self):
        points = checkerboard_points((2, 2, 2))
        i = points % 2
        j = (points // 2) % 2
        k = points // 4
        parity = ((i + j + k) % 2).tolist()
        assert parity == sorted(parity)

    def test_covers_all_points(self):
        points = checkerboard_points((3, 2, 2))
        assert sorted(points.tolist()) == list(range(12))


class TestAddrsAt:
    def test_scalar_records(self):
        points = np.array([0, 1, 2], dtype=np.int64)
        assert addrs_at(1000, points, 8).tolist() == [1000, 1008, 1016]

    def test_multi_component_records(self):
        points = np.array([0, 1], dtype=np.int64)
        addrs = addrs_at(0, points, 8, components=5)
        assert addrs.tolist() == [0, 40]

    def test_component_selection(self):
        points = np.array([0], dtype=np.int64)
        assert addrs_at(0, points, 8, components=5, component=2).tolist() == [16]

    def test_offset_elements(self):
        points = np.array([10], dtype=np.int64)
        assert addrs_at(0, points, 8, offset_elements=-1).tolist() == [72]

    def test_validation(self):
        points = np.array([0], dtype=np.int64)
        with pytest.raises(ValueError):
            addrs_at(0, points, 8, components=0)
        with pytest.raises(ValueError):
            addrs_at(0, points, 8, components=2, component=2)
