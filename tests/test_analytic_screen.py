"""Tests for repro.analytic.screen: the analytically screened Table 4
search must agree with brute force while simulating a fraction of the
grid, and its store-backed profile path must round-trip."""

import numpy as np
import pytest

from repro.analytic import (
    ESTIMATOR_SLACK,
    PROFILE_BLOCK_SIZES,
    ensure_profiles,
    min_matching_l2_size_analytic,
)
from repro.caches.sampling import sampling_halfwidth
from repro.caches.secondary import PAPER_L2_ASSOCS, PAPER_L2_BLOCKS, PAPER_L2_SIZES
from repro.sim.compare import min_matching_l2_size, search_min_match
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore

GRID_CONFIGS = len(PAPER_L2_SIZES) * len(PAPER_L2_ASSOCS) * len(PAPER_L2_BLOCKS)


@pytest.fixture(scope="module")
def cache():
    return MissTraceCache()


class TestAgreementWithBruteForce:
    @pytest.mark.parametrize(
        "name,scale",
        [("random", 1.0), ("sweep", 0.25), ("buk", 0.5), ("mdg", 0.5)],
    )
    def test_matched_size_and_budget(self, cache, name, scale):
        brute = min_matching_l2_size(name, scale=scale, cache=cache)
        screened = min_matching_l2_size_analytic(name, scale=scale, cache=cache)
        assert screened.matched_size == brute.matched_size
        assert screened.configs_simulated <= GRID_CONFIGS // 4
        # Any size both paths probed produced bit-identical points.
        brute_points = {p.size: p for p in brute.l2_hit_rates}
        for point in screened.l2_hit_rates:
            if point.size in brute_points:
                assert point == brute_points[point.size]

    def test_unmatchable_needs_no_simulation(self, cache):
        # A pure sweep has no L2 reuse while streams are near-perfect:
        # the whole ladder is certain-miss and is screened out entirely.
        screened = min_matching_l2_size_analytic("sweep", scale=0.25, cache=cache)
        assert screened.matched_size is None
        assert screened.configs_simulated == 0
        assert screened.l2_hit_rates == ()

    def test_result_provenance_fields(self, cache):
        screened = min_matching_l2_size_analytic("random", cache=cache)
        assert screened.method == "analytic"
        assert [size for size, _ in screened.analytic_estimates] == sorted(
            PAPER_L2_SIZES
        )
        assert all(0.0 <= est <= 1.0 for _, est in screened.analytic_estimates)
        brute = min_matching_l2_size("random", cache=cache)
        assert brute.method == "simulated"
        assert brute.analytic_estimates == ()

    def test_probed_points_carry_config_provenance(self, cache):
        screened = min_matching_l2_size_analytic("buk", scale=0.5, cache=cache)
        for point in screened.l2_hit_rates:
            assert point.assoc in PAPER_L2_ASSOCS
            assert point.block_size in PAPER_L2_BLOCKS


class TestStoreBackedProfiles:
    def test_ensure_profiles_round_trips(self, tmp_path, cache):
        store = TraceStore(tmp_path)
        trace, _ = cache.get("buk", scale=0.5)
        computed = ensure_profiles(trace, store=store, digest="d1")
        assert store.n_profiles() == 1
        loaded = ensure_profiles(trace, store=store, digest="d1")
        for bs in PROFILE_BLOCK_SIZES:
            assert np.array_equal(loaded[bs].read_hist, computed[bs].read_hist)
            assert np.array_equal(loaded[bs].write_hist, computed[bs].write_hist)
            assert loaded[bs].cold_reads == computed[bs].cold_reads

    def test_no_store_still_works(self, cache):
        trace, _ = cache.get("random", scale=1.0)
        profiles = ensure_profiles(trace)
        assert set(profiles) == set(PROFILE_BLOCK_SIZES)

    def test_search_through_store_matches_memoryless(self, tmp_path):
        store = TraceStore(tmp_path)
        stored_cache = MissTraceCache(store=store)
        first = min_matching_l2_size_analytic("buk", scale=0.5, cache=stored_cache)
        assert store.n_profiles() == 1
        # A fresh cache (new process, conceptually) loads the profile.
        second = min_matching_l2_size_analytic(
            "buk", scale=0.5, cache=MissTraceCache(store=store)
        )
        assert second.matched_size == first.matched_size
        assert second.analytic_estimates == first.analytic_estimates
        assert second.l2_hit_rates == first.l2_hit_rates


class TestGuidedSearch:
    """search_min_match unit behaviour: the screen's seeded lower-bound
    search must stay correct for any guess and any monotone predicate."""

    @pytest.mark.parametrize("boundary", range(8))
    @pytest.mark.parametrize("guess", [None, 0, 3, 7])
    def test_finds_boundary_for_any_guess(self, boundary, guess):
        probes = []

        def decide(i):
            probes.append(i)
            return i >= boundary

        assert search_min_match(8, decide, guess=guess) == boundary
        assert len(probes) == len(set(probes))  # never re-probes a size

    @pytest.mark.parametrize("guess", [None, 0, 7])
    def test_unmatchable_returns_none(self, guess):
        assert search_min_match(8, lambda i: False, guess=guess) is None

    def test_correct_guess_resolves_in_two_probes(self):
        probes = []

        def decide(i):
            probes.append(i)
            return i >= 4

        assert search_min_match(8, decide, guess=4) == 4
        assert len(probes) == 2  # the boundary and its predecessor

    def test_unguided_is_binary(self):
        probes = []
        search_min_match(64, lambda i: probes.append(i) or False, guess=None)
        assert len(probes) <= 7  # log2(64) + 1, not a linear walk


class TestConfidenceBands:
    def test_full_simulation_band_is_zero(self, cache):
        from repro.caches.cache import CacheConfig
        from repro.caches.secondary import simulate_secondary

        trace, _ = cache.get("random", scale=1.0)
        config = CacheConfig(capacity=64 * 1024, assoc=2, block_size=64, policy="lru")
        full = simulate_secondary(trace, config)
        assert full.sampled_fraction == 1.0
        assert full.hit_rate_halfwidth() == 0.0

    def test_sampled_band_is_positive_and_shrinks(self, cache):
        from repro.caches.cache import CacheConfig
        from repro.caches.secondary import simulate_secondary

        trace, _ = cache.get("random", scale=1.0)
        config = CacheConfig(capacity=1 << 20, assoc=2, block_size=64, policy="lru")
        sampled = simulate_secondary(trace, config, sample_every=8)
        assert 0.0 < sampled.sampled_fraction < 1.0
        band = sampled.hit_rate_halfwidth()
        assert band > 0.0
        assert sampled.hit_rate_halfwidth(z=1.0) < band  # scales with z

    def test_apriori_halfwidth_edges(self):
        assert sampling_halfwidth(0) == 1.0
        assert sampling_halfwidth(-5) == 1.0
        assert sampling_halfwidth(10_000) < 0.02
        # Worst-case p=0.5 dominates any actual rate.
        assert sampling_halfwidth(400, hit_rate=0.1) < sampling_halfwidth(400)

    def test_screen_margin_is_conservative(self, cache):
        # The pruning margin must cover both noise sources by design.
        assert ESTIMATOR_SLACK > 0.0
        margin = sampling_halfwidth(1000) + ESTIMATOR_SLACK
        assert margin > ESTIMATOR_SLACK
