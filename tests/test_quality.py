"""Repository-quality meta-tests: docs coverage, data consistency,
and golden regression pins for headline numbers."""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro.reporting import paper_data
from repro.workloads import PAPER_BENCHMARKS


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestDocstringCoverage:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__ for module in iter_public_modules() if not module.__doc__
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_public_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at home
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_all_exports_resolve(self):
        for module in iter_public_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"


class TestPaperDataConsistency:
    def test_every_benchmark_in_every_reference_table(self):
        for table in (
            paper_data.TABLE1,
            paper_data.FIGURE3_HIT_AT_10,
            paper_data.TABLE2_EB,
            paper_data.TABLE3_SHORT_LONG,
        ):
            assert set(table) == set(PAPER_BENCHMARKS)

    def test_table4_benchmarks_registered(self):
        assert set(paper_data.TABLE4) <= set(PAPER_BENCHMARKS)

    def test_figure8_gains_are_the_non_unit_stride_set(self):
        from repro.workloads import NON_UNIT_STRIDE_BENCHMARKS

        assert set(paper_data.FIGURE8_GAINS) == set(NON_UNIT_STRIDE_BENCHMARKS)

    def test_reference_values_sane(self):
        for name, (short, long_) in paper_data.TABLE3_SHORT_LONG.items():
            assert 0 <= short <= 100 and 0 <= long_ <= 100, name
        for name, eb in paper_data.TABLE2_EB.items():
            assert 0 < eb < 250, name


class TestHarnessIntegrity:
    def test_benchmark_files_collect(self):
        """Every bench module must import cleanly (a broken bench would
        otherwise only surface in the slow harness run)."""
        import pathlib
        import subprocess
        import sys

        root = pathlib.Path(__file__).resolve().parent.parent
        result = subprocess.run(
            [sys.executable, "-m", "pytest", "benchmarks/", "--collect-only", "-q"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "error" not in result.stdout.lower()

    def test_examples_compile(self):
        """Every example script must at least compile."""
        import pathlib
        import py_compile

        root = pathlib.Path(__file__).resolve().parent.parent
        for script in sorted((root / "examples").glob("*.py")):
            py_compile.compile(str(script), doraise=True)


class TestGoldenNumbers:
    """Headline numbers pinned at fixed seeds: catches silent model or
    simulator drift without waiting for the benchmark harness.  If a
    deliberate change moves one, recalibrate against the paper band and
    update the pin *and* EXPERIMENTS.md together."""

    PINS = {
        # name: (hit % at 10 unfiltered streams, abs tolerance)
        "buk": (68.5, 2.5),
        "appbt": (76.3, 2.5),
        "trfd": (49.3, 2.5),
        "mdg": (44.9, 2.5),
    }

    @pytest.mark.parametrize("name", sorted(PINS))
    def test_pinned_hit_rate(self, name):
        from repro.core import StreamConfig
        from repro.sim import run_streams

        expected, tolerance = self.PINS[name]
        stats = run_streams(name, StreamConfig.jouppi(n_streams=10))
        assert stats.hit_rate_percent == pytest.approx(expected, abs=tolerance)
