"""Tests for repro.caches.cache."""

import numpy as np
import pytest

from repro.caches.cache import Cache, CacheConfig, MissEventKind, MissTrace
from repro.trace.events import Access, AccessKind, Trace


def lru_cache(capacity=1024, assoc=2, block=64):
    return Cache(CacheConfig(capacity=capacity, assoc=assoc, block_size=block, policy="lru"))


class TestConfigValidation:
    def test_paper_l1(self):
        config = CacheConfig.paper_l1()
        assert config.capacity == 64 * 1024
        assert config.assoc == 4
        assert config.policy == "random"
        assert config.n_sets == 256

    def test_direct_mapped(self):
        config = CacheConfig(capacity=1024, assoc=1, block_size=64)
        assert config.n_sets == 16

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity=1024, assoc=2, block_size=64, policy="mru")

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity=1024, assoc=2, block_size=48)

    def test_capacity_not_multiple(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity=1000, assoc=2, block_size=64)

    def test_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity=3 * 128, assoc=2, block_size=64)

    def test_zero_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity=1024, assoc=0, block_size=64)


class TestBasicHitMiss:
    def test_cold_miss_then_hit(self):
        cache = lru_cache()
        hit, _ = cache.access(0x1000)
        assert not hit
        hit, _ = cache.access(0x1000)
        assert hit

    def test_same_block_different_words_hit(self):
        cache = lru_cache()
        cache.access(0x1000)
        hit, _ = cache.access(0x1030)
        assert hit

    def test_adjacent_blocks_are_distinct(self):
        cache = lru_cache()
        cache.access(0)
        hit, _ = cache.access(64)
        assert not hit

    def test_probe_is_non_mutating(self):
        cache = lru_cache()
        assert not cache.probe(0)
        cache.access(0)
        assert cache.probe(0)
        assert cache.stats.accesses == 1

    def test_stats_accumulate(self):
        cache = lru_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)


class TestEvictionAndWriteback:
    def test_lru_eviction_within_set(self):
        # 2-way, 8 sets: blocks 0, 8, 16 all map to set 0.
        cache = lru_cache(capacity=1024, assoc=2)
        n_sets = cache.config.n_sets
        cache.access_block(0)
        cache.access_block(n_sets)
        cache.access_block(2 * n_sets)  # evicts block 0
        hit, _ = cache.access_block(0)
        assert not hit

    def test_clean_eviction_produces_no_writeback(self):
        cache = lru_cache(capacity=1024, assoc=2)
        n_sets = cache.config.n_sets
        for i in range(3):
            _, wb = cache.access_block(i * n_sets, is_write=False)
            assert wb is None
        assert cache.stats.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        cache = lru_cache(capacity=1024, assoc=2)
        n_sets = cache.config.n_sets
        cache.access_block(0, is_write=True)
        cache.access_block(n_sets)
        _, wb = cache.access_block(2 * n_sets)
        assert wb == 0
        assert cache.stats.writebacks == 1

    def test_write_hit_dirties_line(self):
        cache = lru_cache(capacity=1024, assoc=2)
        n_sets = cache.config.n_sets
        cache.access_block(0, is_write=False)
        cache.access_block(0, is_write=True)
        cache.access_block(n_sets)
        _, wb = cache.access_block(2 * n_sets)
        assert wb == 0

    def test_invalidate_discards_dirty_data(self):
        cache = lru_cache()
        cache.access_block(0, is_write=True)
        assert cache.invalidate_block(0)
        assert not cache.probe(0)
        assert cache.stats.invalidations == 1
        assert not cache.invalidate_block(0)

    def test_flush_returns_dirty_blocks(self):
        cache = lru_cache()
        cache.access_block(1, is_write=True)
        cache.access_block(2, is_write=False)
        dirty = cache.flush()
        assert dirty == [1]
        assert cache.resident_blocks() == []

    def test_random_policy_invalidate_keeps_slots_consistent(self):
        cache = Cache(CacheConfig(capacity=512, assoc=4, block_size=64, policy="random"))
        for block in range(4):
            cache.access_block(block * cache.config.n_sets)
        cache.invalidate_block(2 * cache.config.n_sets)
        # Set has a free slot again: inserting must not evict.
        _, wb = cache.access_block(9 * cache.config.n_sets)
        assert wb is None


class TestWritePolicies:
    def test_write_through_store_travels_to_memory(self):
        config = CacheConfig(
            capacity=1024, assoc=2, block_size=64, policy="lru", write_back=False
        )
        cache = Cache(config)
        cache.access_block(0)
        hit, store = cache.access_block(0, is_write=True)
        assert hit and store == 0

    def test_no_allocate_write_miss_does_not_install(self):
        config = CacheConfig(
            capacity=1024,
            assoc=2,
            block_size=64,
            policy="lru",
            write_back=False,
            write_allocate=False,
        )
        cache = Cache(config)
        hit, store = cache.access_block(5, is_write=True)
        assert not hit and store == 5
        assert not cache.probe(5 * 64)


class TestAccessBlockEx:
    def test_reports_clean_eviction(self):
        cache = lru_cache(capacity=1024, assoc=2)
        n_sets = cache.config.n_sets
        cache.access_block_ex(0)
        cache.access_block_ex(n_sets)
        hit, evicted, dirty = cache.access_block_ex(2 * n_sets)
        assert not hit and evicted == 0 and not dirty

    def test_reports_dirty_eviction(self):
        cache = lru_cache(capacity=1024, assoc=2)
        n_sets = cache.config.n_sets
        cache.access_block_ex(0, is_write=True)
        cache.access_block_ex(n_sets)
        _, evicted, dirty = cache.access_block_ex(2 * n_sets)
        assert evicted == 0 and dirty

    def test_rejects_write_through(self):
        cache = Cache(
            CacheConfig(capacity=1024, assoc=2, block_size=64, policy="lru", write_back=False)
        )
        with pytest.raises(ValueError):
            cache.access_block_ex(0)

    def test_fill_block_installs_without_counting(self):
        cache = lru_cache()
        cache.fill_block(7, dirty=True)
        assert cache.stats.accesses == 0
        assert cache.probe(7 * 64)
        dirty = cache.flush()
        assert dirty == [7]

    def test_fill_block_existing_ors_dirty(self):
        cache = lru_cache()
        cache.access_block(3)
        cache.fill_block(3, dirty=True)
        assert cache.flush() == [3]


class TestSimulate:
    def test_miss_trace_structure(self):
        cache = lru_cache(capacity=256, assoc=2)
        trace = Trace.from_accesses(
            [Access.write(0), Access.read(0), Access.read(64)]
        )
        miss = cache.simulate(trace)
        assert miss.n_misses == 2
        assert miss.block_bits == 6
        assert miss.kinds[0] == int(MissEventKind.WRITE_MISS)
        assert miss.kinds[1] == int(MissEventKind.READ_MISS)

    def test_miss_trace_interleaves_writebacks_in_order(self):
        cache = Cache(CacheConfig(capacity=128, assoc=1, block_size=64, policy="lru"))
        n_sets = cache.config.n_sets
        trace = Trace.from_accesses(
            [
                Access.write(0),
                Access.read(n_sets * 64),  # evicts dirty block 0
            ]
        )
        miss = cache.simulate(trace)
        kinds = miss.kinds.tolist()
        assert kinds == [
            int(MissEventKind.WRITE_MISS),
            int(MissEventKind.READ_MISS),
            int(MissEventKind.WRITEBACK),
        ]
        assert miss.addrs[2] == 0

    def test_fast_and_generic_paths_agree(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 15, size=5000, dtype=np.int64)
        kinds = rng.integers(0, 2, size=5000).astype(np.uint8)
        trace = Trace(addrs, kinds)
        fast = Cache(CacheConfig(capacity=2048, assoc=4, block_size=64, policy="random", seed=9))
        generic = Cache(
            CacheConfig(
                capacity=2048,
                assoc=4,
                block_size=64,
                policy="random",
                seed=9,
                write_back=True,
                write_allocate=True,
            )
        )
        fast_miss = fast.simulate(trace)
        # Drive the generic path by stepping access_block directly.
        out = []
        for addr, kind in zip(trace.addrs.tolist(), trace.kinds.tolist()):
            hit, wb = generic.access_block(addr >> 6, kind == 1)
            if not hit:
                out.append(addr >> 6)
            if wb is not None:
                out.append(wb)
        assert fast.stats.misses == generic.stats.misses
        assert fast.stats.writebacks == generic.stats.writebacks

    def test_sequential_sweep_miss_rate(self):
        cache = Cache(CacheConfig.paper_l1())
        trace = Trace.uniform(np.arange(1 << 14, dtype=np.int64) * 8 + (1 << 20))
        cache.simulate(trace)
        # One miss per 64B block of a fresh 128KB sweep.
        assert cache.stats.miss_rate == pytest.approx(1 / 8, rel=0.01)


class TestMissTrace:
    def test_misses_only(self):
        mt = MissTrace(
            np.array([0, 64, 128], dtype=np.int64),
            np.array([0, 2, 1], dtype=np.uint8),
            6,
        )
        demand = mt.misses_only()
        assert len(demand) == 2
        assert mt.n_writebacks == 1

    def test_concat(self):
        a = MissTrace(np.array([0], dtype=np.int64), np.array([0], dtype=np.uint8), 6)
        b = MissTrace(np.array([64], dtype=np.int64), np.array([1], dtype=np.uint8), 6)
        combined = MissTrace.concat([a, b])
        assert len(combined) == 2

    def test_concat_mismatched_blocks_rejected(self):
        a = MissTrace(np.array([0], dtype=np.int64), np.array([0], dtype=np.uint8), 6)
        b = MissTrace(np.array([0], dtype=np.int64), np.array([0], dtype=np.uint8), 7)
        with pytest.raises(ValueError):
            MissTrace.concat([a, b])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MissTrace(np.zeros(2, dtype=np.int64), np.zeros(3, dtype=np.uint8), 6)
