"""Tests for repro.sim.runner and repro.sim.results."""

import pytest

from repro.caches.cache import CacheConfig
from repro.core.config import StreamConfig
from repro.sim.results import L1Summary
from repro.sim.runner import MissTraceCache, run_result, run_streams, simulate_l1
from repro.trace.events import Trace
from repro.workloads import get_workload
from repro.workloads.instructions import with_instructions


class TestSimulateL1:
    def test_sweep_produces_expected_misses(self):
        workload = get_workload("sweep", scale=0.25)
        miss_trace, summary = simulate_l1(workload)
        assert summary.accesses == len(workload.trace())
        assert summary.misses == miss_trace.n_misses
        # 32768 words = 4096 blocks, one miss per block.
        assert summary.misses == 4096

    def test_instruction_traces_use_split_l1(self):
        workload = get_workload("sweep", scale=0.1)
        base_trace = workload.trace()
        augmented = with_instructions(base_trace, per_access=1)
        workload._trace = augmented  # inject the instrumented trace
        miss_trace, summary = simulate_l1(workload)
        assert summary.ifetch_misses > 0
        assert summary.trace_length == len(augmented)

    def test_custom_l1_config(self):
        workload = get_workload("sweep", scale=0.25)
        tiny = CacheConfig(capacity=4096, assoc=2, block_size=64, policy="lru")
        _, summary = simulate_l1(workload, tiny)
        assert summary.misses == 4096  # pure sweep: same miss count


class TestMissTraceCache:
    def test_caches_by_parameters(self):
        cache = MissTraceCache()
        first = cache.get("sweep", scale=0.25)
        second = cache.get("sweep", scale=0.25)
        assert first[0] is second[0]
        assert len(cache) == 1

    def test_distinct_scales_distinct_entries(self):
        cache = MissTraceCache()
        cache.get("sweep", scale=0.25)
        cache.get("sweep", scale=0.5)
        assert len(cache) == 2

    def test_accepts_workload_instance(self):
        cache = MissTraceCache()
        workload = get_workload("sweep", scale=0.25)
        miss_trace, _ = cache.get(workload)
        assert miss_trace.n_misses == 4096

    def test_clear(self):
        cache = MissTraceCache()
        cache.get("sweep", scale=0.25)
        cache.clear()
        assert len(cache) == 0


class TestRunHelpers:
    def test_run_streams_on_sweep(self):
        cache = MissTraceCache()
        stats = run_streams("sweep", StreamConfig.jouppi(n_streams=2), scale=0.25, cache=cache)
        assert stats.hit_rate > 0.99

    def test_run_result_bundles_l1(self):
        cache = MissTraceCache()
        result = run_result("sweep", StreamConfig.jouppi(n_streams=2), scale=0.25, cache=cache)
        assert result.workload == "sweep"
        assert result.l1.misses == result.streams.demand_misses
        assert result.hit_rate_percent > 99

    def test_run_result_to_dict(self):
        cache = MissTraceCache()
        result = run_result("sweep", StreamConfig.jouppi(n_streams=2), scale=0.25, cache=cache)
        payload = result.to_dict()
        assert payload["workload"] == "sweep"
        assert payload["hit_rate_percent"] == pytest.approx(result.hit_rate_percent)
        assert payload["config"]["n_streams"] == 2

    def test_run_result_with_instance(self):
        cache = MissTraceCache()
        workload = get_workload("sweep", scale=0.25, seed=7)
        result = run_result(workload, StreamConfig.jouppi(n_streams=2), cache=cache)
        assert result.seed == 7
        assert result.scale == 0.25

    def test_instance_provenance_wins_over_conflicting_args(self):
        # Regression: the recorded scale/seed must describe what was
        # simulated (the instance's own parameters), not the caller's
        # ignored scale=/seed= arguments.
        cache = MissTraceCache()
        workload = get_workload("sweep", scale=0.25, seed=7)
        result = run_result(
            workload, StreamConfig.jouppi(n_streams=2), scale=1.0, seed=0, cache=cache
        )
        assert result.scale == 0.25
        assert result.seed == 7
        # And the cache keyed it under the instance parameters: the same
        # name+scale+seed by string lookup reuses the entry.
        assert cache.get("sweep", scale=0.25, seed=7)[0] is cache.get(workload)[0]
        assert len(cache) == 1


class TestL1Summary:
    def test_from_stats(self):
        from repro.caches.cache import CacheStats

        stats = CacheStats(accesses=100, hits=90, misses=10, writebacks=2)
        summary = L1Summary.from_stats(stats, trace_length=100, data_set_bytes=4096)
        assert summary.miss_rate == pytest.approx(0.1)
        assert summary.data_set_bytes == 4096
