"""Tests for repro.trace.events."""

import numpy as np
import pytest

from repro.trace.events import Access, AccessKind, Trace


class TestAccessKind:
    def test_is_write(self):
        assert AccessKind.WRITE.is_write
        assert not AccessKind.READ.is_write
        assert not AccessKind.IFETCH.is_write

    def test_is_instruction(self):
        assert AccessKind.IFETCH.is_instruction
        assert not AccessKind.READ.is_instruction


class TestAccess:
    def test_constructors(self):
        assert Access.read(10) == Access(10, AccessKind.READ)
        assert Access.write(10) == Access(10, AccessKind.WRITE)
        assert Access.ifetch(10) == Access(10, AccessKind.IFETCH)


class TestTraceConstruction:
    def test_empty(self):
        trace = Trace.empty()
        assert len(trace) == 0
        assert list(trace) == []

    def test_from_arrays(self):
        trace = Trace.from_arrays([1, 2, 3], [0, 1, 2])
        assert len(trace) == 3
        assert trace[1] == Access(2, AccessKind.WRITE)

    def test_from_accesses(self):
        trace = Trace.from_accesses([Access.read(8), Access.write(16)])
        assert trace[0] == Access(8, AccessKind.READ)
        assert trace[1] == Access(16, AccessKind.WRITE)

    def test_from_accesses_empty(self):
        assert len(Trace.from_accesses([])) == 0

    def test_uniform(self):
        trace = Trace.uniform([1, 2, 3], AccessKind.WRITE)
        assert all(a.kind is AccessKind.WRITE for a in trace)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.uint8))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros((2, 2), dtype=np.int64), np.zeros((2, 2), dtype=np.uint8))


class TestConcat:
    def test_concat_orders_traces(self):
        a = Trace.uniform([1, 2])
        b = Trace.uniform([3])
        combined = Trace.concat([a, b])
        assert [acc.addr for acc in combined] == [1, 2, 3]

    def test_concat_skips_empty(self):
        combined = Trace.concat([Trace.empty(), Trace.uniform([5]), Trace.empty()])
        assert len(combined) == 1

    def test_concat_nothing(self):
        assert len(Trace.concat([])) == 0


class TestSequenceProtocol:
    def test_iteration_yields_accesses(self):
        trace = Trace.uniform([10, 20])
        items = list(trace)
        assert items == [Access.read(10), Access.read(20)]

    def test_slicing_returns_trace(self):
        trace = Trace.uniform([1, 2, 3, 4])
        sub = trace[1:3]
        assert isinstance(sub, Trace)
        assert [a.addr for a in sub] == [2, 3]

    def test_equality(self):
        assert Trace.uniform([1, 2]) == Trace.uniform([1, 2])
        assert Trace.uniform([1, 2]) != Trace.uniform([1, 3])
        assert Trace.uniform([1]) != Trace.uniform([1], AccessKind.WRITE)

    def test_equality_with_non_trace(self):
        assert Trace.uniform([1]) != "not a trace"


class TestViews:
    def test_data_only_strips_ifetches(self):
        trace = Trace.from_accesses(
            [Access.read(1), Access.ifetch(2), Access.write(3)]
        )
        data = trace.data_only()
        assert [a.addr for a in data] == [1, 3]

    def test_instructions_only(self):
        trace = Trace.from_accesses([Access.read(1), Access.ifetch(2)])
        instr = trace.instructions_only()
        assert [a.addr for a in instr] == [2]

    def test_counts(self):
        trace = Trace.from_accesses(
            [Access.read(1), Access.read(2), Access.write(3), Access.ifetch(4)]
        )
        counts = trace.counts()
        assert counts[AccessKind.READ] == 2
        assert counts[AccessKind.WRITE] == 1
        assert counts[AccessKind.IFETCH] == 1

    def test_counts_empty(self):
        counts = Trace.empty().counts()
        assert all(v == 0 for v in counts.values())

    def test_to_accesses(self):
        trace = Trace.uniform([7])
        assert trace.to_accesses() == [Access.read(7)]
