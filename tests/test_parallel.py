"""Tests for repro.sim.parallel: the process-pool sweep executor.

The equivalence tests run real worker processes (``jobs=2``) and assert
bit-identical ``StreamStats`` against the serial path — dataclass
equality covers every counter, the bandwidth model, and the length
histograms.  Small synthetic workloads keep the pool runs quick.
"""

import numpy as np
import pytest

from repro.core.config import StreamConfig
from repro.sim.parallel import (
    SweepExecutionError,
    SweepTask,
    TaskError,
    grid_stats,
    run_grid,
)
from repro.sim.results import RunResult
from repro.sim.runner import MissTraceCache
from repro.sim.sweep import compare_configs, sweep_n_streams
from repro.trace.store import TraceStore

WORKLOADS = ("sweep", "stride")
SCALE = 0.25


def small_tasks():
    return [
        SweepTask(
            key=(name, n),
            workload=name,
            config=StreamConfig.jouppi(n_streams=n),
            scale=SCALE,
        )
        for name in WORKLOADS
        for n in (1, 2, 4)
    ]


class TestRunGrid:
    def test_results_in_task_order(self):
        tasks = small_tasks()
        results = run_grid(tasks, jobs=1)
        assert len(results) == len(tasks)
        for task, result in zip(tasks, results):
            assert isinstance(result, RunResult)
            assert result.workload == task.key[0]
            assert result.streams.config.n_streams == task.key[1]

    def test_parallel_matches_serial_bit_for_bit(self):
        tasks = small_tasks()
        serial = run_grid(tasks, jobs=1, cache=MissTraceCache())
        parallel = run_grid(tasks, jobs=2)
        assert [r.streams for r in serial] == [r.streams for r in parallel]
        assert [r.l1 for r in serial] == [r.l1 for r in parallel]

    def test_parallel_chunking_preserves_order(self):
        tasks = small_tasks()
        serial = run_grid(tasks, jobs=1)
        chunked = run_grid(tasks, jobs=2, chunk_size=1)
        assert [r.streams for r in serial] == [r.streams for r in chunked]

    def test_bad_workload_yields_tagged_error(self):
        tasks = [
            SweepTask(key="ok", workload="sweep", config=StreamConfig.jouppi(), scale=SCALE),
            SweepTask(key="bad", workload="no-such-workload", config=StreamConfig.jouppi()),
        ]
        results = run_grid(tasks, jobs=1)
        assert isinstance(results[0], RunResult)
        error = results[1]
        assert isinstance(error, TaskError)
        assert error.key == "bad"
        assert error.workload == "no-such-workload"
        assert "no-such-workload" in error.error
        assert error.details  # traceback captured for debugging

    def test_bad_workload_tagged_in_pool_too(self):
        tasks = [
            SweepTask(key="bad", workload="no-such-workload", config=StreamConfig.jouppi()),
            SweepTask(key="ok", workload="sweep", config=StreamConfig.jouppi(), scale=SCALE),
        ]
        results = run_grid(tasks, jobs=2, chunk_size=1)
        assert isinstance(results[0], TaskError)
        assert isinstance(results[1], RunResult)

    def test_accepts_workload_instances(self):
        from repro.workloads import get_workload

        workload = get_workload("sweep", scale=SCALE, seed=3)
        [result] = run_grid(
            [SweepTask(key=0, workload=workload, config=StreamConfig.jouppi())]
        )
        assert result.seed == 3
        assert result.scale == SCALE


class TestStoreIntegration:
    def test_warm_store_results_identical(self, tmp_path):
        tasks = small_tasks()
        baseline = run_grid(tasks, jobs=1, cache=MissTraceCache())
        store = TraceStore(tmp_path)
        cold = run_grid(tasks, jobs=1, store=store)
        assert store.n_results() == len(tasks)
        warm = run_grid(tasks, jobs=1, store=store)
        assert [r.streams for r in baseline] == [r.streams for r in cold]
        assert [r.streams for r in baseline] == [r.streams for r in warm]
        assert [r.l1 for r in baseline] == [r.l1 for r in warm]

    def test_store_inherited_from_cache(self, tmp_path):
        store = TraceStore(tmp_path)
        cache = MissTraceCache(store=store)
        run_grid(small_tasks(), jobs=1, cache=cache)
        assert len(store) == len(WORKLOADS)
        assert store.n_results() == len(small_tasks())

    def test_parallel_workers_share_store(self, tmp_path):
        store = TraceStore(tmp_path)
        run_grid(small_tasks(), jobs=2, store=store)
        warm = run_grid(small_tasks(), jobs=2, store=store)
        serial = run_grid(small_tasks(), jobs=1, cache=MissTraceCache())
        assert [r.streams for r in serial] == [r.streams for r in warm]


class TestGridStats:
    def test_keys_are_task_keys(self):
        stats = grid_stats(small_tasks(), jobs=1)
        assert set(stats) == {(name, n) for name in WORKLOADS for n in (1, 2, 4)}

    def test_raises_on_any_failure(self):
        tasks = [
            SweepTask(key="bad", workload="no-such-workload", config=StreamConfig.jouppi())
        ]
        with pytest.raises(SweepExecutionError) as excinfo:
            grid_stats(tasks, jobs=1)
        assert excinfo.value.errors[0].key == "bad"


class TestSweepHelpersEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_sweep_n_streams_serial_vs_parallel(self, workload):
        values = (1, 2, 4)
        serial = sweep_n_streams(
            workload, values, scale=SCALE, cache=MissTraceCache(), jobs=1
        )
        parallel = sweep_n_streams(
            workload, values, scale=SCALE, cache=MissTraceCache(), jobs=2
        )
        assert serial == parallel  # dataclass equality: every counter + histograms
        for n in values:
            assert serial[n].config.n_streams == n
            assert serial[n].lengths.hits_by_bucket == parallel[n].lengths.hits_by_bucket
            assert serial[n].bandwidth == parallel[n].bandwidth

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_compare_configs_serial_vs_parallel(self, workload):
        configs = {
            "jouppi": StreamConfig.jouppi(n_streams=4),
            "filtered": StreamConfig.filtered(n_streams=4),
        }
        serial = compare_configs(workload, configs, scale=SCALE, cache=MissTraceCache())
        parallel = compare_configs(
            workload, configs, scale=SCALE, cache=MissTraceCache(), jobs=2
        )
        assert serial == parallel
        assert set(serial) == set(configs)


class TestReplicationJobs:
    def test_replicate_parallel_matches_serial(self):
        from repro.sim.replication import replicate

        config = StreamConfig.jouppi(n_streams=4)
        serial_runs, serial_summary = replicate(
            "sweep", config, seeds=(0, 1), scale=SCALE, cache=MissTraceCache(), jobs=1
        )
        parallel_runs, parallel_summary = replicate(
            "sweep", config, seeds=(0, 1), scale=SCALE, cache=MissTraceCache(), jobs=2
        )
        assert [r.streams for r in serial_runs] == [r.streams for r in parallel_runs]
        assert serial_summary["hit_pct"].mean == parallel_summary["hit_pct"].mean
