"""Tests for repro.reporting.experiments (exhibit drivers).

The full paper exhibits run in the benchmark harness; here the drivers
are exercised on a cheap subset so tests stay fast.
"""

import pytest

from repro.reporting import experiments
from repro.sim.runner import MissTraceCache


@pytest.fixture(scope="module")
def cache():
    return MissTraceCache()


SMALL = ("buk",)  # the cheapest paper benchmark


class TestTable1:
    def test_rows_and_render(self, cache):
        rows = experiments.table1(names=SMALL, cache=cache)
        assert rows[0].name == "buk"
        assert rows[0].model_miss_rate_pct > 0
        out = experiments.render_table1(rows)
        assert "buk" in out
        assert "Table 1" in out


class TestFigure3:
    def test_sweep_and_render(self, cache):
        data = experiments.figure3(names=SMALL, n_values=(1, 4), cache=cache)
        assert set(data["buk"]) == {1, 4}
        assert data["buk"][4] >= data["buk"][1]
        out = experiments.render_figure3(data)
        assert "Figure 3" in out
        assert "legend" in out


class TestTable2:
    def test_eb_row(self, cache):
        rows = experiments.table2(names=SMALL, cache=cache)
        row = rows[0]
        assert row.eb_measured_pct > 0
        assert row.paper_eb_pct == 48
        assert "buk" in experiments.render_table2(rows)


class TestTable3:
    def test_distribution_sums_to_100(self, cache):
        data = experiments.table3(names=SMALL, cache=cache)
        assert sum(data["buk"]) == pytest.approx(100.0, abs=0.5)
        out = experiments.render_table3(data)
        assert ">20" in out


class TestFigure5:
    def test_filter_reduces_eb(self, cache):
        rows = experiments.figure5(names=SMALL, cache=cache)
        row = rows[0]
        assert row.eb_with_filter < row.eb_no_filter
        assert "filter" in experiments.render_figure5(rows)


class TestFigure8:
    def test_stride_detection_at_least_matches_unit(self, cache):
        rows = experiments.figure8(names=("buk",), cache=cache)
        row = rows[0]
        assert row.hit_constant_stride >= row.hit_unit_only - 1.0
        assert "Figure 8" in experiments.render_figure8(rows)


class TestFigure9:
    def test_sweep_shape(self, cache):
        data = experiments.figure9(
            names=("stride",), czone_bits_values=(8, 14), cache=cache
        )
        assert data["stride"][14] > data["stride"][8]
        assert "czone" in experiments.render_figure9(data)


class TestTable4:
    def test_scaling_rows(self, cache):
        rows = experiments.table4(scales={"buk": (0.25, 0.5)}, cache=cache)
        assert len(rows) == 2
        assert rows[0].scale == 0.25
        out = experiments.render_table4(rows)
        assert "Table 4" in out
        assert "min L2" in out


class TestAnalytic4:
    def test_verified_rows_agree(self, cache):
        rows = experiments.analytic4(scales={"buk": (0.25, 0.5)}, cache=cache)
        assert len(rows) == 2
        assert all(r.agree for r in rows)
        assert all(r.min_l2_analytic == r.min_l2_simulated for r in rows)
        assert all(r.configs_analytic <= r.grid_configs // 4 for r in rows)
        out = experiments.render_analytic4(rows)
        assert "Analytic Table 4 screen" in out
        assert "all matched sizes agree" in out

    def test_unverified_skips_brute_force(self, cache):
        rows = experiments.analytic4(
            scales={"buk": (0.25,)}, cache=cache, verify=False
        )
        assert rows[0].min_l2_simulated == "-"
        assert rows[0].configs_simulated == 0

    def test_render_reports_disagreement(self):
        row = experiments.AnalyticScreenRow(
            name="buk", scale=0.5, stream_hit_pct=50.0,
            min_l2_analytic="1 MB", min_l2_simulated="2 MB",
            configs_analytic=4, configs_simulated=20, grid_configs=42,
            agree=False,
        )
        assert "DISAGREEMENTS: buk@0.5" in experiments.render_analytic4([row])
