"""Tests for repro.caches.victim (Jouppi victim cache ablation)."""

import numpy as np
import pytest

from repro.caches.cache import Cache, CacheConfig
from repro.caches.victim import CacheWithVictim, VictimCacheConfig
from repro.trace.events import Trace


def direct_mapped(capacity=1024):
    return CacheConfig(capacity=capacity, assoc=1, block_size=64, policy="lru")


class TestVictimBasics:
    def test_conflict_pair_ping_pong_serviced_by_victim(self):
        system = CacheWithVictim(direct_mapped(), VictimCacheConfig(entries=2))
        n_sets = system.cache.config.n_sets
        a, b = 0, n_sets  # same set
        system.access(a * 64)
        system.access(b * 64)  # evicts a into the victim buffer
        serviced, _ = system.access(a * 64)
        assert serviced
        assert system.victim_hits == 1

    def test_victim_swap_restores_dirty_bit(self):
        system = CacheWithVictim(direct_mapped(), VictimCacheConfig(entries=2))
        n_sets = system.cache.config.n_sets
        system.access(0, is_write=True)  # dirty block 0
        system.access(n_sets * 64)  # 0 -> victim buffer (dirty)
        system.access(0)  # swap back
        # Evict 0 again: it must still write back (its dirty bit survived).
        _, wb = system.access(n_sets * 64)
        drained = system.drain()
        assert 0 in drained or wb == 0

    def test_dirty_blocks_written_back_on_age_out(self):
        system = CacheWithVictim(direct_mapped(), VictimCacheConfig(entries=1))
        n_sets = system.cache.config.n_sets
        system.access(0, is_write=True)
        system.access(n_sets * 64)  # dirty 0 into 1-entry buffer
        _, wb = system.access(2 * n_sets * 64)  # dirty 0 aged out
        assert wb == 0

    def test_clean_age_out_produces_no_writeback(self):
        system = CacheWithVictim(direct_mapped(), VictimCacheConfig(entries=1))
        n_sets = system.cache.config.n_sets
        system.access(0)
        system.access(n_sets * 64)
        _, wb = system.access(2 * n_sets * 64)
        assert wb is None

    def test_combined_hit_rate(self):
        system = CacheWithVictim(direct_mapped(), VictimCacheConfig(entries=4))
        n_sets = system.cache.config.n_sets
        for _ in range(10):
            system.access(0)
            system.access(n_sets * 64)
        assert system.combined_hit_rate > 0.8

    def test_requires_write_back_cache(self):
        with pytest.raises(ValueError):
            CacheWithVictim(
                CacheConfig(capacity=1024, assoc=1, block_size=64, write_back=False)
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VictimCacheConfig(entries=0)


class TestVictimEffectiveness:
    def test_victim_fixes_conflict_misses_like_associativity(self):
        """Jouppi's claim: a small victim buffer removes most conflict
        misses of a direct-mapped cache."""
        rng = np.random.default_rng(11)
        # Conflict-heavy: pairs of blocks mapping to the same set.
        n_sets = 1024 // 64  # direct mapped: 16 sets
        blocks = []
        for _ in range(2000):
            s = rng.integers(0, n_sets)
            blocks.extend([s, s + n_sets])
        trace = Trace.uniform(np.asarray(blocks, dtype=np.int64) * 64)

        plain = Cache(direct_mapped())
        plain.simulate(trace)
        with_victim = CacheWithVictim(direct_mapped(), VictimCacheConfig(entries=4))
        with_victim.simulate(trace)

        assert with_victim.combined_hit_rate > plain.stats.hit_rate + 0.3

    def test_simulate_produces_off_chip_events_only(self):
        system = CacheWithVictim(direct_mapped(), VictimCacheConfig(entries=4))
        n_sets = system.cache.config.n_sets
        trace = Trace.uniform(np.asarray([0, n_sets, 0, n_sets], dtype=np.int64) * 64)
        miss = system.simulate(trace)
        # First two accesses miss off-chip; the ping-pong afterwards is
        # serviced by the victim buffer.
        assert miss.n_misses == 2

    def test_victim_buffer_capacity_respected(self):
        system = CacheWithVictim(direct_mapped(), VictimCacheConfig(entries=2))
        n_sets = system.cache.config.n_sets
        for i in range(5):
            system.access(i * n_sets * 64)
        assert len(system.resident_victims()) <= 2
