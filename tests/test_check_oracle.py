"""Oracle-model tests: crafted cases where the reference must agree with
the optimized simulators, including the czone-boundary and
negative-stride satellite coverage."""

import numpy as np
import pytest

from repro.caches.cache import Cache, CacheConfig, MissEventKind, MissTrace
from repro.check import oracle
from repro.core.config import StreamConfig, StrideDetector
from repro.core.prefetcher import StreamPrefetcher
from repro.trace.events import Trace


def make_miss_trace(addrs, kinds=None, block_bits=6):
    addrs = np.asarray(addrs, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(addrs.shape, dtype=np.uint8)
    else:
        kinds = np.asarray(kinds, dtype=np.uint8)
    return MissTrace(addrs, kinds, block_bits)


def run_both(config, miss_trace):
    opt = StreamPrefetcher(config).run(miss_trace)
    ref = oracle.RefStreamPrefetcher(config).run(
        miss_trace.addrs.tolist(), miss_trace.kinds.tolist()
    )
    return opt, ref


def assert_counters_match(opt, ref):
    assert opt.demand_misses == ref["demand_misses"]
    assert opt.stream_hits == ref["stream_hits"]
    assert opt.in_flight_matches == ref["in_flight_matches"]
    assert opt.prefetches_issued == ref["prefetches_issued"]
    assert opt.prefetches_used == ref["prefetches_used"]
    assert opt.allocations == ref["allocations"]
    assert opt.invalidations == ref["invalidations"]
    assert opt.unit_filter_hits == ref["unit_filter_hits"]
    assert opt.detector_hits == ref["detector_hits"]
    assert dict(opt.lengths.hits_by_bucket) == ref["lengths"]["hits_by_bucket"]
    assert opt.lengths.zero_length_streams == ref["lengths"]["zero_length_streams"]
    assert opt.bandwidth.eb_measured == ref["eb_measured"]
    assert opt.bandwidth.eb_estimate == ref["eb_estimate"]


class TestRefCache:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize(
        "write_back,write_allocate",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_matches_optimized_cache(self, policy, write_back, write_allocate):
        rng = np.random.default_rng(11)
        addrs = rng.integers(0, 1 << 14, size=800, dtype=np.int64)
        kinds = rng.integers(0, 2, size=800).astype(np.uint8)
        trace = Trace(addrs, kinds)
        config = CacheConfig(
            capacity=2048,
            assoc=2,
            block_size=64,
            policy=policy,
            write_back=write_back,
            write_allocate=write_allocate,
            seed=5,
        )
        opt_cache = Cache(config)
        opt_miss = opt_cache.simulate(trace)

        ref = oracle.RefCache(2048, 2, 64, policy, write_back, write_allocate, 5)
        events = []
        for addr, kind in zip(addrs.tolist(), kinds.tolist()):
            ref.access(addr, kind, events)

        assert opt_miss.addrs.tolist() == [a for a, _ in events]
        assert opt_miss.kinds.tolist() == [k for _, k in events]
        assert opt_cache.stats.misses == ref.misses
        assert opt_cache.stats.writebacks == ref.writebacks

    def test_split_l1_with_ifetch(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 14, size=600, dtype=np.int64)
        kinds = rng.integers(0, 3, size=600).astype(np.uint8)
        trace = Trace(addrs, kinds)
        from repro.check.differ import _FixedWorkload
        from repro.sim.runner import simulate_l1

        config = CacheConfig(capacity=1024, assoc=2, block_size=64, policy="lru")
        miss_trace, summary = simulate_l1(_FixedWorkload(trace), config)
        events, ref_summary = oracle.ref_simulate_l1(
            addrs.tolist(), kinds.tolist(), 1024, 2, 64, policy="lru"
        )
        assert miss_trace.addrs.tolist() == [a for a, _ in events]
        assert miss_trace.kinds.tolist() == [k for _, k in events]
        assert summary.ifetch_misses == ref_summary["ifetch_misses"]


class TestCzoneBoundary:
    """Satellite: strided stream crossing a czone partition boundary."""

    def test_boundary_crossing_mid_verification(self):
        # czone_bits=10 -> 1KB partitions.  A 512-byte stride puts
        # exactly two misses in every partition: each FSM reaches META2
        # (one stride guess recorded) and then the walk crosses the
        # boundary before the third, verifying miss arrives.  No stream
        # is ever allocated.
        config = StreamConfig(
            n_streams=4,
            unit_filter_entries=4,
            stride_detector=StrideDetector.CZONE,
            czone_filter_entries=4,
            czone_bits=10,
        )
        addrs = [8192 + i * 512 for i in range(8)]
        opt, ref = run_both(config, make_miss_trace(addrs))
        assert_counters_match(opt, ref)
        assert opt.detector_hits == 0
        assert opt.allocations == 0

    def test_stride_reverifies_after_crossing(self):
        # A shorter stride (192 bytes, ~5 misses per 1KB partition)
        # loses one verification at the boundary but re-verifies inside
        # the next partition — the stream survives the crossing.
        config = StreamConfig(
            n_streams=4,
            unit_filter_entries=4,
            stride_detector=StrideDetector.CZONE,
            czone_filter_entries=4,
            czone_bits=10,
        )
        start = 4 * (1 << 10) - 384
        addrs = [start + i * 192 for i in range(10)]
        opt, ref = run_both(config, make_miss_trace(addrs))
        assert_counters_match(opt, ref)
        assert opt.detector_hits >= 1
        assert opt.stream_hits > 0

    def test_same_zone_stride_verifies(self):
        # The same stride fully inside one (larger) partition verifies on
        # the third miss and services the following misses.
        config = StreamConfig(
            n_streams=4,
            unit_filter_entries=4,
            stride_detector=StrideDetector.CZONE,
            czone_filter_entries=4,
            czone_bits=16,
        )
        addrs = [4096 + i * 192 for i in range(8)]
        opt, ref = run_both(config, make_miss_trace(addrs))
        assert_counters_match(opt, ref)
        assert opt.detector_hits == 1
        assert opt.stream_hits > 0


class TestNegativeStrides:
    """Satellite: allow_negative_strides=False suppresses descending
    allocations in both detectors, and the oracle agrees."""

    def descending(self, stride):
        start = 1 << 20
        return [start - i * stride for i in range(10)]

    @pytest.mark.parametrize("detector", [StrideDetector.CZONE, StrideDetector.MIN_DELTA])
    def test_descending_allocations_suppressed(self, detector):
        config = StreamConfig(
            n_streams=4,
            unit_filter_entries=4,
            stride_detector=detector,
            czone_bits=16,
            allow_negative_strides=False,
        )
        opt, ref = run_both(config, make_miss_trace(self.descending(192)))
        assert_counters_match(opt, ref)
        assert opt.detector_hits == 0
        assert opt.stream_hits == 0

    @pytest.mark.parametrize("detector", [StrideDetector.CZONE, StrideDetector.MIN_DELTA])
    def test_descending_allocations_allowed(self, detector):
        config = StreamConfig(
            n_streams=4,
            unit_filter_entries=4,
            stride_detector=detector,
            czone_bits=16,
            allow_negative_strides=True,
        )
        opt, ref = run_both(config, make_miss_trace(self.descending(192)))
        assert_counters_match(opt, ref)
        assert opt.detector_hits >= 1
        assert opt.stream_hits > 0

    def test_descending_unit_runs_unaffected(self):
        # The unit filter only matches ascending pairs (a then a+1), so
        # a descending block run allocates nothing either way.
        config = StreamConfig(
            n_streams=4, unit_filter_entries=4, allow_negative_strides=False
        )
        addrs = [(1 << 16) - i * 64 for i in range(8)]
        opt, ref = run_both(config, make_miss_trace(addrs))
        assert_counters_match(opt, ref)
        assert opt.allocations == 0


class TestStreamEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            StreamConfig.jouppi(n_streams=4),
            StreamConfig.filtered(n_streams=4),
            StreamConfig.non_unit(n_streams=4),
            StreamConfig(n_streams=4, depth=4, lookup_depth=3, unit_filter_entries=8),
            StreamConfig(n_streams=4, min_lead=2, unit_filter_entries=8),
            StreamConfig(n_streams=4, partitioned=True, i_streams=2),
        ],
    )
    def test_mixed_trace_counters_match(self, config):
        rng = np.random.default_rng(29)
        addrs, kinds = [], []
        wb = int(MissEventKind.WRITEBACK)
        ifetch = int(MissEventKind.IFETCH_MISS)
        for _ in range(40):
            start = int(rng.integers(0, 1 << 20))
            for i in range(int(rng.integers(2, 12))):
                addrs.append(start + i * 64)
                kinds.append(int(rng.choice([0, 0, 0, 1, wb, ifetch])))
        opt, ref = run_both(config, make_miss_trace(addrs, kinds))
        assert_counters_match(opt, ref)

    def test_bucket_helper_matches_lengths_module(self):
        from repro.core.lengths import bucket_of

        for length in (1, 5, 6, 10, 11, 15, 16, 20, 21, 100):
            assert oracle.ref_bucket_of(length) == bucket_of(length)
