"""Tests for repro.obs.metrics: the mergeable metrics substrate.

The cross-process collection protocol rests on two properties proved
here: merging is *associative* (any grouping of worker snapshots yields
the same totals) and *loss-free* for counters and histogram count/sum
(exact integer and same-observation float sums).  The service-facing
snapshot shape is pinned separately in tests/test_service.py.
"""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    diff_snapshots,
    engine_registry,
    merge_snapshots,
    render_snapshot_text,
    strip_samples,
)


def registry_with(counts, gauges=(), observations=()) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name, value in dict(counts).items():
        registry.counter(name).inc(value)
    for name, value in dict(gauges).items():
        registry.gauge(name).set(value)
    for name, values in dict(observations).items():
        for value in values:
            registry.histogram(name).observe(value)
    return registry


class TestMergeSnapshots:
    def test_counters_sum_exactly(self):
        a = registry_with({"cells": 3, "hits": 1}).snapshot()
        b = registry_with({"cells": 4}).snapshot()
        merged = merge_snapshots(a, b)
        assert merged["counters"]["cells"] == 7
        assert merged["counters"]["hits"] == 1

    def test_histogram_count_sum_exact_and_quantiles_from_union(self):
        a = registry_with({}, observations={"ms": [1.0, 2.0]}).snapshot(
            include_samples=True
        )
        b = registry_with({}, observations={"ms": [3.0, 4.0, 5.0]}).snapshot(
            include_samples=True
        )
        merged = merge_snapshots(a, b)
        entry = merged["histograms"]["ms"]
        assert entry["count"] == 5
        assert entry["sum"] == pytest.approx(15.0)
        # Quantiles are recomputed over the union of both windows, not
        # interpolated between per-process values.
        assert entry["p50"] == 3.0
        assert entry["p99"] == 5.0

    def test_merge_is_associative(self):
        # Integer-valued gauges so float rounding cannot cloud equality.
        parts = [
            registry_with({"c": i + 1}, gauges={"g": i}, observations={"h": [float(i)]})
            .snapshot(include_samples=True)
            for i in range(4)
        ]
        left = merge_snapshots(merge_snapshots(parts[0], parts[1]), parts[2], parts[3])
        right = merge_snapshots(parts[0], merge_snapshots(parts[1], parts[2], parts[3]))
        assert left == right

    def test_inputs_without_samples_still_merge_count_sum(self):
        bare = {"counters": {}, "gauges": {}, "histograms": {"h": {"count": 2, "sum": 9.0}}}
        merged = merge_snapshots(bare, bare)
        assert merged["histograms"]["h"]["count"] == 4
        assert merged["histograms"]["h"]["sum"] == pytest.approx(18.0)


class TestDrainAndMerge:
    def test_drain_resets_to_zero(self):
        registry = registry_with({"c": 5}, observations={"h": [1.0]})
        first = registry.drain()
        assert first["counters"]["c"] == 5
        assert first["histograms"]["h"]["count"] == 1
        second = registry.drain()
        assert second["counters"]["c"] == 0
        assert second["histograms"]["h"]["count"] == 0

    def test_repeated_drains_never_double_count(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        for chunk in range(3):
            worker.counter("cells").inc(2)
            parent.merge(worker.drain())
        assert parent.counter("cells").value == 6

    def test_merge_creates_unknown_instruments(self):
        parent = MetricsRegistry()
        parent.merge(
            registry_with({"new_c": 1}, gauges={"new_g": 2.0}).snapshot()
        )
        assert parent.counter("new_c").value == 1
        assert parent.gauge("new_g").value == 2.0


class TestDiffSnapshots:
    def test_attributes_one_interval(self):
        registry = registry_with({"c": 10}, observations={"h": [1.0, 2.0]})
        before = registry.snapshot()
        registry.counter("c").inc(5)
        registry.histogram("h").observe(9.0)
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["counters"]["c"] == 5
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == pytest.approx(9.0)


class TestRenderings:
    def test_render_snapshot_text_matches_registry_rendering(self):
        registry = registry_with({"c": 3}, gauges={"g": 1.5}, observations={"h": [2.0]})
        assert render_snapshot_text(registry.snapshot()) in registry.render_text()

    def test_strip_samples_drops_only_samples(self):
        snapshot = registry_with({}, observations={"h": [1.0]}).snapshot(
            include_samples=True
        )
        stripped = strip_samples(snapshot)
        assert "samples" not in stripped["histograms"]["h"]
        assert stripped["histograms"]["h"]["count"] == 1


class TestEngineRegistry:
    def test_is_a_process_singleton(self):
        assert engine_registry() is engine_registry()

    def test_service_shim_reexports(self):
        import repro.obs.metrics as obs_metrics
        import repro.service.metrics as service_metrics

        assert service_metrics.MetricsRegistry is obs_metrics.MetricsRegistry
        assert service_metrics.Counter is obs_metrics.Counter
