"""Tests for repro.analytic.profile and repro.analytic.model: the
single-pass stack-distance profiler and its hit-rate evaluators."""

import numpy as np
import pytest

from repro.analytic import (
    PROFILE_BLOCK_SIZES,
    LocalityProfile,
    best_estimate_at_size,
    estimate_hit_rate,
    fa_hit_count,
    fa_hit_curve,
    fa_hit_rate,
    profile_miss_trace,
)
from repro.caches.cache import CacheConfig, MissEventKind, MissTrace
from repro.caches.secondary import simulate_secondary


def make_trace(addrs, kinds=None, block_bits=6):
    addrs = np.asarray(addrs, dtype=np.int64)
    if kinds is None:
        kinds = np.full(len(addrs), int(MissEventKind.READ_MISS), dtype=np.uint8)
    else:
        kinds = np.asarray(kinds, dtype=np.uint8)
    return MissTrace(addrs, kinds, block_bits, None)


def random_trace(n=2000, n_blocks=96, write_frac=0.25, wb_frac=0.1, seed=11):
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, n_blocks, size=n) << 6).astype(np.int64)
    kinds = np.full(n, int(MissEventKind.READ_MISS), dtype=np.uint8)
    draw = rng.random(n)
    kinds[draw < write_frac] = int(MissEventKind.WRITE_MISS)
    kinds[draw > 1.0 - wb_frac] = int(MissEventKind.WRITEBACK)
    return MissTrace(addrs, kinds, 6, None)


def fa_config(capacity_blocks, block_size):
    return CacheConfig(
        capacity=capacity_blocks * block_size,
        assoc=capacity_blocks,
        block_size=block_size,
        policy="lru",
    )


class TestEdgeCases:
    def test_zero_length_trace(self):
        profiles = profile_miss_trace(make_trace([]))
        for bs in PROFILE_BLOCK_SIZES:
            profile = profiles[bs]
            assert profile.demand_accesses == 0
            assert profile.unique_blocks == 0
            assert profile.writebacks == 0
            assert fa_hit_rate(profile, bs) == 0.0  # pinned, not NaN

    def test_single_block_trace(self):
        # Same block five times: one cold read, four distance-0 hits.
        profiles = profile_miss_trace(make_trace([0x1000] * 5))
        profile = profiles[64]
        assert profile.cold_reads == 1
        assert profile.read_hist.tolist() == [4]
        assert profile.unique_blocks == 1
        assert profile.hits_within(1) == 4

    def test_write_only_trace(self):
        kinds = [int(MissEventKind.WRITE_MISS)] * 4
        profiles = profile_miss_trace(make_trace([0, 64, 0, 64], kinds))
        profile = profiles[64]
        assert profile.cold_writes == 2
        assert profile.cold_reads == 0
        assert int(profile.read_hist.sum()) == 0
        assert profile.write_hist.tolist() == [0, 2]  # both reuses at distance 1

    def test_writebacks_counted_separately(self):
        kinds = [
            int(MissEventKind.READ_MISS),
            int(MissEventKind.WRITEBACK),
            int(MissEventKind.READ_MISS),
        ]
        profiles = profile_miss_trace(make_trace([0, 64, 0], kinds))
        profile = profiles[64]
        assert profile.writebacks == 1
        assert profile.demand_accesses == 2
        # The writeback installed block 1, so the reuse of block 0 sees it.
        assert profile.read_hist.tolist() == [0, 1]

    def test_writeback_refreshes_recency(self):
        # read A, read B, writeback A, read B: B's reuse distance is 1
        # (only A between), and A's writeback moved A above B? No — B was
        # touched after A's writeback?  Sequence: A(r) B(r) A(wb) B(r).
        # Between the two B reads only A intervenes -> distance 1.
        kinds = [
            int(MissEventKind.READ_MISS),
            int(MissEventKind.READ_MISS),
            int(MissEventKind.WRITEBACK),
            int(MissEventKind.READ_MISS),
        ]
        profiles = profile_miss_trace(make_trace([0, 64, 0, 64], kinds))
        assert profiles[64].read_hist.tolist() == [0, 1]

    def test_ifetch_counts_as_demand_read(self):
        kinds = [int(MissEventKind.IFETCH_MISS)] * 3
        profile = profile_miss_trace(make_trace([0, 0, 0], kinds))[64]
        assert profile.cold_reads == 1
        assert profile.read_hist.tolist() == [2]

    def test_block_size_consistency_64_vs_128(self):
        profiles = profile_miss_trace(random_trace())
        p64, p128 = profiles[64], profiles[128]
        # Coarsening merges blocks: never more unique 128B blocks than 64B.
        assert p128.unique_blocks <= p64.unique_blocks
        # Demand accesses are a property of the trace, not the granularity.
        assert p128.demand_accesses == p64.demand_accesses
        assert p128.writebacks == p64.writebacks
        # Coarser blocks cannot have more cold misses.
        assert (p128.cold_reads + p128.cold_writes) <= (p64.cold_reads + p64.cold_writes)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            profile_miss_trace(random_trace(), block_sizes=(96,))

    def test_rejects_block_finer_than_trace(self):
        with pytest.raises(ValueError):
            profile_miss_trace(random_trace(), block_sizes=(32,))

    def test_profile_shape_validation(self):
        with pytest.raises(ValueError):
            LocalityProfile(
                block_size=64,
                read_hist=np.zeros(2, dtype=np.int64),
                write_hist=np.zeros(3, dtype=np.int64),
                cold_reads=0,
                cold_writes=0,
                writebacks=0,
                unique_blocks=0,
            )

    def test_hits_within_rejects_nonpositive(self):
        profile = profile_miss_trace(random_trace())[64]
        with pytest.raises(ValueError):
            profile.hits_within(0)


class TestFullyAssociativeExactness:
    """fa_hit_count must be bit-identical to simulating n_sets == 1."""

    @pytest.mark.parametrize("block_size", PROFILE_BLOCK_SIZES)
    @pytest.mark.parametrize("capacity_blocks", [1, 2, 4, 16, 64, 256])
    def test_matches_simulate_secondary(self, block_size, capacity_blocks):
        trace = random_trace()
        profile = profile_miss_trace(trace, block_sizes=(block_size,))[block_size]
        config = fa_config(capacity_blocks, block_size)
        result = simulate_secondary(trace, config)
        assert fa_hit_count(profile, config.capacity) == result.demand_hits
        assert profile.demand_accesses == result.demand_accesses
        assert profile.writebacks == result.writebacks_received

    def test_curve_monotone_nondecreasing(self):
        profile = profile_miss_trace(random_trace())[64]
        capacities = [64 * (1 << i) for i in range(10)]
        curve = fa_hit_curve(profile, capacities)
        rates = [curve[c] for c in capacities]
        assert rates == sorted(rates)

    def test_rejects_non_multiple_capacity(self):
        profile = profile_miss_trace(random_trace())[128]
        with pytest.raises(ValueError):
            fa_hit_count(profile, 192)
        with pytest.raises(ValueError):
            fa_hit_count(profile, 0)


class TestSetAssociativeEstimator:
    def test_exact_when_fully_associative(self):
        trace = random_trace()
        profile = profile_miss_trace(trace, block_sizes=(64,))[64]
        config = fa_config(16, 64)
        assert estimate_hit_rate(profile, config) == fa_hit_rate(profile, config.capacity)

    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_close_to_simulation(self, assoc):
        trace = random_trace(n=4000, n_blocks=160)
        profile = profile_miss_trace(trace, block_sizes=(64,))[64]
        config = CacheConfig(capacity=64 * 64, assoc=assoc, block_size=64, policy="lru")
        estimate = estimate_hit_rate(profile, config)
        simulated = simulate_secondary(trace, config).local_hit_rate
        # docs/analytic.md "Validated error bounds": uniform-random
        # traces are the estimator's worst case — direct-mapped lands
        # ~0.028 here, higher associativities within 0.001.  The
        # screen's ESTIMATOR_SLACK (0.01) is calibrated on the real
        # benchmark grid; the bench gate checks parity end to end.
        assert abs(estimate - simulated) < 0.03
        if assoc > 1:
            assert abs(estimate - simulated) < 0.005

    def test_zero_demand_is_zero(self):
        kinds = [int(MissEventKind.WRITEBACK)] * 3
        profile = profile_miss_trace(make_trace([0, 64, 128], kinds))[64]
        config = CacheConfig(capacity=4096, assoc=2, block_size=64, policy="lru")
        assert estimate_hit_rate(profile, config) == 0.0

    def test_rejects_block_size_mismatch(self):
        profile = profile_miss_trace(random_trace())[64]
        with pytest.raises(ValueError):
            estimate_hit_rate(
                profile, CacheConfig(capacity=4096, assoc=2, block_size=128, policy="lru")
            )

    def test_rejects_non_lru(self):
        profile = profile_miss_trace(random_trace())[64]
        with pytest.raises(ValueError):
            estimate_hit_rate(
                profile, CacheConfig(capacity=4096, assoc=2, block_size=64, policy="random")
            )

    def test_best_estimate_reports_winning_config(self):
        profiles = profile_miss_trace(random_trace())
        estimate, config = best_estimate_at_size(profiles, 64 * 1024)
        assert 0.0 <= estimate <= 1.0
        assert config.capacity == 64 * 1024
        assert config.block_size in PROFILE_BLOCK_SIZES
        # The reported estimate is attainable by the reported config.
        assert estimate == estimate_hit_rate(profiles[config.block_size], config)


class TestMattsonInclusion:
    def test_fa_not_upper_bound_for_set_assoc(self):
        """The known counterexample the screen's bound must survive:
        set partitioning can beat full associativity (A B C A, C=2)."""
        trace = make_trace([0, 64, 192, 0])  # A B C A; B, C share the odd set
        profile = profile_miss_trace(trace, block_sizes=(64,))[64]
        fa = fa_hit_rate(profile, 2 * 64)  # A evicted by B,C: 0 hits
        config = CacheConfig(capacity=2 * 64, assoc=1, block_size=64, policy="lru")
        direct = simulate_secondary(trace, config).local_hit_rate
        assert fa == 0.0
        assert direct > fa  # B and C fight over the other set; A survives


class TestBinomialEdges:
    """Regression guard on `_binomial_cdf` under the new combined-locality
    estimator: the degenerate corners must degrade to exact Mattson
    indicators, not drift with the group machinery."""

    def test_p_one_is_exact_mattson_indicator(self):
        # Every intervening block lands in the set: a hit iff the stack
        # distance fits in the assoc ways — Mattson's exact criterion.
        from repro.analytic.model import _binomial_cdf

        d = np.arange(12)
        for assoc in (1, 2, 4):
            cdf = _binomial_cdf(d, assoc - 1, 1.0)
            assert np.array_equal(cdf, (d <= assoc - 1).astype(float))

    def test_p_zero_is_always_hit(self):
        from repro.analytic.model import _binomial_cdf

        cdf = _binomial_cdf(np.arange(8), 0, 0.0)
        assert np.array_equal(cdf, np.ones(8))

    def test_assoc_one_is_geometric_survival(self):
        from repro.analytic.model import _binomial_cdf

        d = np.arange(10)
        cdf = _binomial_cdf(d, 0, 0.25)
        assert cdf == pytest.approx(0.75**d)

    def test_cdf_bounded_and_monotone_in_successes(self):
        from repro.analytic.model import _binomial_cdf

        d = np.arange(0, 3000, 37)
        prev = np.zeros(len(d))
        for successes in range(0, 9):
            cdf = _binomial_cdf(d, successes, 1.0 / 8)
            assert np.all(cdf >= prev - 1e-12)
            assert np.all((0.0 <= cdf) & (cdf <= 1.0))
            prev = cdf

    def test_n_sets_one_equals_fa_mattson(self):
        # The estimator's fully-associative corner is the exact FA curve.
        trace = random_trace(n=3000, n_blocks=120)
        profile = profile_miss_trace(trace, block_sizes=(64,))[64]
        for blocks in (4, 16, 64):
            config = fa_config(blocks, 64)
            assert estimate_hit_rate(profile, config) == fa_hit_rate(
                profile, config.capacity
            )

    def test_direct_mapped_single_set_cache(self):
        # capacity == one block: n_sets == 1 AND assoc == 1 — both
        # degenerate paths at once; hits require distance exactly 0.
        trace = make_trace([0, 0, 64, 64, 0])
        profile = profile_miss_trace(trace, block_sizes=(64,))[64]
        config = CacheConfig(capacity=64, assoc=1, block_size=64, policy="lru")
        assert estimate_hit_rate(profile, config) == pytest.approx(2 / 5)

    def test_uniform_fallback_without_bucket_arrays(self):
        # Profiles predating the combined-locality arrays still estimate
        # via the uniform 1/n_sets binomial instead of failing.
        from dataclasses import replace

        trace = random_trace(n=2000, n_blocks=96)
        profile = profile_miss_trace(trace, block_sizes=(64,))[64]
        legacy = replace(profile, bucket_footprint=None, bucket_demand=None)
        config = CacheConfig(capacity=64 * 32, assoc=2, block_size=64, policy="lru")
        rate = estimate_hit_rate(legacy, config)
        assert 0.0 <= rate <= 1.0
        simulated = simulate_secondary(trace, config).local_hit_rate
        assert abs(rate - simulated) < 0.05
