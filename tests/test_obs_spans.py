"""Tests for repro.obs.spans and repro.obs.events.

Covers the three contracts the tentpole depends on: the Chrome
trace-event schema (required keys, per-thread completion order), the
disabled-path no-op guarantee (shared null span, nothing recorded), and
the str-compatibility of typed StoreEvents with PR 2's name-only hooks.
"""

import json

import pytest

from repro.obs.events import StoreEvent, as_legacy_hook, record_event
from repro.obs.metrics import engine_registry
from repro.obs.spans import (
    _NULL_SPAN,
    Tracer,
    chrome_trace,
    get_tracer,
    set_tracing,
    traced,
    validate_chrome_events,
    write_chrome_trace,
)


class TestSpanRecording:
    def test_span_records_complete_event(self):
        tracer = Tracer(enabled=True)
        with tracer.span("l1.simulate", workload="sweep"):
            pass
        (event,) = tracer.events()
        assert event["name"] == "l1.simulate"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"workload": "sweep"}
        validate_chrome_events(tracer.events())

    def test_exception_tagged_and_propagated(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(KeyError):
            with tracer.span("cell"):
                raise KeyError("boom")
        (event,) = tracer.events()
        assert event["args"]["error"] == "KeyError"

    def test_nested_spans_complete_in_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("grid.run"):
            with tracer.span("cell"):
                pass
        names = [event["name"] for event in tracer.events()]
        assert names == ["cell", "grid.run"]  # inner finishes first
        validate_chrome_events(tracer.events())

    def test_drain_hands_off_ownership(self):
        tracer = Tracer(enabled=True)
        with tracer.span("cell"):
            pass
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", key=1) is _NULL_SPAN
        assert tracer.span("other") is _NULL_SPAN

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("cell"):
            pass
        assert tracer.events() == []

    def test_traced_decorator_follows_global_toggle(self):
        calls = []

        @traced("decorated.op")
        def fn(x):
            calls.append(x)
            return x * 2

        tracer = get_tracer()
        before = len(tracer)
        assert fn(2) == 4  # disabled: straight call-through
        assert len(tracer) == before
        set_tracing(True)
        try:
            assert fn(3) == 6
            assert any(e["name"] == "decorated.op" for e in tracer.events())
        finally:
            set_tracing(False)
            tracer.clear()
        assert calls == [2, 3]


class TestChromeExport:
    def test_trace_document_shape_and_metadata(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("cell"):
            pass
        path = write_chrome_trace(tmp_path / "t.json", tracer.events())
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        phases = [event["ph"] for event in doc["traceEvents"]]
        assert phases.count("M") == 1  # one process_name record for this pid
        assert phases.count("X") == 1
        meta = doc["traceEvents"][0]
        assert meta["name"] == "process_name"
        assert meta["args"]["name"] == "parent"
        validate_chrome_events(doc["traceEvents"])

    def test_process_labels_override(self):
        events = [{"name": "cell", "ph": "X", "ts": 0, "dur": 1, "pid": 7, "tid": 1}]
        doc = chrome_trace(events, process_labels={7: "replayer"})
        assert doc["traceEvents"][0]["args"]["name"] == "replayer"

    @pytest.mark.parametrize(
        "bad",
        [
            {"ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1},  # no name
            {"name": "x", "ph": "X", "ts": -1, "dur": 1, "pid": 1, "tid": 1},
            {"name": "x", "ph": "X", "ts": 0, "dur": -2, "pid": 1, "tid": 1},
        ],
    )
    def test_validator_rejects_malformed_events(self, bad):
        with pytest.raises(ValueError):
            validate_chrome_events([bad])

    def test_validator_rejects_out_of_completion_order(self):
        events = [
            {"name": "a", "ph": "X", "ts": 100, "dur": 50, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 10, "dur": 5, "pid": 1, "tid": 1},
        ]
        with pytest.raises(ValueError, match="completion order"):
            validate_chrome_events(events)

    def test_validator_allows_interleaved_threads(self):
        events = [
            {"name": "a", "ph": "X", "ts": 100, "dur": 50, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 10, "dur": 5, "pid": 2, "tid": 1},
        ]
        validate_chrome_events(events)


class TestStoreEvents:
    def test_typed_event_is_its_name(self):
        event = StoreEvent("trace_hit", digest="abc123", nbytes=512, duration_s=0.25)
        assert event == "trace_hit"
        assert hash(event) == hash("trace_hit")
        assert {"trace_hit": 1}[event] == 1  # dict dispatch, as the service does
        assert event.digest == "abc123"
        assert event.nbytes == 512

    def test_legacy_name_only_hooks_receive_plain_str(self):
        seen = []
        hook = as_legacy_hook(seen.append)
        hook(StoreEvent("result_saved", nbytes=9))
        assert seen == ["result_saved"]
        assert type(seen[0]) is str

    def test_record_event_splits_byte_direction(self):
        registry = engine_registry()

        def counter(name):
            return registry.counter(name).value

        read0 = counter("engine_store_read_bytes_total")
        written0 = counter("engine_store_written_bytes_total")
        record_event(StoreEvent("trace_hit", nbytes=100, duration_s=0.001))
        record_event(StoreEvent("result_saved", nbytes=40))
        assert counter("engine_store_read_bytes_total") == read0 + 100
        assert counter("engine_store_written_bytes_total") == written0 + 40
