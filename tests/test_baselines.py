"""Tests for repro.baselines (OBL, prefetching cache, RPT)."""

import numpy as np
import pytest

from repro.baselines.base import BaselineStats
from repro.baselines.obl import OneBlockLookahead
from repro.baselines.prefetch_cache import PrefetchingCache
from repro.baselines.rpt import ReferencePredictionTable, RptState
from repro.caches.cache import MissEventKind, MissTrace


def make_miss_trace(blocks, kinds=None, pcs=None):
    blocks = np.asarray(blocks, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(blocks.shape[0], dtype=np.uint8)
    pcs_arr = np.asarray(pcs, dtype=np.int64) if pcs is not None else None
    return MissTrace(blocks << 6, np.asarray(kinds, dtype=np.uint8), 6, pcs_arr)


class TestOneBlockLookahead:
    def test_sequential_misses_hit_after_first(self):
        obl = OneBlockLookahead()
        stats = obl.run(make_miss_trace(range(100, 120)))
        assert stats.demand_misses == 20
        assert stats.hits == 19

    def test_tagged_chains_where_untagged_alternates(self):
        """Smith's classic result: on a sequential run, untagged OBL
        only prefetches on misses so hits alternate (50%); the tagged
        variant chains prefetches on hits and approaches 100%."""
        tagged = OneBlockLookahead(tagged=True).run(make_miss_trace(range(50)))
        plain = OneBlockLookahead(tagged=False).run(make_miss_trace(range(50)))
        assert plain.hits == 25
        assert tagged.hits == 49

    def test_random_misses_rarely_hit(self):
        rng = np.random.default_rng(0)
        stats = OneBlockLookahead().run(
            make_miss_trace(rng.integers(0, 1 << 20, size=500))
        )
        assert stats.hit_rate < 0.02

    def test_buffer_capacity_respected(self):
        obl = OneBlockLookahead(entries=4)
        rng = np.random.default_rng(1)
        obl.run(make_miss_trace(rng.integers(0, 1 << 16, size=100)))
        assert len(obl.buffered_blocks()) <= 4

    def test_writeback_invalidates(self):
        obl = OneBlockLookahead()
        obl.handle_miss(100 << 6)  # prefetches 101
        obl.handle_writeback(101 << 6)
        assert not obl.handle_miss(101 << 6)
        assert obl.stats.invalidations == 1

    def test_interleaved_streams_work_unlike_head_only(self):
        # Two interleaved sequential walks: associative lookup handles
        # them with a 16-entry buffer.
        blocks = []
        for i in range(50):
            blocks.extend([100 + i, 5000 + i])
        stats = OneBlockLookahead().run(make_miss_trace(blocks))
        assert stats.hit_rate > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            OneBlockLookahead(entries=0)

    def test_block_bits_mismatch(self):
        obl = OneBlockLookahead(block_bits=7)
        with pytest.raises(ValueError):
            obl.run(make_miss_trace([1]))


class TestPrefetchingCache:
    def test_sequential_hits(self):
        cache = PrefetchingCache(blocks=16)
        stats = cache.run(make_miss_trace(range(100, 120)))
        assert stats.hits == 19

    def test_captures_short_range_reuse(self):
        # Revisit a recently missed block: streams would miss, the
        # prefetching cache retains it.
        cache = PrefetchingCache(blocks=16)
        stats = cache.run(make_miss_trace([7, 300, 7]))
        assert stats.hits >= 1

    def test_capacity_lru(self):
        cache = PrefetchingCache(blocks=4)
        cache.run(make_miss_trace([0, 100, 200, 300]))
        assert len(cache.cached_blocks()) <= 4

    def test_lookahead_zero_is_pure_reuse_cache(self):
        cache = PrefetchingCache(blocks=8, lookahead=0)
        stats = cache.run(make_miss_trace(range(100, 120)))
        assert stats.hits == 0
        assert stats.prefetches_issued == 0

    def test_demand_block_not_counted_as_prefetch(self):
        cache = PrefetchingCache(blocks=8)
        cache.handle_miss(100 << 6)
        assert cache.stats.prefetches_issued == 1  # only block 101

    def test_writeback_invalidates(self):
        cache = PrefetchingCache(blocks=8)
        cache.handle_miss(100 << 6)
        cache.handle_writeback(101 << 6)
        assert not cache.handle_miss(101 << 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchingCache(blocks=0)
        with pytest.raises(ValueError):
            PrefetchingCache(lookahead=-1)


class TestRpt:
    def test_constant_stride_reaches_steady_and_prefetches(self):
        rpt = ReferencePredictionTable()
        pc = 0x400000
        addrs = [(1 << 20) + i * 1024 for i in range(20)]
        blocks = [a >> 6 for a in addrs]
        mt = make_miss_trace(blocks, pcs=[pc] * 20)
        stats = rpt.run(mt)
        assert rpt.entry_state(pc) is RptState.STEADY
        # After the 3-reference training preamble everything hits.
        assert stats.hits >= 16

    def test_interleaved_pcs_tracked_independently(self):
        rpt = ReferencePredictionTable()
        blocks, pcs = [], []
        for i in range(20):
            blocks.append(1000 + i * 16)  # pc A: stride 16 blocks
            pcs.append(0x10)
            blocks.append(90000 + i * 7)  # pc B: stride 7 blocks
            pcs.append(0x20)
        stats = rpt.run(make_miss_trace(blocks, pcs=pcs))
        assert stats.hit_rate > 0.8

    def test_no_pc_information_collapses_to_one_entry(self):
        rpt = ReferencePredictionTable()
        blocks = []
        for i in range(20):
            blocks.append(1000 + i * 16)
            blocks.append(90000 + i * 7)
        stats = rpt.run(make_miss_trace(blocks))  # all PC 0
        # Alternating deltas never stabilise: the paper's off-chip point.
        assert stats.hit_rate < 0.1

    def test_state_machine_degrades_on_irregular(self):
        rpt = ReferencePredictionTable()
        pc = 0x99
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 1 << 24, size=50).tolist()
        for addr in addrs:
            rpt.handle_miss(int(addr), pc)
        assert rpt.entry_state(pc) in (RptState.NO_PRED, RptState.TRANSIENT, RptState.INITIAL)

    def test_table_capacity_lru(self):
        rpt = ReferencePredictionTable(table_entries=2)
        for pc in (1, 2, 3):
            rpt.handle_miss(pc * 4096, pc)
        assert rpt.entry_state(1) is RptState.NO_PRED  # evicted

    def test_steady_entry_recovers_from_one_break(self):
        rpt = ReferencePredictionTable()
        pc = 7
        for i in range(4):
            rpt.handle_miss(i * 1024, pc)
        assert rpt.entry_state(pc) is RptState.STEADY
        rpt.handle_miss(10_000_000, pc)  # break
        assert rpt.entry_state(pc) is RptState.INITIAL

    def test_validation(self):
        with pytest.raises(ValueError):
            ReferencePredictionTable(table_entries=0)


class TestBaselineStats:
    def test_hit_rate_empty(self):
        assert BaselineStats(name="x").hit_rate == 0.0

    def test_bandwidth_report(self):
        stats = BaselineStats(
            name="x", demand_misses=100, hits=40, prefetches_issued=80, prefetches_used=40
        )
        assert stats.bandwidth.eb_measured == pytest.approx(40.0)


class TestEndToEnd:
    def test_streams_beat_obl_on_interleaved_many(self):
        """With more concurrent walks than the OBL buffer can juggle,
        multi-way streams keep up; that is Jouppi's extension."""
        from repro.core.config import StreamConfig
        from repro.core.prefetcher import StreamPrefetcher

        blocks = []
        bases = [i * 100_000 for i in range(6)]
        for i in range(200):
            for base in bases:
                blocks.append(base + i)
        mt = make_miss_trace(blocks)
        streams = StreamPrefetcher(StreamConfig.jouppi(n_streams=8)).run(mt)
        obl = OneBlockLookahead(entries=4).run(make_miss_trace(blocks))
        assert streams.hit_rate > obl.hit_rate

    def test_rpt_with_pcs_on_real_workload(self):
        from repro.sim.runner import MissTraceCache

        cache = MissTraceCache(keep_pcs=True)
        mt, _ = cache.get("stride", scale=0.25)
        assert mt.pcs is not None
        stats = ReferencePredictionTable().run(mt)
        # The strided walk comes from one loop column: RPT nails it.
        assert stats.hit_rate > 0.9
