"""Miss-spectrum extraction and closed-form stream-model tests.

Three contracts from the analytic-streams layer:

- the one-pass extractor is bit-identical to the naive O(n^2)
  reference on randomized traces (the differ checks 200 seeds; here a
  tier-1-sized slice plus constructed shapes with known spectra);
- :func:`repro.analytic.streams.predict_streams` stays within its own
  declared error bound of the golden ``RefStreamPrefetcher`` on every
  seed of a corpus slice;
- spectra round-trip exactly through the persistent store, including
  the per-gap concurrency histograms.
"""

import random

import numpy as np
import pytest

from repro.analytic import streams
from repro.analytic.streams import (
    BOUND_BASE,
    _czone_training_cost,
    _gaps_at_least,
    ensure_spectrum,
    in_envelope,
    predict_streams,
    stream_envelope_config,
)
from repro.caches.cache import MissTrace
from repro.check import differ, oracle
from repro.core.config import StreamConfig
from repro.trace.spectrum import (
    GAP_PRESSURE_BINS,
    RUN_KIND_UNIT,
    extract_spectrum,
    naive_spectrum,
)
from repro.trace.store import TraceStore

BLOCK = 64


def miss_trace(addrs, kinds=None, block_bits=6):
    if kinds is None:
        kinds = [oracle.EV_READ_MISS] * len(addrs)
    return MissTrace(
        addrs=np.asarray(addrs, dtype=np.int64),
        kinds=np.asarray(kinds, dtype=np.uint8),
        block_bits=block_bits,
    )


def ascending_run(start, length, stride=BLOCK):
    return [start + i * stride for i in range(length)]


class TestSpectrumExtraction:
    @pytest.mark.parametrize("seed", range(20))
    def test_fast_matches_naive(self, seed):
        rng = random.Random(seed)
        trace = differ.random_miss_trace(rng, 500)
        assert extract_spectrum(trace) == naive_spectrum(trace)

    def test_deterministic(self):
        trace = differ.random_miss_trace(random.Random(7), 600)
        assert extract_spectrum(trace) == extract_spectrum(trace)

    def test_empty_trace(self):
        spectrum = extract_spectrum(miss_trace([]))
        assert spectrum.n_events == 0
        assert spectrum.demand_misses == 0
        assert len(spectrum.run_length) == 0

    def test_single_ascending_run(self):
        spectrum = extract_spectrum(miss_trace(ascending_run(0x10000, 10)))
        assert spectrum.demand_misses == 10
        assert spectrum.run_length.tolist() == [10]
        assert spectrum.run_kind.tolist() == [RUN_KIND_UNIT]
        assert spectrum.run_stride_bytes.tolist() == [BLOCK]
        # nothing interleaves, so no gap sees any slot-claim pressure
        assert spectrum.run_conc_ge[0].sum() == 0
        assert spectrum.run_gaps_ge[0].sum() == 0

    def test_interleaved_runs_pressure_one(self):
        # A0 B0 A1 B1 ...: every tracked gap of each run contains exactly
        # one element of exactly one other run.
        a = ascending_run(0x20000, 8)
        b = ascending_run(0x90000, 8)
        trace = miss_trace([x for pair in zip(a, b) for x in pair])
        spectrum = extract_spectrum(trace)
        assert spectrum.run_length.tolist() == [8, 8]
        gap_count = 8 - 2  # unit runs track gaps between elements 1..L-1
        for row in spectrum.run_conc_ge:
            assert row[0] == gap_count  # pressure >= 1 in every gap
            assert row[1] == 0  # never two concurrent runs
        assert spectrum == naive_spectrum(trace)

    def test_lone_misses_raise_unfiltered_pressure_only(self):
        # Random singles inside a run's gaps claim slots in unfiltered
        # mode (gaps_ge) but are invisible to the filter path (conc_ge).
        run = ascending_run(0x40000, 6)
        events = []
        for i, addr in enumerate(run):
            events.append(addr)
            if 0 < i < 5:
                # each in its own 2MB spectrum zone, non-constant deltas,
                # so the singles can never pair into a detected run
                events.append((i + 8) * (3 << 22) + i * 0x777)
        trace = miss_trace(events)
        spectrum = extract_spectrum(trace)
        (idx,) = np.where(spectrum.run_length == 6)[0]
        assert spectrum.run_gaps_ge[idx][0] == 4
        assert spectrum.run_conc_ge[idx][0] == 0
        assert spectrum == naive_spectrum(trace)


class TestSpectrumStore:
    def test_round_trip_exact(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = differ.random_miss_trace(random.Random(11), 800)
        spectrum = extract_spectrum(trace)
        store.save_spectrum("deadbeef", spectrum)
        loaded = store.load_spectrum("deadbeef")
        assert loaded == spectrum
        assert np.array_equal(loaded.run_conc_ge, spectrum.run_conc_ge)

    def test_missing_is_none(self, tmp_path):
        assert TraceStore(tmp_path).load_spectrum("nope") is None

    def test_stale_version_is_none(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        spectrum = extract_spectrum(differ.random_miss_trace(random.Random(2), 300))
        store.save_spectrum("abc", spectrum)
        import repro.trace.store as store_mod

        monkeypatch.setattr(
            "repro.trace.store.SPECTRUM_FORMAT_VERSION",
            store_mod.SPECTRUM_FORMAT_VERSION + 1,
        )
        assert store.load_spectrum("abc") is None

    def test_ensure_spectrum_uses_store(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        trace = differ.random_miss_trace(random.Random(3), 400)
        first = ensure_spectrum(trace, store=store, digest="d1")
        assert store.load_spectrum("d1") == first

        def boom(_):
            raise AssertionError("should have loaded from the store")

        monkeypatch.setattr(streams, "extract_spectrum", boom)
        assert ensure_spectrum(trace, store=store, digest="d1") == first
        # no store/digest: extraction is the only path
        with pytest.raises(AssertionError):
            ensure_spectrum(trace)


class TestEnvelope:
    def test_coercion_lands_in_envelope(self):
        rng = random.Random(5)
        for _ in range(40):
            config = differ.random_stream_config(rng)
            assert in_envelope(stream_envelope_config(config))

    def test_coercion_idempotent(self):
        config = stream_envelope_config(StreamConfig(partitioned=True, min_lead=2))
        assert stream_envelope_config(config) == config

    def test_predict_rejects_out_of_envelope(self):
        spectrum = extract_spectrum(miss_trace(ascending_run(0, 5)))
        with pytest.raises(ValueError):
            predict_streams(spectrum, StreamConfig(partitioned=True))

    def test_predict_rejects_block_bits_mismatch(self):
        spectrum = extract_spectrum(miss_trace(ascending_run(0, 5), block_bits=6))
        with pytest.raises(ValueError):
            predict_streams(spectrum, StreamConfig.jouppi().with_(block_bits=7))


class TestModelInternals:
    def test_czone_training_cost_detects_on_third(self):
        assert _czone_training_cost(0, BLOCK, 10, 16) == 3

    def test_czone_training_cost_wide_stride_never_trains(self):
        assert _czone_training_cost(0, 1 << 15, 10, 16) is None

    def test_czone_training_cost_short_run(self):
        assert _czone_training_cost(0, BLOCK, 2, 16) is None

    def test_gaps_at_least_edges(self):
        hist = [5, 2, 0] + [0] * (GAP_PRESSURE_BINS - 3)
        assert _gaps_at_least(hist, 0, 7) == 7  # zero pressure: every gap
        assert _gaps_at_least(hist, 1, 7) == 5
        assert _gaps_at_least(hist, GAP_PRESSURE_BINS + 1, 7) == 0


class TestStreamModel:
    def test_empty_trace_prediction(self):
        prediction = predict_streams(
            extract_spectrum(miss_trace([])), StreamConfig.jouppi()
        )
        assert prediction.hit_rate == 0.0
        assert prediction.bound == BOUND_BASE

    def test_single_run_unfiltered_exact(self):
        # One allocation miss, then the tail streams: hits = L - 1, and
        # with no interference the bound stays at the base term.
        addrs = ascending_run(0x10000, 10)
        config = StreamConfig.jouppi(n_streams=4)
        prediction = predict_streams(extract_spectrum(miss_trace(addrs)), config)
        ref = oracle.RefStreamPrefetcher(config).run(addrs, [oracle.EV_READ_MISS] * 10)
        assert prediction.predicted_hits == ref["stream_hits"] == 9
        assert prediction.bound == BOUND_BASE

    def test_single_run_filtered_matches_oracle(self):
        addrs = ascending_run(0x10000, 12)
        config = StreamConfig.filtered(n_streams=4)
        prediction = predict_streams(extract_spectrum(miss_trace(addrs)), config)
        ref = oracle.RefStreamPrefetcher(config).run(addrs, [oracle.EV_READ_MISS] * 12)
        assert prediction.predicted_hits == ref["stream_hits"]

    @pytest.mark.parametrize("seed", range(30))
    def test_within_declared_bound(self, seed):
        # Same contract the analytic-streams differ stage enforces over
        # 200 seeds; a tier-1-sized slice keeps the gate fast.
        rng = random.Random(seed * 3266489917 % (1 << 31))
        config = stream_envelope_config(differ.random_stream_config(rng))
        trace = differ.random_miss_trace(rng, 1200, block_bits=config.block_bits)
        spectrum = extract_spectrum(trace)
        prediction = predict_streams(spectrum, config)
        ref = oracle.RefStreamPrefetcher(config).run(
            trace.addrs.tolist(), trace.kinds.tolist()
        )
        demand = ref["demand_misses"]
        truth = ref["stream_hits"] / demand if demand else 0.0
        assert spectrum.demand_misses == demand
        assert abs(prediction.hit_rate - truth) <= prediction.bound
        assert 0.0 <= prediction.hit_rate <= 1.0
        assert prediction.bound <= 1.0
