"""Tests for repro.core.nonunit (czone partition filter, Section 7)."""

import pytest

from repro.core.nonunit import CzoneFilter, StrideHit


def make_filter(entries=4, czone_bits=16, block_bits=6, allow_negative=True):
    return CzoneFilter(
        entries=entries,
        czone_bits=czone_bits,
        block_bits=block_bits,
        allow_negative=allow_negative,
    )


class TestDetection:
    def test_three_strided_refs_allocate(self):
        filt = make_filter()
        base = 1 << 20
        assert filt.observe(base) is None
        assert filt.observe(base + 1024) is None
        hit = filt.observe(base + 2048)
        assert isinstance(hit, StrideHit)
        assert hit.stride_bytes == 1024
        assert hit.stride_blocks == 16

    def test_allocation_starts_one_stride_ahead(self):
        filt = make_filter()
        base = 1 << 20
        filt.observe(base)
        filt.observe(base + 1024)
        hit = filt.observe(base + 2048)
        assert hit.start_block == ((base + 2048) >> 6) + 16

    def test_entry_freed_after_detection(self):
        filt = make_filter()
        base = 1 << 20
        filt.observe(base)
        filt.observe(base + 1024)
        filt.observe(base + 2048)
        assert (base >> 16) not in filt.active_partitions()

    def test_references_in_different_partitions_are_independent(self):
        filt = make_filter(czone_bits=16)
        a = 1 << 20
        b = 1 << 24
        filt.observe(a)
        filt.observe(b)
        filt.observe(a + 512)
        filt.observe(b + 4096)
        assert filt.observe(a + 1024).stride_bytes == 512
        assert filt.observe(b + 8192).stride_bytes == 4096

    def test_interleaved_walks_in_one_partition_defeat_detection(self):
        """The Figure 9 too-large-czone failure mode."""
        filt = make_filter(czone_bits=30)
        a, b = 1 << 20, (1 << 20) + (1 << 18)
        stride = 1024
        for k in range(6):
            assert filt.observe(a + k * stride) is None or k > 2
            result = filt.observe(b + k * stride)
            # Alternating deltas never repeat, so nothing verifies.
            assert result is None

    def test_negative_stride(self):
        filt = make_filter()
        base = (1 << 20) + 8192
        filt.observe(base)
        filt.observe(base - 1024)
        hit = filt.observe(base - 2048)
        assert hit.stride_blocks == -16

    def test_negative_stride_rejected_when_disabled(self):
        filt = make_filter(allow_negative=False)
        base = (1 << 20) + 8192
        filt.observe(base)
        filt.observe(base - 1024)
        assert filt.observe(base - 2048) is None
        assert filt.negative_rejections == 1

    def test_sub_block_stride_rejected(self):
        filt = make_filter()
        base = 1 << 20
        filt.observe(base)
        filt.observe(base + 16)
        assert filt.observe(base + 32) is None
        assert filt.sub_block_rejections == 1


class TestCapacityAndCzone:
    def test_partition_table_evicts_oldest(self):
        filt = make_filter(entries=2, czone_bits=16)
        filt.observe(1 << 20)  # partition A
        filt.observe(2 << 20)  # partition B
        filt.observe(3 << 20)  # partition C evicts A
        partitions = filt.active_partitions()
        assert (1 << 20) >> 16 not in partitions
        assert len(partitions) == 2

    def test_czone_too_small_splits_strided_run(self):
        # Stride 1KB with a 10-bit czone: every reference lands in its
        # own partition, so nothing ever verifies.
        filt = make_filter(entries=16, czone_bits=10)
        base = 1 << 20
        for k in range(8):
            assert filt.observe(base + k * 1024) is None

    def test_czone_bits_must_cover_block(self):
        with pytest.raises(ValueError):
            make_filter(czone_bits=4, block_bits=6)

    def test_entries_positive(self):
        with pytest.raises(ValueError):
            make_filter(entries=0)

    def test_counters(self):
        filt = make_filter()
        base = 1 << 20
        filt.observe(base)
        filt.observe(base + 1024)
        filt.observe(base + 2048)
        assert filt.observations == 3
        assert filt.hits == 1
