"""Tests for repro.analysis.stack (Mattson stack distances)."""

import numpy as np
import pytest

from repro.analysis.stack import profile_block_stream, stack_distances
from repro.caches.cache import Cache, CacheConfig, MissTrace
from repro.trace.events import Trace


class TestStackDistances:
    def test_cold_accesses_are_infinite(self):
        profile = stack_distances([1, 2, 3])
        assert profile.cold_accesses == 3
        assert profile.length == 3

    def test_immediate_reuse_distance_zero(self):
        profile = stack_distances([7, 7])
        assert profile.histogram[0] == 1

    def test_intervening_blocks_counted_once(self):
        # a b b a: between the two a's, only one distinct block (b).
        profile = stack_distances([1, 2, 2, 1])
        assert profile.histogram[1] == 1  # the second a
        assert profile.histogram[0] == 1  # the second b

    def test_cyclic_sweep_distance(self):
        # Sweeping k distinct blocks repeatedly: every reuse has
        # distance k-1.
        k = 8
        profile = stack_distances(list(range(k)) * 3)
        assert profile.histogram[k - 1] == 2 * k
        assert profile.cold_accesses == k

    def test_empty(self):
        profile = stack_distances([])
        assert profile.length == 0
        assert profile.miss_curve([4]) == {4: 0.0}


class TestMissCurve:
    def test_lru_inclusion_monotone(self):
        rng = np.random.default_rng(0)
        profile = stack_distances(rng.integers(0, 64, size=2000).tolist())
        sizes = [1, 2, 4, 8, 16, 32, 64, 128]
        curve = profile.miss_curve(sizes)
        values = [curve[s] for s in sizes]
        assert values == sorted(values, reverse=True)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            stack_distances([1]).misses_at(0)

    def test_reuse_fraction(self):
        profile = stack_distances(list(range(8)) * 2)
        assert profile.reuse_fraction_within(8) == pytest.approx(0.5)
        assert profile.reuse_fraction_within(4) == pytest.approx(0.0)

    def test_matches_fully_associative_lru_simulation_exactly(self):
        """Mattson's theorem, checked against the simulator."""
        rng = np.random.default_rng(3)
        # A blend of sweeps and random reuse over 128 blocks.
        blocks = np.concatenate(
            [
                np.arange(128),
                rng.integers(0, 128, size=1500),
                np.arange(64),
            ]
        ).tolist()
        profile = stack_distances(blocks)
        for capacity_blocks in (4, 16, 64, 256):
            cache = Cache(
                CacheConfig(
                    capacity=capacity_blocks * 64,
                    assoc=capacity_blocks,  # fully associative
                    block_size=64,
                    policy="lru",
                )
            )
            trace = Trace.uniform(np.asarray(blocks, dtype=np.int64) * 64)
            cache.simulate(trace)
            assert cache.stats.misses == profile.misses_at(capacity_blocks), capacity_blocks


class TestProfileBlockStream:
    def test_profiles_demand_misses_only(self):
        mt = MissTrace(
            np.array([0, 64, 0], dtype=np.int64),
            np.array([0, 2, 0], dtype=np.uint8),  # middle one is a write-back
            6,
        )
        profile = profile_block_stream(mt)
        assert profile.length == 2
        assert profile.histogram[0] == 1  # block 0 reused immediately

    def test_writebacks_update_recency_but_are_not_counted(self):
        mt = MissTrace(
            np.array([0, 64, 0], dtype=np.int64),
            np.array([0, 2, 0], dtype=np.uint8),
            6,
        )
        profile = profile_block_stream(mt, demand_only=False)
        # Two demand accesses counted; the write-back to block 1 still
        # sat between the two touches of block 0, giving distance 1.
        assert profile.length == 2
        assert profile.histogram[1] == 1

    def test_writeback_installs_enable_hits(self):
        # demand 5, wb 9, demand 9: with installs modelled, the second
        # demand is a short-distance reuse; demand-only calls it cold.
        mt = MissTrace(
            np.array([5 * 64, 9 * 64, 9 * 64], dtype=np.int64),
            np.array([0, 2, 0], dtype=np.uint8),
            6,
        )
        with_installs = profile_block_stream(mt, demand_only=False)
        demand_only = profile_block_stream(mt, demand_only=True)
        assert with_installs.histogram.get(0) == 1  # immediate reuse of the install
        assert demand_only.cold_accesses == 2

    def test_count_mask_validation(self):
        with pytest.raises(ValueError):
            stack_distances([1, 2], count=[True])

    def test_real_workload_l2_story(self):
        """The miss stream of a one-pass sweep has no reuse any L2 can
        catch; a benchmark with revisits does."""
        from repro.sim.runner import MissTraceCache

        cache = MissTraceCache()
        sweep_mt, _ = cache.get("sweep", scale=0.25)
        sweep_profile = profile_block_stream(sweep_mt)
        assert sweep_profile.reuse_fraction_within(1 << 14) < 0.01

        mdg_mt, _ = cache.get("mdg")
        mdg_profile = profile_block_stream(mdg_mt)
        # mdg revisits its arrays every step: a large L2 catches reuse.
        assert mdg_profile.reuse_fraction_within(1 << 14) > 0.3
