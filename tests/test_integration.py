"""End-to-end integration tests: workload -> L1 -> streams shapes.

These assert the paper's *qualitative* results on cheap configurations —
the full exhibits run in the benchmark harness.
"""

import pytest

from repro.core.config import StreamConfig
from repro.sim.compare import min_matching_l2_size
from repro.sim.runner import MissTraceCache, run_result, run_streams
from repro.sim.sweep import sweep_czone_bits, sweep_n_streams


@pytest.fixture(scope="module")
def cache():
    return MissTraceCache()


class TestMicrobenchShapes:
    def test_unit_sweep_is_near_perfect(self, cache):
        stats = run_streams("sweep", StreamConfig.jouppi(n_streams=2), scale=0.25, cache=cache)
        assert stats.hit_rate > 0.99

    def test_random_is_near_zero(self, cache):
        stats = run_streams("random", StreamConfig.jouppi(n_streams=10), cache=cache)
        assert stats.hit_rate < 0.02

    def test_strided_needs_detection(self, cache):
        unit = run_streams("stride", StreamConfig.filtered(), scale=0.25, cache=cache)
        detected = run_streams(
            "stride", StreamConfig.non_unit(czone_bits=14), scale=0.25, cache=cache
        )
        assert unit.hit_rate < 0.02
        assert detected.hit_rate > 0.95

    def test_filter_eliminates_random_waste(self, cache):
        plain = run_streams("random", StreamConfig.jouppi(), cache=cache)
        filtered = run_streams("random", StreamConfig.filtered(), cache=cache)
        assert plain.bandwidth.eb_measured > 100  # ~2 wasted per miss
        assert filtered.bandwidth.eb_measured < 5


class TestPaperBandSpotChecks:
    """One cheap NAS and one cheap PERFECT benchmark against Figure 3."""

    def test_buk_band(self, cache):
        result = run_result("buk", StreamConfig.jouppi(n_streams=10), cache=cache)
        assert 55 <= result.hit_rate_percent <= 80  # paper ~65

    def test_trfd_band(self, cache):
        result = run_result("trfd", StreamConfig.jouppi(n_streams=10), cache=cache)
        assert 40 <= result.hit_rate_percent <= 60  # paper ~50

    def test_trfd_gains_from_stride_detection(self, cache):
        unit = run_streams("trfd", StreamConfig.filtered(), cache=cache)
        stride = run_streams("trfd", StreamConfig.non_unit(czone_bits=19), cache=cache)
        assert stride.hit_rate_percent - unit.hit_rate_percent > 8

    def test_trfd_filter_slashes_eb(self, cache):
        plain = run_streams("trfd", StreamConfig.jouppi(), cache=cache)
        filtered = run_streams("trfd", StreamConfig.filtered(), cache=cache)
        assert plain.bandwidth.eb_measured > 60
        assert filtered.bandwidth.eb_measured < 15
        # ... at almost no hit-rate cost (paper Section 6.1).
        assert plain.hit_rate_percent - filtered.hit_rate_percent < 5


class TestSaturationShape:
    def test_hit_rate_plateaus_with_streams(self, cache):
        results = sweep_n_streams("buk", n_values := (1, 2, 4, 8, 10), cache=cache)
        rates = [results[n].hit_rate_percent for n in n_values]
        assert rates[-1] >= rates[0]
        # Plateau: adding streams 8 -> 10 changes little.
        assert abs(rates[-1] - rates[-2]) < 3


class TestCzoneBandShape:
    def test_stride_micro_has_a_band(self, cache):
        sweep = sweep_czone_bits(
            "stride", czone_bits_values=(8, 16, 24), scale=0.25, cache=cache
        )
        # Too small fails; moderate and large succeed for a single walk.
        assert sweep[8].hit_rate_percent < 5
        assert sweep[16].hit_rate_percent > 90


class TestScalingDirection:
    def test_buk_l2_requirement_grows_with_scale(self, cache):
        small = min_matching_l2_size("buk", scale=0.25, cache=cache)
        large = min_matching_l2_size("buk", scale=1.0, cache=cache)

        def rank(size):
            return size if size is not None else 1 << 40

        assert rank(large.matched_size) >= rank(small.matched_size)


class TestWritebackTraffic:
    def test_write_heavy_workload_invalidates_stream_entries(self, cache):
        result = run_result("buk", StreamConfig.jouppi(n_streams=10), cache=cache)
        assert result.streams.writebacks > 0
        # Write-backs must never be counted as demand misses.
        assert result.streams.demand_misses == result.l1.misses
