"""Distributed-tracing and structured-logging tests.

Covers the observability plumbing end to end:

* ``repro.obs.context`` — contextvars trace identity: minting, scoping,
  restoration, and the no-op ``bind_trace(None)`` contract;
* ``repro.obs.log`` — leveled structured records into the bounded ring,
  automatic ``trace_id`` tagging, level filtering;
* ``repro.obs.spans`` — flow-event derivation from trace-tagged spans
  and the extended ``"s"``/``"f"`` schema validation;
* the service path — one ``/v1/sweep`` request against a frontend +
  pool-backed worker yields spans on >=2 pids sharing the request's
  ``trace_id``, connected by schema-valid flow events, with the same id
  stamped on every returned result (``RunResult.trace_id`` provenance);
  and coalesced duplicate requests record ``coalesce.join`` spans on
  the owner's trace naming the follower's.
"""

import asyncio

import pytest

from repro.obs import log as obs_log
from repro.obs.context import (
    bind_trace,
    current_span_id,
    current_trace_id,
    new_span_id,
    new_trace_id,
    trace_scope,
)
from repro.obs.spans import (
    chrome_trace,
    flow_events,
    get_tracer,
    set_tracing,
    validate_chrome_events,
)
from repro.service.client import arequest
from repro.service.server import ServiceConfig, ServiceServer, SimulationService


class TestTraceContext:
    def test_ids_are_hex_and_unique(self):
        first, second = new_trace_id(), new_trace_id()
        assert first != second
        assert len(first) == 16 and int(first, 16) >= 0
        assert len(new_span_id()) == 8 and int(new_span_id(), 16) >= 0

    def test_trace_scope_binds_and_restores(self):
        assert current_trace_id() is None
        with trace_scope() as trace_id:
            assert current_trace_id() == trace_id
            assert current_span_id() is not None
            with trace_scope("feedbeef00000000") as inner:
                assert inner == "feedbeef00000000"
                assert current_trace_id() == inner
            assert current_trace_id() == trace_id
        assert current_trace_id() is None

    def test_bind_trace_none_keeps_ambient(self):
        with trace_scope() as trace_id:
            with bind_trace(None):
                assert current_trace_id() == trace_id
            with bind_trace("aa" * 8):
                assert current_trace_id() == "aa" * 8
            assert current_trace_id() == trace_id


class TestStructuredLog:
    @pytest.fixture(autouse=True)
    def _fresh_ring(self):
        previous_level = obs_log.get_level()
        obs_log.configure(ring_size=16)
        yield
        obs_log.set_level(previous_level)
        obs_log.configure(ring_size=obs_log.DEFAULT_RING_SIZE)

    def test_levels_filter_and_fields_land_in_ring(self):
        logger = obs_log.get_logger("test")
        obs_log.set_level("WARNING")
        logger.info("dropped")
        logger.warning("kept", detail=7)
        records = obs_log.log_ring().tail(10)
        assert [r["event"] for r in records] == ["kept"]
        assert records[0]["level"] == "WARNING"
        assert records[0]["logger"] == "test"
        assert records[0]["detail"] == 7
        assert not logger.is_enabled(obs_log.INFO)
        assert logger.is_enabled(obs_log.ERROR)

    def test_records_carry_bound_trace(self):
        logger = obs_log.get_logger("test")
        obs_log.set_level("INFO")
        logger.info("untraced")
        with trace_scope() as trace_id:
            logger.info("traced")
        untraced, traced_record = obs_log.log_ring().tail(2)
        assert "trace_id" not in untraced
        assert traced_record["trace_id"] == trace_id

    def test_ring_is_bounded_and_oldest_first(self):
        logger = obs_log.get_logger("test")
        obs_log.set_level("INFO")
        for i in range(20):
            logger.info("tick", i=i)
        ring = obs_log.log_ring()
        assert len(ring) == 16
        tail = ring.tail(3)
        assert [r["i"] for r in tail] == [17, 18, 19]

    def test_parse_level_rejects_unknown(self):
        assert obs_log.parse_level("debug") == obs_log.DEBUG
        assert obs_log.parse_level(35) == 35
        with pytest.raises(ValueError, match="unknown log level"):
            obs_log.parse_level("chatty")


class TestFlowEvents:
    def _spans(self):
        return [
            {"name": "request.admit", "ph": "X", "ts": 100, "dur": 50,
             "pid": 1, "tid": 1, "args": {"trace_id": "t1"}},
            {"name": "cell", "ph": "X", "ts": 120, "dur": 10,
             "pid": 2, "tid": 1, "args": {"trace_id": "t1"}},
            {"name": "cell", "ph": "X", "ts": 130, "dur": 10,
             "pid": 3, "tid": 1, "args": {"trace_id": "t1"}},
            {"name": "untraced", "ph": "X", "ts": 200, "dur": 5,
             "pid": 1, "tid": 1},
        ]

    def test_one_arrow_pair_per_remote_thread(self):
        flows = flow_events(self._spans())
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == 2 and len(finishes) == 2
        for event in flows:
            assert event["cat"] == "trace"
            assert str(event["id"]).startswith("t1:")
            assert event["args"]["trace_id"] == "t1"
        # Arrows start at the root (earliest span) and never point backwards.
        for start in starts:
            assert (start["pid"], start["ts"]) == (1, 100)
        for finish in finishes:
            assert finish["bp"] == "e"
            assert finish["ts"] >= 100
        validate_chrome_events(self._spans() + flows)

    def test_single_thread_or_untraced_spans_emit_nothing(self):
        assert flow_events([self._spans()[0]]) == []
        assert flow_events([self._spans()[3]]) == []

    def test_chrome_trace_appends_flows(self):
        document = chrome_trace(self._spans())
        phases = {e["ph"] for e in document["traceEvents"]}
        assert {"M", "X", "s", "f"} <= phases
        validate_chrome_events(document["traceEvents"])

    def test_validator_rejects_unpaired_and_duplicate_flows(self):
        orphan = {"name": "trace", "cat": "trace", "ph": "s", "id": "t1:9",
                  "ts": 0, "pid": 1, "tid": 1}
        with pytest.raises(ValueError):
            validate_chrome_events(self._spans() + [orphan])
        flows = flow_events(self._spans())
        with pytest.raises(ValueError):
            validate_chrome_events(self._spans() + flows + [flows[0]])


class TestServiceTracePropagation:
    @pytest.fixture(autouse=True)
    def _traced(self):
        tracer = set_tracing(True)
        tracer.clear()
        yield
        set_tracing(False)
        get_tracer().clear()

    PAYLOAD = {
        "workloads": ["sweep", "stride"],
        "n_streams": [1, 2],
        "scale": 0.25,
        "timeout_s": 120,
    }

    def test_fleet_sweep_spans_share_one_trace_across_pids(self):
        async def scenario():
            # jobs=2 gives the worker a real spawn pool, so cell spans
            # carry pool-process pids distinct from this test process.
            worker = ServiceServer(
                SimulationService(ServiceConfig(jobs=2, worker=True))
            )
            await worker.start()
            frontend = ServiceServer(
                SimulationService(
                    ServiceConfig(
                        jobs=1,
                        max_queue=256,
                        workers=(f"http://{worker.host}:{worker.port}",),
                        fleet_heartbeat_s=0,
                    )
                )
            )
            await frontend.start()
            try:
                return await arequest(
                    frontend.host, frontend.port, "POST", "/v1/sweep",
                    self.PAYLOAD, timeout=180,
                )
            finally:
                await frontend.close()
                await worker.close()

        status, body = asyncio.run(scenario())
        assert status == 200 and body["ok"] and not body["errors"]
        trace_id = body["meta"]["trace_id"]
        assert trace_id
        # Satellite contract: every returned result carries the request's
        # trace id (RunResult.trace_id provenance over the chunk wire).
        assert all(cell["trace_id"] == trace_id for cell in body["results"])

        events = get_tracer().events()
        spans = [
            e for e in events
            if e.get("ph") == "X"
            and (e.get("args") or {}).get("trace_id") == trace_id
        ]
        names = {e["name"] for e in spans}
        assert "request.admit" in names and "cell" in names
        cell_spans = [e for e in spans if e["name"] == "cell"]
        assert len(cell_spans) == 4
        assert len({e["pid"] for e in spans}) >= 2

        document = chrome_trace(events)
        validate_chrome_events(document["traceEvents"])
        arrows = [
            e for e in document["traceEvents"]
            if e.get("ph") in ("s", "f") and str(e.get("id", "")).startswith(trace_id)
        ]
        assert arrows, "multi-pid trace must carry flow events"

    def test_coalesced_duplicates_record_join_on_owner_trace(self):
        async def scenario():
            server = ServiceServer(
                SimulationService(ServiceConfig(jobs=1, max_queue=256))
            )
            await server.start()
            try:
                responses = await asyncio.gather(
                    *(
                        arequest(
                            server.host, server.port, "POST", "/v1/sweep",
                            self.PAYLOAD, timeout=180,
                        )
                        for _ in range(2)
                    )
                )
                return responses, server.service.debug()
            finally:
                await server.close()

        responses, snap = asyncio.run(scenario())
        assert all(status == 200 for status, _ in responses)
        trace_ids = {body["meta"]["trace_id"] for _, body in responses}
        assert len(trace_ids) == 2

        joins = [
            e for e in get_tracer().events() if e.get("name") == "coalesce.join"
        ]
        assert joins, "duplicate concurrent sweeps must record join spans"
        for event in joins:
            owner = event["args"]["trace_id"]
            follower = event["args"]["follower_trace"]
            assert owner in trace_ids and follower in trace_ids
            assert owner != follower

        # The debug snapshot answers live-introspection questions.
        assert snap["queue"]["limit"] == 256
        assert snap["latency_ms"]["count"] >= 2
        assert snap["counters"]["requests"] >= 2
        assert snap["coalescer"]["hits"] >= 1
        assert "sweep" in snap["endpoints"]
        assert isinstance(snap["log"], list) and snap["log"]
