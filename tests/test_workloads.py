"""Tests for the workload models and registry."""

import numpy as np
import pytest

from repro.trace.stats import profile_trace
from repro.workloads import (
    NON_UNIT_STRIDE_BENCHMARKS,
    PAPER_BENCHMARKS,
    TABLE4_SCALES,
    all_benchmarks,
    get_workload,
    workload_class,
    workload_names,
)
from repro.workloads.base import BenchmarkInfo, Workload, register


class TestRegistry:
    def test_all_fifteen_paper_benchmarks_registered(self):
        names = set(workload_names())
        assert set(PAPER_BENCHMARKS) <= names
        assert len(PAPER_BENCHMARKS) == 15

    def test_suite_filter(self):
        assert len(workload_names(suite="NAS")) == 8
        assert len(workload_names(suite="PERFECT")) == 7
        assert len(workload_names(suite="micro")) >= 4

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(KeyError, match="known:"):
            workload_class("nonesuch")

    def test_register_requires_info(self):
        with pytest.raises(ValueError):

            @register
            class Bad(Workload):
                def build(self):
                    raise NotImplementedError

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):

            @register
            class Duplicate(Workload):
                info = BenchmarkInfo(name="embar", suite="NAS", description="dup")

                def build(self):
                    raise NotImplementedError

    def test_all_benchmarks_ordering(self):
        infos = all_benchmarks()
        suites = [i.suite for i in infos]
        assert suites.index("PERFECT") > suites.index("NAS")

    def test_table4_benchmarks_exist(self):
        assert set(TABLE4_SCALES) <= set(PAPER_BENCHMARKS)

    def test_non_unit_benchmarks_exist(self):
        assert set(NON_UNIT_STRIDE_BENCHMARKS) <= set(PAPER_BENCHMARKS)


class TestWorkloadBehaviour:
    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            get_workload("sweep", scale=0)

    def test_trace_cached_per_instance(self):
        workload = get_workload("sweep")
        assert workload.trace() is workload.trace()

    def test_determinism_given_seed(self):
        a = get_workload("buk", seed=3).trace()
        b = get_workload("buk", seed=3).trace()
        assert a == b

    def test_seed_changes_random_content(self):
        a = get_workload("random", seed=1).trace()
        b = get_workload("random", seed=2).trace()
        assert a != b

    def test_dim_helper(self):
        workload = get_workload("sweep", scale=2.0)
        assert workload.dim(10) == 20
        assert workload.dim(1, minimum=5) == 5

    def test_repr(self):
        assert "sweep" in repr(get_workload("sweep"))


@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
class TestPaperModels:
    """Every benchmark model must build a structurally sane trace.

    Uses a reduced scale to keep the suite fast; structural properties
    are scale-invariant.
    """

    SCALE = 0.5

    def test_builds_nonempty_trace(self, name):
        workload = get_workload(name, scale=self.SCALE)
        trace = workload.trace()
        assert len(trace) > 10_000

    def test_footprint_exceeds_primary_cache(self, name):
        workload = get_workload(name, scale=self.SCALE)
        workload.trace()
        assert workload.data_set_bytes > 64 * 1024

    def test_addresses_inside_allocations(self, name):
        workload = get_workload(name, scale=self.SCALE)
        trace = workload.trace()
        addrs = trace.data_only().addrs
        low = min(a.base for a in workload.arena.allocations)
        high = max(a.end for a in workload.arena.allocations)
        assert int(addrs.min()) >= low
        assert int(addrs.max()) < high


class TestStructuralSignatures:
    """Spot-check the access-pattern structure each model claims."""

    def test_embar_is_almost_all_unit_stride(self):
        # Per loop iteration embar touches two consecutive table words
        # plus a cache-resident tally, so at least a third of consecutive
        # pairs are unit stride and the table walk itself is contiguous.
        profile = profile_trace(get_workload("embar", scale=0.5).trace())
        assert profile.unit_stride_fraction > 0.3

    def test_fftpde_has_dominant_large_strides(self):
        from repro.trace.stats import stride_histogram

        trace = get_workload("fftpde", scale=0.5).trace()
        hist = stride_histogram(trace, top=6)
        assert any(abs(delta) >= 512 for delta in hist)

    def test_adm_is_mostly_irregular(self):
        profile = profile_trace(get_workload("adm").trace())
        assert profile.mean_block_run < 6

    def test_appbt_runs_are_short(self):
        profile = profile_trace(get_workload("appbt", scale=0.5).trace())
        assert profile.mean_block_run < 30

    def test_writes_present_in_every_model(self):
        for name in PAPER_BENCHMARKS:
            trace = get_workload(name, scale=0.4).trace()
            counts = trace.counts()
            from repro.trace.events import AccessKind

            assert counts[AccessKind.WRITE] > 0, name
