"""Tests for repro.sim.replication."""

import pytest

from repro.core.config import StreamConfig
from repro.sim.replication import MetricSummary, replicate, summarize
from repro.sim.runner import MissTraceCache


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.spread == 2.0
        assert summary.n == 3

    def test_population_std(self):
        summary = summarize([2.0, 4.0])
        assert summary.std == pytest.approx(1.0)

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.spread == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestReplicate:
    def test_deterministic_workload_has_zero_spread(self):
        cache = MissTraceCache()
        results, summaries = replicate(
            "sweep",
            StreamConfig.jouppi(n_streams=2),
            seeds=(0, 1, 2),
            scale=0.25,
            cache=cache,
        )
        assert len(results) == 3
        # The sweep microbenchmark has no randomness at all.
        assert summaries["hit_pct"].spread == pytest.approx(0.0)

    def test_random_workload_has_small_spread(self):
        cache = MissTraceCache()
        _, summaries = replicate(
            "buk",
            StreamConfig.jouppi(n_streams=10),
            seeds=(0, 1, 2),
            cache=cache,
        )
        # Seed noise exists but the shape is stable.
        assert summaries["hit_pct"].spread < 8.0
        assert summaries["hit_pct"].mean > 50

    def test_seed_reaches_results(self):
        cache = MissTraceCache()
        results, _ = replicate(
            "random",
            StreamConfig.jouppi(n_streams=2),
            seeds=(7, 8),
            cache=cache,
        )
        assert [r.seed for r in results] == [7, 8]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate("sweep", StreamConfig.jouppi(), seeds=())
