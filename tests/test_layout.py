"""Tests for repro.mem.layout."""

import pytest

from repro.mem.allocator import Arena
from repro.mem.layout import ArrayLayout


class TestConstruction:
    def test_vector(self):
        v = ArrayLayout.vector(base=1000, n=10)
        assert v.shape == (10,)
        assert v.size_bytes == 80

    def test_n_elements(self):
        layout = ArrayLayout(base=0, shape=(3, 4, 5))
        assert layout.n_elements == 60
        assert layout.size_bytes == 480

    def test_invalid_element_size(self):
        with pytest.raises(ValueError):
            ArrayLayout(base=0, shape=(4,), element_size=0)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            ArrayLayout(base=0, shape=())
        with pytest.raises(ValueError):
            ArrayLayout(base=0, shape=(3, 0))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            ArrayLayout(base=0, shape=(3,), order="X")


class TestStrides:
    def test_fortran_order_first_dim_fastest(self):
        layout = ArrayLayout(base=0, shape=(4, 5), order="F")
        assert layout.strides == (8, 32)

    def test_c_order_last_dim_fastest(self):
        layout = ArrayLayout(base=0, shape=(4, 5), order="C")
        assert layout.strides == (40, 8)

    def test_3d_fortran_strides(self):
        layout = ArrayLayout(base=0, shape=(2, 3, 4), order="F")
        assert layout.strides == (8, 16, 48)


class TestAddressing:
    def test_origin_is_base(self):
        layout = ArrayLayout(base=4096, shape=(3, 3))
        assert layout.addr(0, 0) == 4096

    def test_fortran_walk_is_unit_stride(self):
        layout = ArrayLayout(base=0, shape=(4, 2), order="F")
        addrs = [layout.addr(i, j) for j in range(2) for i in range(4)]
        assert addrs == [i * 8 for i in range(8)]

    def test_second_dim_walk_has_constant_stride(self):
        layout = ArrayLayout(base=0, shape=(16, 8), order="F")
        addrs = [layout.addr(0, j) for j in range(8)]
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        assert deltas == {16 * 8}

    def test_index_arity_checked(self):
        layout = ArrayLayout(base=0, shape=(3, 3))
        with pytest.raises(IndexError):
            layout.addr(1)

    def test_index_range_checked(self):
        layout = ArrayLayout(base=0, shape=(3, 3))
        with pytest.raises(IndexError):
            layout.addr(3, 0)
        with pytest.raises(IndexError):
            layout.addr(0, -1)

    def test_flat_addr(self):
        layout = ArrayLayout(base=100, shape=(3, 3))
        assert layout.flat_addr(0) == 100
        assert layout.flat_addr(8) == 100 + 64
        with pytest.raises(IndexError):
            layout.flat_addr(9)


class TestFromAllocation:
    def test_fits(self):
        arena = Arena()
        alloc = arena.alloc("a", 480)
        layout = ArrayLayout.from_allocation(alloc, (3, 4, 5))
        assert layout.base == alloc.base

    def test_too_big_rejected(self):
        arena = Arena()
        alloc = arena.alloc("a", 100)
        with pytest.raises(ValueError):
            ArrayLayout.from_allocation(alloc, (100, 100))
