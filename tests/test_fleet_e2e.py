"""End-to-end fleet tests: frontend + workers over real sockets.

Every test boots one frontend :class:`ServiceServer` plus N worker
servers inside a single ``asyncio.run`` scenario and talks real
HTTP/1.1 to the frontend only — exactly the production topology, minus
process boundaries (the subprocess variant is ``repro.fleet.smoke``).

The contracts under test are the ISSUE's acceptance criteria:

* a >=2-worker sweep is **bit-identical** to a single-host ``run_grid``;
* it stays bit-identical when a worker dies **mid-chunk** (accepts the
  request, then drops the connection) — its cells fail over;
* a remote-store miss under ``fetch_policy="require"`` surfaces as a
  tagged TaskError (and a clean 404 from ``/v1/blob/...``), not a hang;
* N duplicate concurrent sweeps execute each unique cell **exactly
  once** fleet-wide (the frontend's coalescer fronts the whole fleet);
* workers replicate trace blobs from the frontend's store instead of
  recomputing them.
"""

import asyncio
import socket

from repro.core.config import StreamConfig
from repro.fleet.hashing import rendezvous_owner
from repro.service import api
from repro.service.client import arequest
from repro.service.server import ServiceConfig, ServiceServer, SimulationService
from repro.sim.parallel import SweepTask, run_grid
from repro.trace.store import stats_from_dict

WORKLOADS = ["sweep", "stride", "interleaved", "random"]
N_STREAMS = [1, 4, 8]
SCALE = 0.25

SWEEP_PAYLOAD = {
    "workloads": WORKLOADS,
    "n_streams": N_STREAMS,
    "scale": SCALE,
    "timeout_s": 120,
}


def _sweep_tasks(workloads=WORKLOADS, n_streams=N_STREAMS):
    return [
        SweepTask(
            key=(name, n),
            workload=name,
            config=StreamConfig.jouppi(n_streams=n),
            scale=SCALE,
        )
        for name in workloads
        for n in n_streams
    ]


def _direct():
    return {
        task.key: result
        for task, result in zip(_sweep_tasks(), run_grid(_sweep_tasks()))
    }


async def _start_worker(store_root=None) -> ServiceServer:
    server = ServiceServer(
        SimulationService(
            ServiceConfig(jobs=1, worker=True, store_root=store_root)
        )
    )
    await server.start()
    return server


async def _start_frontend(
    worker_servers, store_root=None, **overrides
) -> ServiceServer:
    urls = tuple(f"http://{w.host}:{w.port}" for w in worker_servers)
    config = ServiceConfig(
        jobs=1,
        store_root=store_root,
        max_queue=256,
        workers=urls,
        fleet_heartbeat_s=0,  # tests drive liveness deterministically
        **overrides,
    )
    server = ServiceServer(SimulationService(config))
    await server.start()
    return server


def _assert_bit_identical(body, direct):
    assert body["ok"] and not body["errors"], body.get("errors")
    for cell in body["results"]:
        key = tuple(cell["key"])
        assert stats_from_dict(cell["stats"]) == direct[key].streams
        assert cell["l1"]["misses"] == direct[key].l1.misses


class TestFleetSweep:
    def test_two_worker_sweep_is_bit_identical(self, tmp_path):
        async def scenario():
            workers = [
                await _start_worker(str(tmp_path / f"w{i}")) for i in range(2)
            ]
            frontend = await _start_frontend(workers)
            try:
                status, body = await arequest(
                    frontend.host, frontend.port, "POST", "/v1/sweep",
                    SWEEP_PAYLOAD, timeout=180,
                )
                _, fleet = await arequest(
                    frontend.host, frontend.port, "GET", "/v1/fleet/status"
                )
                from repro.obs.metrics import engine_registry

                snap = engine_registry().snapshot()
                return status, body, fleet, snap
            finally:
                for server in [frontend, *workers]:
                    await server.close()

        direct = _direct()
        status, body, fleet, snap = asyncio.run(scenario())
        assert status == 200
        _assert_bit_identical(body, direct)
        # every cell was executed by a worker, none fell back locally
        worker_urls = {w["url"] for w in fleet["workers"]}
        origins = {cell["origin"] for cell in fleet["cells"]}
        assert origins and origins <= worker_urls
        assert len(fleet["cells"]) == len(direct)
        assert snap["counters"].get("fleet_local_fallback_cells_total", 0) == 0
        assert snap["counters"]["fleet_dispatch_cells_total"] >= len(direct)

    def test_worker_death_mid_chunk_fails_over_bit_identical(self, tmp_path):
        """A worker that accepts the chunk then drops the connection:
        its cells must be re-dispatched and the sweep must still match
        the single-host run exactly."""
        # the saboteur: accepts, reads the request, closes mid-response
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(16)
        fake_port = sock.getsockname()[1]

        async def saboteur():
            loop = asyncio.get_running_loop()
            sock.setblocking(False)
            while True:
                conn, _ = await loop.sock_accept(sock)
                try:
                    await loop.sock_recv(conn, 65536)  # the chunk arrives ...
                finally:
                    conn.close()  # ... and dies with the worker

        async def scenario():
            real = await _start_worker(str(tmp_path / "real"))
            fake_url = f"http://127.0.0.1:{fake_port}"
            frontend = await _start_frontend(
                [real],
                fleet_max_attempts=2,
                fleet_chunk_timeout_s=30.0,
            )
            frontend.service.fleet.register(fake_url)
            sabotage = asyncio.ensure_future(saboteur())
            try:
                status, body = await arequest(
                    frontend.host, frontend.port, "POST", "/v1/sweep",
                    SWEEP_PAYLOAD, timeout=180,
                )
                fake = frontend.service.fleet.workers[fake_url]
                real_url = f"http://{real.host}:{real.port}"
                placement = {
                    url: 0 for url in (fake_url, real_url)
                }
                dispatcher = frontend.service.fleet
                for task in _sweep_tasks():
                    owner = rendezvous_owner(
                        dispatcher._task_trace_digest(task),
                        sorted(placement),
                    )
                    placement[owner] += 1
                return status, body, fake.alive, fake.failed_over_cells, placement[fake_url]
            finally:
                sabotage.cancel()
                sock.close()
                for server in [frontend, real]:
                    await server.close()

        direct = _direct()
        status, body, fake_alive, failed_over, expected = asyncio.run(scenario())
        assert status == 200
        _assert_bit_identical(body, direct)
        # the fake worker owned `expected` cells; all of them failed over
        assert failed_over == expected
        if expected:
            assert not fake_alive

    def test_duplicate_sweeps_execute_each_cell_once_fleet_wide(self, tmp_path):
        """Cluster-wide coalescing: the frontend's digest-keyed
        coalescer fronts the whole fleet, so N duplicate concurrent
        sweeps cost one execution per unique cell."""
        n_requests = 12
        unique_cells = len(WORKLOADS) * len(N_STREAMS)

        async def scenario():
            workers = [
                await _start_worker(str(tmp_path / f"w{i}")) for i in range(2)
            ]
            frontend = await _start_frontend(workers)
            try:
                responses = await asyncio.gather(
                    *(
                        arequest(
                            frontend.host, frontend.port, "POST", "/v1/sweep",
                            SWEEP_PAYLOAD, timeout=180,
                        )
                        for _ in range(n_requests)
                    )
                )
                front_counters = dict(
                    frontend.service.metrics.snapshot()["counters"]
                )
                worker_cells = sum(
                    w.service.metrics.snapshot()["counters"]["chunk_cells_total"]
                    for w in workers
                )
                return responses, front_counters, worker_cells
            finally:
                for server in [frontend, *workers]:
                    await server.close()

        responses, counters, worker_cells = asyncio.run(scenario())
        assert {status for status, _ in responses} == {200}
        for _, body in responses:
            assert body["ok"] and len(body["results"]) == unique_cells
        # exactly one execution per unique cell, across the whole fleet
        assert counters["cells_executed_total"] == unique_cells
        assert worker_cells == unique_cells
        assert counters["coalesce_hits_total"] > 0


class TestRemoteStore:
    def test_missing_blob_is_a_clean_404(self, tmp_path):
        async def scenario():
            frontend = await _start_frontend([], store_root=str(tmp_path / "s"))
            try:
                return await asyncio.gather(
                    arequest(
                        frontend.host, frontend.port, "GET",
                        f"/v1/blob/trace/{'f' * 64}",
                    ),
                    arequest(
                        frontend.host, frontend.port, "GET",
                        "/v1/blob/nonsense/abc",
                    ),
                )
            finally:
                await frontend.close()

        (status_a, body_a), (status_b, _) = asyncio.run(scenario())
        assert status_a == 404
        assert body_a["error"]["code"] == "blob_not_found"
        assert status_b == 404

    def test_require_policy_surfaces_tagged_task_error(self, tmp_path):
        """fetch_policy='require' + a trace available nowhere: the cell
        must fail fast with a tagged TaskError, not recompute or hang."""

        async def scenario():
            worker = await _start_worker(store_root=None)  # storeless
            frontend = await _start_frontend(
                [worker],
                store_root=None,  # storeless: nothing to replicate from
                fetch_policy="require",
            )
            try:
                return await arequest(
                    frontend.host, frontend.port, "POST", "/v1/sweep",
                    dict(SWEEP_PAYLOAD, workloads=["sweep"], n_streams=[4]),
                    timeout=60,
                )
            finally:
                await frontend.close()
                await worker.close()

        status, body = asyncio.run(scenario())
        assert status == 200
        assert body["ok"] and not body["results"]
        assert len(body["errors"]) == 1
        error = body["errors"][0]
        assert error["error"] == "trace_unavailable"
        assert "require" in error["traceback"]

    def test_worker_replicates_trace_blobs_instead_of_recomputing(self, tmp_path):
        """With the frontend's store warm, a fresh worker must fetch the
        trace blob over /v1/blob rather than re-simulating the L1."""

        async def scenario():
            frontend = await _start_frontend(
                [], store_root=str(tmp_path / "front")
            )
            try:
                # warm the frontend store with a local (no-worker) run
                status, _ = await arequest(
                    frontend.host, frontend.port, "POST", "/v1/sweep",
                    dict(SWEEP_PAYLOAD, workloads=["sweep"], n_streams=[4]),
                    timeout=120,
                )
                assert status == 200
                worker = await _start_worker(str(tmp_path / "worker"))
                try:
                    frontend.service.fleet.register(
                        f"http://{worker.host}:{worker.port}"
                    )
                    # same trace, different replay config: the worker
                    # needs the trace blob but not the result
                    status, body = await arequest(
                        frontend.host, frontend.port, "POST", "/v1/sweep",
                        dict(SWEEP_PAYLOAD, workloads=["sweep"], n_streams=[6]),
                        timeout=120,
                    )
                    counters = worker.service.metrics.snapshot()["counters"]
                    cell = api.CellSpec(
                        key=("sweep", 6),
                        workload="sweep",
                        config=StreamConfig.jouppi(n_streams=6),
                        scale=SCALE,
                    )
                    tkey, _ = frontend.service._digests(cell)
                    has_blob = worker.service.store.has_blob("trace", tkey)
                    return status, body, counters, has_blob
                finally:
                    await worker.close()
            finally:
                await frontend.close()

        status, body, counters, has_blob = asyncio.run(scenario())
        assert status == 200 and body["ok"] and not body["errors"]
        assert has_blob, "worker store never received the replicated trace blob"
        assert counters["chunk_cells_total"] == 1
        # the L1 simulation happened zero times on the worker
        assert counters.get("runner_trace_computed_total", 0) == 0
        assert counters.get("store_trace_hit_total", 0) >= 1
