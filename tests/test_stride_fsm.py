"""Tests for repro.core.stride_fsm (Figure 7's FSM)."""

from repro.core.stride_fsm import FsmState, StrideFsm


class TestStateProgression:
    def test_first_address_enters_meta1(self):
        fsm = StrideFsm()
        assert fsm.observe(1000) is None
        assert fsm.state is FsmState.META1
        assert fsm.last_addr == 1000

    def test_second_address_enters_meta2_with_guess(self):
        fsm = StrideFsm()
        fsm.observe(1000)
        assert fsm.observe(1128) is None
        assert fsm.state is FsmState.META2
        assert fsm.stride == 128

    def test_third_matching_delta_verifies(self):
        fsm = StrideFsm()
        fsm.observe(1000)
        fsm.observe(1128)
        assert fsm.observe(1256) == 128

    def test_mismatched_delta_updates_guess(self):
        fsm = StrideFsm()
        fsm.observe(1000)
        fsm.observe(1128)
        assert fsm.observe(1500) is None
        assert fsm.stride == 372

    def test_recovers_after_mismatch(self):
        fsm = StrideFsm()
        fsm.observe(0)
        fsm.observe(100)
        fsm.observe(500)  # guess becomes 400
        assert fsm.observe(900) == 400

    def test_negative_stride_verified(self):
        fsm = StrideFsm()
        fsm.observe(1000)
        fsm.observe(900)
        assert fsm.observe(800) == -100

    def test_zero_delta_never_verifies(self):
        fsm = StrideFsm()
        fsm.observe(1000)
        fsm.observe(1000)
        assert fsm.observe(1000) is None

    def test_starting_at_constructor(self):
        fsm = StrideFsm.starting_at(640)
        assert fsm.state is FsmState.META1
        fsm.observe(704)
        assert fsm.observe(768) == 64

    def test_verification_does_not_mutate_state(self):
        """After verification the caller frees the entry; the FSM itself
        keeps its pre-verification fields (the hardware entry is gone)."""
        fsm = StrideFsm()
        fsm.observe(0)
        fsm.observe(10)
        stride = fsm.observe(20)
        assert stride == 10
        assert fsm.stride == 10
