"""Per-benchmark miss-stream signatures.

Each paper benchmark's model claims a specific access structure (its
class docstring); these tests pin that structure down on the *L1 miss
stream* — the input the stream buffers actually see — at a reduced
scale.  They are the regression net for the calibration recorded in
EXPERIMENTS.md.

Note on metrics: concurrent array walks *interleave* in the miss
stream, so consecutive-run statistics understate streaming (that is
precisely why multi-way stream buffers exist).  Regularity therefore
shows up as *delta concentration*: a streaming miss stream is dominated
by a handful of constant byte deltas (the walks' strides and the
constant separations between interleaved walks), while indirection
spreads the delta histogram flat.
"""

from collections import Counter

import numpy as np
import pytest

from repro.sim.runner import MissTraceCache

SCALE = 0.5


@pytest.fixture(scope="module")
def cache():
    return MissTraceCache()


def demand_addrs(cache, name):
    mt, _ = cache.get(name, scale=SCALE)
    return mt.misses_only().addrs, mt.block_bits


def delta_histogram(cache, name):
    addrs, _ = demand_addrs(cache, name)
    return Counter(np.diff(addrs).tolist())


def top_delta_share(cache, name, k):
    """Fraction of miss-to-miss deltas covered by the k most common."""
    hist = delta_histogram(cache, name)
    total = sum(hist.values())
    return sum(count for _, count in hist.most_common(k)) / total


def run_share(cache, name, predicate):
    """Fraction of misses inside consecutive-block runs matching predicate."""
    addrs, block_bits = demand_addrs(cache, name)
    blocks = (addrs >> block_bits).tolist()
    runs = Counter()
    run_len = 1
    prev = blocks[0]
    for block in blocks[1:]:
        if block == prev:
            continue
        if block == prev + 1:
            run_len += 1
        else:
            runs[run_len] += 1
            run_len = 1
        prev = block
    runs[run_len] += 1
    total = sum(length * count for length, count in runs.items())
    return sum(length * count for length, count in runs.items() if predicate(length)) / total


class TestNasSignatures:
    def test_embar_pure_sequential_misses(self, cache):
        # The tally array is cache-resident, so the miss stream is the
        # bare table walk: block-sized deltas dominate and long
        # consecutive-block runs carry most misses (random-replacement
        # survivors punch occasional holes, so runs are long, not one).
        hist = delta_histogram(cache, "embar")
        total = sum(hist.values())
        assert hist[64] / total > 0.9
        assert run_share(cache, "embar", lambda length: length > 20) > 0.7

    def test_mgrid_regular_multi_walk(self, cache):
        # Stencil walks interleave, but their mutual separations are
        # constant: a dozen deltas explain most of the stream.
        assert top_delta_share(cache, "mgrid", 12) > 0.5

    def test_cgm_dominated_by_csr_streams(self, cache):
        # aval/colidx/x alternate with two constant separations: the
        # most regular miss stream after embar.
        assert top_delta_share(cache, "cgm", 6) > 0.9

    def test_fftpde_constant_large_strides(self, cache):
        hist = delta_histogram(cache, "fftpde")
        total = sum(hist.values())
        # Multiple distinct *large* constant deltas, each with real mass:
        # the u<->w alternation composed with the dim-2/3 strides.
        heavy = [
            delta
            for delta, count in hist.most_common(8)
            if abs(delta) > 4096 and count / total > 0.05
        ]
        assert len(heavy) >= 3
        assert top_delta_share(cache, "fftpde", 6) > 0.8

    def test_buk_unit_reads_among_irregular_scatter(self, cache):
        hist = delta_histogram(cache, "buk")
        total = sum(hist.values())
        # The key-array walk contributes a fat block-sized delta...
        assert hist[64] / total > 0.2
        # ...but the rank scatter keeps the overall stream irregular.
        assert top_delta_share(cache, "buk", 6) < 0.55

    def test_appsp_two_of_three_axes_strided(self, cache):
        hist = delta_histogram(cache, "appsp")
        n = 12  # scale 0.5 of 24
        record = 5 * 8
        assert hist[n * record] > 500  # y sweeps
        assert hist[n * n * record] > 500  # z sweeps

    def test_appbt_short_block_runs(self, cache):
        assert run_share(cache, "appbt", lambda length: length <= 5) > 0.5

    def test_applu_fragmented_but_regular(self, cache):
        # Wavefront order fragments runs to a handful of blocks...
        assert run_share(cache, "applu", lambda length: length <= 5) > 0.5
        # ...yet the deltas stay structured (constant wavefront pitches).
        assert top_delta_share(cache, "applu", 12) > 0.4


class TestPerfectSignatures:
    def test_spec77_streaming(self, cache):
        assert top_delta_share(cache, "spec77", 6) > 0.6

    def test_adm_indirection_dominated(self, cache):
        assert top_delta_share(cache, "adm", 12) < 0.45
        assert run_share(cache, "adm", lambda length: length > 20) < 0.2

    def test_bdna_neighbour_cluster_runs(self, cache):
        assert run_share(cache, "bdna", lambda length: 2 <= length <= 8) > 0.25

    def test_dyfesm_most_irregular(self, cache):
        assert top_delta_share(cache, "dyfesm", 12) < 0.35
        assert run_share(cache, "dyfesm", lambda length: length <= 3) > 0.5

    def test_mdg_split_personality(self, cache):
        hist = delta_histogram(cache, "mdg")
        total = sum(hist.values())
        # Neighbour-run reads supply block-sized deltas...
        assert hist[64] / total > 0.1
        # ...while the pair scatter keeps concentration low.
        assert top_delta_share(cache, "mdg", 6) < 0.5

    def test_qcd_link_record_runs(self, cache):
        # SU(3) links: 144B records at 288B checkerboard pitch.
        assert run_share(cache, "qcd", lambda length: length <= 4) > 0.3

    def test_trfd_rows_and_padded_columns(self, cache):
        hist = delta_histogram(cache, "trfd")
        m = 20  # scale 0.5 of 40
        npair = m * (m + 1) // 2
        lda = (npair + 7) & ~7
        # Column passes: block-aligned constant stride of one padded row.
        assert hist[lda * 8] > 1000
        assert top_delta_share(cache, "trfd", 6) > 0.4
