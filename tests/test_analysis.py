"""Tests for repro.analysis (run decomposition + closed-form predictions)."""

import numpy as np
import pytest

from repro.analysis import (
    decompose_runs,
    predict_no_filter,
    predict_with_filter,
)
from repro.analysis.runs import RunDecomposition
from repro.caches.cache import MissTrace
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher


def make_mt(blocks):
    arr = np.asarray(blocks, dtype=np.int64) << 6
    return MissTrace(arr, np.zeros(len(blocks), dtype=np.uint8), 6)


class TestDecomposeRuns:
    def test_single_run(self):
        runs = decompose_runs(make_mt(range(100, 110)))
        assert runs.histogram == {10: 1}
        assert runs.total_misses == 10
        assert runs.mean_length == 10.0

    def test_interleaved_runs_demultiplexed(self):
        blocks = []
        for i in range(8):
            blocks.extend([100 + i, 5000 + i, 900 + i])
        runs = decompose_runs(make_mt(blocks))
        assert runs.histogram == {8: 3}

    def test_isolated_misses(self):
        runs = decompose_runs(make_mt([10, 5000, 90000]))
        assert runs.histogram == {1: 3}

    def test_max_open_limits_tracking(self):
        blocks = []
        for i in range(8):
            blocks.extend([100 + i, 5000 + i, 900 + i])
        runs = decompose_runs(make_mt(blocks), max_open=1)
        # Only one run can stay open: everything fragments.
        assert max(runs.histogram) == 1

    def test_strided_runs(self):
        blocks = [100 + 16 * k for k in range(10)]
        unit = decompose_runs(make_mt(blocks), stride_blocks=1)
        strided = decompose_runs(make_mt(blocks), stride_blocks=16)
        assert max(unit.histogram) == 1
        assert strided.histogram == {10: 1}

    def test_converging_runs_close_the_older(self):
        # Block 50 misses twice (evicted in between); the engine must
        # not merge the two episodes into one run.
        runs = decompose_runs(make_mt([50, 50, 51]))
        assert runs.total_misses == 3
        assert sum(l * c for l, c in runs.histogram.items()) == 3

    def test_misses_in_runs(self):
        runs = RunDecomposition(histogram={1: 4, 10: 2}, total_misses=24)
        assert runs.misses_in_runs(lambda length: length > 5) == pytest.approx(20 / 24)

    def test_validation(self):
        with pytest.raises(ValueError):
            decompose_runs(make_mt([1]), max_open=0)
        with pytest.raises(ValueError):
            decompose_runs(make_mt([1]), stride_blocks=0)

    def test_empty(self):
        runs = decompose_runs(make_mt([]))
        assert runs.total_misses == 0
        assert runs.mean_length == 0.0


class TestPredictions:
    def test_pure_run_no_filter(self):
        runs = decompose_runs(make_mt(range(100, 200)))
        prediction = predict_no_filter(runs)
        assert prediction.hit_rate == pytest.approx(0.99)
        assert prediction.allocations == 1

    def test_filter_costs_one_extra_miss_per_run(self):
        runs = decompose_runs(make_mt(range(100, 200)))
        no_filter = predict_no_filter(runs)
        filtered = predict_with_filter(runs)
        assert filtered.hit_rate == pytest.approx(no_filter.hit_rate - 0.01)

    def test_isolated_misses_predict_zero_filtered_bandwidth(self):
        runs = decompose_runs(make_mt([1, 1000, 50000, 90000]))
        filtered = predict_with_filter(runs)
        assert filtered.hit_rate == 0.0
        assert filtered.eb == 0.0
        assert predict_no_filter(runs).eb == pytest.approx(200.0)

    def test_empty_prediction(self):
        runs = decompose_runs(make_mt([]))
        assert predict_no_filter(runs).hit_rate == 0.0

    def test_depth_validation(self):
        runs = decompose_runs(make_mt([1]))
        with pytest.raises(ValueError):
            predict_no_filter(runs, depth=0)
        with pytest.raises(ValueError):
            predict_with_filter(runs, depth=0)


class TestPredictionsMatchSimulation:
    """The closed forms are exact for clean traces with enough streams."""

    @pytest.mark.parametrize(
        "blocks",
        [
            list(range(100, 400)),
            [b for pair in zip(range(100, 250), range(9000, 9150)) for b in pair],
            [1, 5000, 90000, 100, 101, 102, 103, 104],
        ],
    )
    def test_no_filter_exact(self, blocks):
        runs = decompose_runs(make_mt(blocks))
        predicted = predict_no_filter(runs)
        simulated = StreamPrefetcher(StreamConfig.jouppi(n_streams=10)).run(
            make_mt(blocks)
        )
        assert simulated.hit_rate == pytest.approx(predicted.hit_rate, abs=0.02)

    def test_filter_exact_on_interleaved_walks(self):
        blocks = [b for pair in zip(range(100, 300), range(9000, 9200)) for b in pair]
        runs = decompose_runs(make_mt(blocks))
        predicted = predict_with_filter(runs)
        simulated = StreamPrefetcher(StreamConfig.filtered(n_streams=10)).run(
            make_mt(blocks)
        )
        assert simulated.hit_rate == pytest.approx(predicted.hit_rate, abs=0.02)

    def test_prediction_upper_bounds_starved_bank(self):
        # With fewer streams than walks, the simulator must fall short
        # of the enough-buffers prediction.
        walks = [range(1000 * w, 1000 * w + 50) for w in range(8)]
        blocks = [b for group in zip(*walks) for b in group]
        runs = decompose_runs(make_mt(blocks))
        predicted = predict_no_filter(runs)
        starved = StreamPrefetcher(StreamConfig.jouppi(n_streams=2)).run(make_mt(blocks))
        assert starved.hit_rate < predicted.hit_rate - 0.3
