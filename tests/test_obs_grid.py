"""End-to-end telemetry tests: sweep engine, manifests, CLI round-trip.

These drive the tentpole's acceptance path: a traced grid produces one
``cell`` span per executed cell (serial and pooled, with worker pids
merged into one timeline), failed cells carry wall time and worker id,
and a ``repro sweep --trace-out/--manifest`` invocation yields a
Perfetto-valid trace plus a manifest whose outcome counts sum to the
grid size.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.config import StreamConfig
from repro.obs.manifest import ManifestBuilder, load_manifest, phase_times, summarize
from repro.obs.metrics import MetricsRegistry, engine_registry
from repro.obs.spans import get_tracer, set_tracing, validate_chrome_events
from repro.sim.parallel import SweepTask, TaskError, run_grid
from repro.sim.results import RunResult

WORKLOADS = ("sweep", "stride")
SCALE = 0.25


def small_tasks():
    return [
        SweepTask(
            key=(name, n),
            workload=name,
            config=StreamConfig.jouppi(n_streams=n),
            scale=SCALE,
        )
        for name in WORKLOADS
        for n in (1, 2)
    ]


@pytest.fixture
def traced_session():
    """Enable the global tracer for one test, restoring a clean slate."""
    tracer = set_tracing(True)
    tracer.clear()
    yield tracer
    tracer.enabled = False
    tracer.clear()


class TestProvenance:
    def test_serial_results_carry_provenance(self):
        results = run_grid(small_tasks(), jobs=1)
        for result in results:
            assert isinstance(result, RunResult)
            assert result.source == "replayed"
            assert result.wall_time_s > 0
            assert result.worker > 0

    def test_store_hits_tagged_as_store(self, tmp_path):
        from repro.trace.store import TraceStore

        store = TraceStore(tmp_path / "store")
        tasks = small_tasks()
        cold = run_grid(tasks, jobs=1, store=store)
        warm = run_grid(tasks, jobs=1, store=store)
        assert all(r.source == "replayed" for r in cold)
        assert all(r.source == "store" for r in warm)
        assert cold == warm  # provenance is excluded from equality

    def test_task_error_carries_wall_time_and_worker(self):
        tasks = [
            SweepTask(key="bad", workload="no-such-workload", config=StreamConfig.jouppi())
        ]
        (error,) = run_grid(tasks, jobs=1)
        assert isinstance(error, TaskError)
        assert error.wall_time_s >= 0
        assert error.worker > 0
        payload = error.to_payload()
        assert payload["wall_time_s"] == error.wall_time_s
        assert payload["worker"] == error.worker


class TestCrossProcessCollection:
    def test_pooled_grid_merges_spans_and_metrics(self, traced_session):
        before = engine_registry().counter("engine_cells_total").value
        tasks = small_tasks()
        results = run_grid(tasks, jobs=2)
        assert all(isinstance(r, RunResult) for r in results)
        events = traced_session.events()
        cells = [e for e in events if e["name"] == "cell"]
        assert len(cells) == len(tasks)
        # Worker pids differ from the parent's grid.run span.
        (grid_span,) = [e for e in events if e["name"] == "grid.run"]
        assert {e["pid"] for e in cells} != {grid_span["pid"]}
        validate_chrome_events(sorted(events, key=lambda e: e["ts"] + e.get("dur", 0)))
        # Counters shipped back loss-free: one bump per cell.
        after = engine_registry().counter("engine_cells_total").value
        assert after - before == len(tasks)

    def test_untraced_pooled_grid_ships_no_spans(self):
        tracer = get_tracer()
        assert not tracer.enabled
        before = len(tracer)
        run_grid(small_tasks()[:2], jobs=2)
        assert len(tracer) == before


class TestManifestBuilder:
    def test_outcomes_sum_to_grid_size(self):
        builder = ManifestBuilder("sweep", registry=MetricsRegistry())
        tasks = small_tasks()
        results = run_grid(tasks, jobs=1)
        builder.add_results(tasks, results)
        manifest = builder.build(span_events=[])
        outcomes = manifest["outcomes"]
        assert (
            outcomes["store_hits"]
            + outcomes["store_misses"]
            + outcomes["analytic_pruned"]
            + outcomes["skipped"]
            == manifest["grid"]["cells"]
            == len(tasks)
        )

    def test_errors_counted_as_store_misses(self):
        builder = ManifestBuilder("sweep", registry=MetricsRegistry())
        tasks = [
            SweepTask(key="bad", workload="no-such-workload", config=StreamConfig.jouppi())
        ]
        builder.add_results(tasks, run_grid(tasks, jobs=1))
        outcomes = builder.build(span_events=[])["outcomes"]
        assert outcomes["errors"] == 1
        assert outcomes["store_misses"] == 1

    def test_phase_times_aggregates_x_events(self):
        events = [
            {"name": "cell", "ph": "X", "ts": 0, "dur": 2000, "pid": 1, "tid": 1},
            {"name": "cell", "ph": "X", "ts": 5, "dur": 4000, "pid": 2, "tid": 1},
            {"name": "meta", "ph": "M", "ts": 0, "pid": 1, "tid": 0},
        ]
        times = phase_times(events)
        assert times == {
            "cell": {
                "count": 2,
                "total_ms": 6.0,
                "max_ms": 4.0,
                "p50_ms": 2.0,
                "p95_ms": 4.0,
                "p99_ms": 4.0,
            }
        }

    def test_manifest_is_json_and_versioned(self, tmp_path):
        builder = ManifestBuilder("sweep", argv=["--jobs", "2"], registry=MetricsRegistry())
        path = builder.write(tmp_path, span_events=[])
        manifest = load_manifest(path)
        assert manifest["manifest_version"] == 1
        assert manifest["argv"] == ["--jobs", "2"]
        with pytest.raises(ValueError, match="manifest_version"):
            path.write_text(json.dumps({"manifest_version": 99}))
            load_manifest(path)


class TestCliRoundTrip:
    def test_obs_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--trace-out", "t.json", "--manifest", "runs"]
        )
        assert args.trace_out == "t.json"
        assert args.manifest == "runs"
        args = build_parser().parse_args(["compare", "sweep", "--trace-out", "t.json"])
        assert args.trace_out == "t.json"

    def test_sweep_writes_valid_trace_and_manifest(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        manifest_dir = tmp_path / "runs"
        code = main(
            [
                "sweep",
                "--workloads", "sweep", "stride",
                "--n-streams", "1", "2",
                "--scale", str(SCALE),
                "--trace-out", str(trace_path),
                "--manifest", str(manifest_dir),
            ]
        )
        assert code == 0
        assert not get_tracer().enabled  # session restored the toggle

        doc = json.loads(trace_path.read_text())
        validate_chrome_events(doc["traceEvents"])
        cells = [e for e in doc["traceEvents"] if e.get("name") == "cell"]
        assert len(cells) == 4  # one span per executed cell

        (manifest_path,) = manifest_dir.glob("run-*.json")
        manifest = load_manifest(manifest_path)
        assert manifest["command"] == "sweep"
        outcomes = manifest["outcomes"]
        assert (
            outcomes["store_hits"]
            + outcomes["store_misses"]
            + outcomes["analytic_pruned"]
            + outcomes["skipped"]
            == manifest["grid"]["cells"]
            == 4
        )
        assert len(manifest["cells"]) == 4
        assert "cell" in manifest["phase_times"]
        capsys.readouterr()

        # ... and `repro obs summarize` digests it back.
        assert main(["obs", "summarize", str(manifest_path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out
        assert "slowest 2 cells" in out
        assert "phase times" in out

    def test_summarize_rejects_missing_file(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.json")]) == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_summarize_text_lists_slowest_first(self):
        manifest = {
            "manifest_version": 1,
            "command": "sweep",
            "git_sha": "a" * 40,
            "wall_time_s": 1.0,
            "grid": {"cells": 2},
            "outcomes": {"store_hits": 1, "store_misses": 1},
            "cells": [
                {"key": ["a", 1], "workload": "a", "ok": True, "error": "",
                 "wall_time_s": 0.1, "worker": 1, "source": "store"},
                {"key": ["b", 2], "workload": "b", "ok": True, "error": "",
                 "wall_time_s": 0.9, "worker": 2, "source": "replayed"},
            ],
            "store_io": {"read_bytes": 10, "written_bytes": 0},
            "phase_times": {},
            "meta": {},
        }
        text = summarize(manifest, top=1)
        assert '["b", 2]' in text
        assert '["a", 1]' not in text  # top=1 keeps only the slowest
