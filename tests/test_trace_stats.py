"""Tests for repro.trace.stats."""

import numpy as np
import pytest

from repro.mem.address import AddressSpace
from repro.trace.events import Access, AccessKind, Trace
from repro.trace.stats import (
    block_run_lengths,
    profile_trace,
    stride_histogram,
)


class TestStrideHistogram:
    def test_constant_stride_dominates(self):
        trace = Trace.uniform(np.arange(100, dtype=np.int64) * 8)
        hist = stride_histogram(trace)
        assert hist[8] == 99

    def test_mixed_strides_counted(self):
        trace = Trace.uniform([0, 8, 16, 1000, 1008])
        hist = stride_histogram(trace)
        assert hist[8] == 3
        assert hist[984] == 1

    def test_ifetches_excluded(self):
        trace = Trace.from_accesses([Access.read(0), Access.ifetch(999), Access.read(8)])
        hist = stride_histogram(trace)
        assert hist == {8: 1}

    def test_short_trace(self):
        assert stride_histogram(Trace.uniform([1])) == {}
        assert stride_histogram(Trace.empty()) == {}

    def test_top_limits_output(self):
        trace = Trace.uniform([0, 1, 3, 6, 10, 15])  # all distinct deltas
        hist = stride_histogram(trace, top=2)
        assert len(hist) == 2


class TestBlockRunLengths:
    def test_single_long_run(self):
        trace = Trace.uniform(np.arange(8, dtype=np.int64) * 64)
        runs = block_run_lengths(trace)
        assert runs == {8: 1}

    def test_repeats_extend_nothing(self):
        trace = Trace.uniform([0, 0, 8, 64, 64])
        runs = block_run_lengths(trace)
        assert runs == {2: 1}

    def test_jump_breaks_run(self):
        trace = Trace.uniform([0, 64, 4096, 4160])
        runs = block_run_lengths(trace)
        assert runs == {2: 2}

    def test_empty(self):
        assert block_run_lengths(Trace.empty()) == {}


class TestProfile:
    def test_counts(self):
        trace = Trace.from_accesses(
            [Access.read(0), Access.write(8), Access.ifetch(64)]
        )
        profile = profile_trace(trace)
        assert profile.length == 3
        assert profile.data_accesses == 2
        assert profile.writes == 1
        assert profile.ifetches == 1

    def test_unique_blocks_and_footprint(self):
        trace = Trace.uniform([0, 8, 64, 128])
        profile = profile_trace(trace)
        assert profile.unique_blocks == 3
        assert profile.footprint_bytes == 192

    def test_unit_stride_fraction(self):
        trace = Trace.uniform(np.arange(101, dtype=np.int64) * 8)
        profile = profile_trace(trace)
        assert profile.unit_stride_fraction == pytest.approx(1.0)

    def test_random_has_low_unit_fraction(self):
        rng = np.random.default_rng(0)
        trace = Trace.uniform(rng.integers(0, 1 << 24, size=1000) * 8)
        profile = profile_trace(trace)
        assert profile.unit_stride_fraction < 0.05

    def test_empty_profile(self):
        profile = profile_trace(Trace.empty())
        assert profile.length == 0
        assert profile.mean_block_run == 0.0

    def test_mean_block_run(self):
        trace = Trace.uniform([0, 64, 4096, 4160, 4224])
        profile = profile_trace(trace)
        assert profile.mean_block_run == pytest.approx(2.5)

    def test_block_size_respected(self):
        trace = Trace.uniform([0, 64])
        profile = profile_trace(trace, AddressSpace(block_size=128))
        assert profile.unique_blocks == 1
