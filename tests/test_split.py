"""Tests for repro.caches.split (the paper's 64K I + 64K D L1)."""

import numpy as np
import pytest

from repro.caches.cache import CacheConfig, MissEventKind
from repro.caches.split import SplitL1, SplitL1Config
from repro.trace.events import Access, AccessKind, Trace


class TestConfig:
    def test_defaults_are_paper(self):
        config = SplitL1Config()
        assert config.icache.capacity == 64 * 1024
        assert config.dcache.capacity == 64 * 1024
        assert config.block_bits == 6

    def test_mismatched_block_sizes_rejected(self):
        with pytest.raises(ValueError):
            SplitL1Config(
                icache=CacheConfig(capacity=1024, assoc=2, block_size=64),
                dcache=CacheConfig(capacity=1024, assoc=2, block_size=128),
            )


class TestRouting:
    def test_data_only_trace_uses_dcache(self):
        l1 = SplitL1()
        trace = Trace.uniform(np.arange(256, dtype=np.int64) * 64)
        l1.simulate(trace)
        assert l1.dcache.stats.accesses == 256
        assert l1.icache.stats.accesses == 0

    def test_ifetches_go_to_icache(self):
        l1 = SplitL1()
        trace = Trace.from_accesses([Access.ifetch(0), Access.read(1 << 20)])
        l1.simulate(trace)
        assert l1.icache.stats.accesses == 1
        assert l1.dcache.stats.accesses == 1

    def test_same_address_disjoint_between_caches(self):
        l1 = SplitL1()
        trace = Trace.from_accesses([Access.read(0), Access.ifetch(0)])
        miss = l1.simulate(trace)
        # Both miss: the caches do not share contents.
        assert miss.n_misses == 2

    def test_ifetch_misses_marked(self):
        l1 = SplitL1()
        trace = Trace.from_accesses([Access.ifetch(0), Access.read(64)])
        miss = l1.simulate(trace)
        assert miss.kinds.tolist() == [
            int(MissEventKind.IFETCH_MISS),
            int(MissEventKind.READ_MISS),
        ]

    def test_miss_order_preserved_across_caches(self):
        l1 = SplitL1()
        trace = Trace.from_accesses(
            [Access.read(0), Access.ifetch(1 << 16), Access.write(1 << 20)]
        )
        miss = l1.simulate(trace)
        assert miss.addrs.tolist() == [0, 1 << 16, 1 << 20]

    def test_combined_stats(self):
        l1 = SplitL1()
        trace = Trace.from_accesses([Access.ifetch(0), Access.read(0), Access.read(0)])
        l1.simulate(trace)
        assert l1.stats.accesses == 3
        assert l1.stats.hits == 1

    def test_weighted_with_ifetch_rejected(self):
        l1 = SplitL1()
        trace = Trace.from_accesses([Access.ifetch(0)])
        with pytest.raises(ValueError):
            l1.simulate(trace, weights=np.ones(1, dtype=np.int64))

    def test_weights_supported_for_data_only(self):
        l1 = SplitL1()
        trace = Trace.uniform([0, 128])
        l1.simulate(trace, weights=np.array([4, 4], dtype=np.int64))
        assert l1.stats.accesses == 8


class TestInstructionMissClaim:
    def test_small_loop_body_has_negligible_i_misses(self):
        """Paper Section 5: a 64KB I-cache makes I-misses negligible."""
        from repro.workloads.instructions import with_instructions

        data = Trace.uniform(np.arange(20_000, dtype=np.int64) * 64 + (1 << 22))
        trace = with_instructions(data, code_bytes=16 * 1024, per_access=2)
        l1 = SplitL1()
        l1.simulate(trace)
        i_stats = l1.icache.stats
        assert i_stats.accesses == 40_000
        # Only the cold footprint misses: 16KB / 64B = 256 blocks.
        assert i_stats.misses <= 256
        assert i_stats.miss_rate < 0.01
