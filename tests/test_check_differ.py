"""Differ tests: corpus smoke, determinism, and detection power
(an injected bug must produce a divergence with a replayable seed)."""

import numpy as np
import pytest

from repro.check import differ, oracle


class TestGenerators:
    def test_trace_generation_deterministic(self):
        import random

        a = differ.random_trace(random.Random(42), 500)
        b = differ.random_trace(random.Random(42), 500)
        assert np.array_equal(a.addrs, b.addrs)
        assert np.array_equal(a.kinds, b.kinds)

    def test_cache_config_valid(self):
        import random

        rng = random.Random(1)
        for _ in range(50):
            differ.random_cache_config(rng)  # __post_init__ validates

    def test_stream_config_valid(self):
        import random

        rng = random.Random(1)
        for _ in range(50):
            differ.random_stream_config(rng)  # __post_init__ validates

    def test_miss_trace_mixes_kinds(self):
        import random

        trace = differ.random_miss_trace(random.Random(3), 1500)
        kinds = set(trace.kinds.tolist())
        assert oracle.EV_READ_MISS in kinds
        assert oracle.EV_WRITEBACK in kinds


class TestCorpus:
    def test_small_corpus_clean(self):
        report = differ.run_corpus(seeds=6, n_events=800, registry=False)
        assert report.ok, "\n".join(str(d) for d in report.divergences)
        assert report.seeds_checked == 6

    def test_seed_replay_is_deterministic(self):
        assert differ.diff_l1(9, n_events=600) == differ.diff_l1(9, n_events=600)
        assert differ.diff_streams(9, n_events=600) == differ.diff_streams(9, n_events=600)
        assert differ.diff_analytic(9, n_events=600) == differ.diff_analytic(9, n_events=600)

    def test_analytic_stage_clean_across_seeds(self):
        for seed in range(6):
            divergence = differ.diff_analytic(seed, n_events=800)
            assert divergence is None, str(divergence)

    def test_registry_workload_clean(self):
        assert differ.diff_registry_workload("cgm", scale=0.03) is None


class TestDetectionPower:
    """The differ must actually catch bugs, not just agree with itself."""

    def test_detects_oracle_side_mutation(self, monkeypatch):
        real = oracle._RefLane._unit_observe

        def broken(self, block):
            result = real(self, block)
            if len(self.unit_table) > 2:
                self.unit_table.pop()
            return result

        monkeypatch.setattr(oracle._RefLane, "_unit_observe", broken)
        found = [s for s in range(8) if differ.diff_streams(s, n_events=1200)]
        assert found, "corrupted unit filter went undetected across 8 seeds"

    def test_detects_optimized_side_mutation(self, monkeypatch):
        from repro.caches.cache import Cache

        real = Cache._install_ex

        def broken(self, set_index, block, dirty):
            return real(self, set_index, block, True)  # every fill dirty

        monkeypatch.setattr(Cache, "_install_ex", broken)
        divergence = differ.diff_l1(0, n_events=1500)
        assert divergence is not None
        assert divergence.stage == "l1"
        assert divergence.seed == 0
        assert "replay" in str(divergence)

    def test_detects_profiler_mutation(self, monkeypatch):
        # A profiler that ignores write-back recency updates is exactly
        # the kind of semantic drift the analytic stage must catch.
        import repro.analytic.model as model

        real = model.fa_hit_count

        def broken(profile, capacity_bytes):
            count = real(profile, capacity_bytes)
            return count + 1 if count else count  # off-by-one on any hits

        monkeypatch.setattr(model, "fa_hit_count", broken)
        divergence = differ.diff_analytic(0, n_events=1200)
        assert divergence is not None
        assert divergence.stage == "analytic"
        assert "fa_hit_count" in divergence.what
        assert "repro check --replay analytic:0" in str(divergence)


class TestDivergenceRendering:
    def test_str_carries_replay_command(self):
        d = differ.Divergence(
            stage="streams", seed=7, what="outcome[3]", optimized="hit", expected="miss"
        )
        text = str(d)
        assert "seed=7" in text
        assert "repro check --replay streams:7" in text


class TestAnalyticStreamsStage:
    def test_registered_and_on_by_default(self):
        assert "analytic-streams" in differ.STAGE_FUNCTIONS
        assert "analytic-streams" in differ.DEFAULT_STAGES

    def test_clean_across_seeds(self):
        for seed in range(6):
            divergence = differ.diff_analytic_streams(seed, n_events=900)
            assert divergence is None, str(divergence)

    def test_seed_replay_is_deterministic(self):
        assert differ.diff_analytic_streams(4, n_events=700) == differ.diff_analytic_streams(
            4, n_events=700
        )

    def test_detects_spectrum_mutation(self, monkeypatch):
        # A miscounted concurrency histogram must trip the fast-vs-naive
        # bit-exactness check.
        from repro.trace import spectrum as spectrum_mod

        real = spectrum_mod.extract_spectrum

        def broken(miss_trace):
            result = real(miss_trace)
            if len(result.run_conc_ge):
                result.run_conc_ge[0, 0] += 1
            return result

        monkeypatch.setattr(spectrum_mod, "extract_spectrum", broken)
        found = [
            s for s in range(8) if differ.diff_analytic_streams(s, n_events=900)
        ]
        assert found, "corrupted conc histogram went undetected across 8 seeds"

    def test_detects_model_mutation(self, monkeypatch):
        # An over-confident bound must surface as out-of-bound seeds.
        from repro.analytic import streams as streams_mod

        real = streams_mod.predict_streams

        def overconfident(spectrum, config):
            prediction = real(spectrum, config)
            object.__setattr__(prediction, "bound", 0.0)
            return prediction

        monkeypatch.setattr(streams_mod, "predict_streams", overconfident)
        found = [
            s for s in range(8) if differ.diff_analytic_streams(s, n_events=900)
        ]
        assert found, "zeroed error bound went undetected across 8 seeds"
