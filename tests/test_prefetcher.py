"""Tests for repro.core.prefetcher (the assembled system)."""

import numpy as np
import pytest

from repro.caches.cache import MissEventKind, MissTrace
from repro.core.bank import Lookup
from repro.core.config import StreamConfig, StrideDetector
from repro.core.prefetcher import StreamPrefetcher


def make_miss_trace(blocks, kinds=None, block_bits=6):
    blocks = np.asarray(blocks, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(blocks.shape[0], dtype=np.uint8)
    return MissTrace(blocks << block_bits, np.asarray(kinds, dtype=np.uint8), block_bits)


class TestUnfilteredPolicy:
    def test_every_stream_miss_allocates(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        pf.handle_miss(100 << 6)
        pf.handle_miss(500 << 6)
        stats = pf.finalize()
        assert stats.allocations == 2

    def test_sequential_misses_hit_after_first(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        outcomes = [pf.handle_miss(block << 6) for block in range(100, 110)]
        assert outcomes[0] is Lookup.MISS
        assert all(o is Lookup.HIT for o in outcomes[1:])

    def test_run_over_miss_trace(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        stats = pf.run(make_miss_trace(range(100, 200)))
        assert stats.demand_misses == 100
        assert stats.stream_hits == 99
        assert stats.hit_rate == pytest.approx(0.99)

    def test_block_bits_mismatch_rejected(self):
        pf = StreamPrefetcher(StreamConfig.jouppi())
        with pytest.raises(ValueError):
            pf.run(make_miss_trace([1, 2], block_bits=7))


class TestFilteredPolicy:
    def test_isolated_misses_never_allocate(self):
        pf = StreamPrefetcher(StreamConfig.filtered(n_streams=2))
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 1 << 20, size=200)
        stats = pf.run(make_miss_trace(blocks))
        assert stats.allocations == 0
        assert stats.prefetches_issued == 0

    def test_two_consecutive_misses_start_stream(self):
        pf = StreamPrefetcher(StreamConfig.filtered(n_streams=2))
        assert pf.handle_miss(100 << 6) is Lookup.MISS
        assert pf.handle_miss(101 << 6) is Lookup.MISS  # allocates for 102+
        assert pf.handle_miss(102 << 6) is Lookup.HIT

    def test_filter_pays_two_miss_preamble(self):
        pf = StreamPrefetcher(StreamConfig.filtered(n_streams=2))
        stats = pf.run(make_miss_trace(range(100, 200)))
        assert stats.stream_hits == 98
        assert stats.unit_filter_hits == 1

    def test_filter_reduces_bandwidth_on_random_trace(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 1 << 20, size=500)
        plain = StreamPrefetcher(StreamConfig.jouppi()).run(make_miss_trace(blocks))
        filtered = StreamPrefetcher(StreamConfig.filtered()).run(make_miss_trace(blocks))
        assert filtered.bandwidth.eb_measured < plain.bandwidth.eb_measured / 5


class TestStrideDetection:
    def test_czone_catches_constant_stride(self):
        config = StreamConfig.non_unit(n_streams=2, czone_bits=16)
        pf = StreamPrefetcher(config)
        blocks = [1 << 14] * 1
        stats = pf.run(make_miss_trace(np.arange(100) * 16 + (1 << 14)))
        # After the three-miss FSM preamble everything hits.
        assert stats.stream_hits >= 96
        assert stats.detector_hits >= 1

    def test_min_delta_detector_variant(self):
        config = StreamConfig(
            n_streams=2,
            unit_filter_entries=16,
            stride_detector=StrideDetector.MIN_DELTA,
        )
        pf = StreamPrefetcher(config)
        stats = pf.run(make_miss_trace(np.arange(100) * 16 + (1 << 14)))
        assert stats.stream_hits >= 90

    def test_unit_filter_takes_priority(self):
        config = StreamConfig.non_unit(n_streams=2)
        pf = StreamPrefetcher(config)
        stats = pf.run(make_miss_trace(range(100, 130)))
        assert stats.unit_filter_hits == 1
        assert stats.detector_hits == 0


class TestWritebacks:
    def test_writeback_counts_and_invalidates(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        pf.handle_miss(100 << 6)  # stream prefetching 101, 102
        assert pf.handle_writeback(101 << 6) == 1
        stats = pf.finalize()
        assert stats.writebacks == 1
        assert stats.invalidations == 1

    def test_stale_entry_does_not_hit(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        pf.handle_miss(100 << 6)
        pf.handle_writeback(101 << 6)
        assert pf.handle_miss(101 << 6) is Lookup.MISS

    def test_run_routes_writeback_events(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        mt = make_miss_trace(
            [100, 101, 50],
            kinds=[0, 0, int(MissEventKind.WRITEBACK)],
        )
        stats = pf.run(mt)
        assert stats.demand_misses == 2
        assert stats.writebacks == 1


class TestPartitionedStreams:
    def test_ifetch_misses_use_their_own_bank(self):
        config = StreamConfig(n_streams=2, partitioned=True, i_streams=2)
        pf = StreamPrefetcher(config)
        pf.handle_miss(100 << 6, is_ifetch=False)  # data bank: 101, 102
        # An I-miss on 101 must NOT hit the data bank's prefetch.
        assert pf.handle_miss(101 << 6, is_ifetch=True) is Lookup.MISS
        stats = pf.finalize()
        assert stats.ifetch_misses == 1

    def test_unified_default_shares_one_bank(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        pf.handle_miss(100 << 6, is_ifetch=False)
        assert pf.handle_miss(101 << 6, is_ifetch=True) is Lookup.HIT

    def test_partitioned_counts_both_lanes(self):
        config = StreamConfig(n_streams=2, partitioned=True, i_streams=1)
        pf = StreamPrefetcher(config)
        for block in range(100, 105):
            pf.handle_miss(block << 6, is_ifetch=False)
        for block in range(900, 905):
            pf.handle_miss(block << 6, is_ifetch=True)
        stats = pf.finalize()
        assert stats.demand_misses == 10
        assert stats.stream_hits == 8  # 4 per lane


class TestMinLeadExtension:
    def test_min_lead_depresses_hit_rate(self):
        plain = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        lagged = StreamPrefetcher(StreamConfig.jouppi(n_streams=2).with_(min_lead=3))
        mt = make_miss_trace(range(100, 200))
        fast = plain.run(mt)
        slow = lagged.run(make_miss_trace(range(100, 200)))
        assert slow.stream_hits < fast.stream_hits
        assert slow.in_flight_matches > 0

    def test_in_flight_matches_not_double_counted(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2).with_(min_lead=100))
        stats = pf.run(make_miss_trace(range(100, 150)))
        assert stats.stream_hits == 0
        assert stats.in_flight_matches == 49


class TestDemandOnlyFastPath:
    """``run`` takes a dispatch-free path for traces with no WB/ifetch
    events; it must be observationally identical to per-event driving."""

    def drive_manually(self, config, mt):
        pf = StreamPrefetcher(config)
        for addr in mt.addrs.tolist():
            pf.handle_miss(addr)
        return pf.finalize()

    @pytest.mark.parametrize(
        "config",
        [
            StreamConfig.jouppi(n_streams=2),
            StreamConfig.filtered(n_streams=2),
            StreamConfig.jouppi(n_streams=2).with_(min_lead=3),
        ],
        ids=["jouppi", "filtered", "min_lead"],
    )
    def test_fast_path_matches_event_api(self, config):
        rng = np.random.default_rng(3)
        blocks = np.concatenate(
            [np.arange(100, 150), rng.integers(0, 1 << 20, size=50)]
        )
        mt = make_miss_trace(blocks)
        assert not np.any(mt.kinds)  # demand-only: fast path taken
        assert StreamPrefetcher(config).run(mt) == self.drive_manually(config, mt)

    def test_single_writeback_disables_fast_path_consistently(self):
        # The same demand stream with one trailing WB must differ only in
        # the WB-related counters — the hit counters stay in agreement.
        blocks = list(range(100, 150))
        demand_only = StreamPrefetcher(StreamConfig.jouppi(n_streams=2)).run(
            make_miss_trace(blocks)
        )
        with_wb = StreamPrefetcher(StreamConfig.jouppi(n_streams=2)).run(
            make_miss_trace(blocks + [9999], kinds=[0] * 50 + [int(MissEventKind.WRITEBACK)])
        )
        assert with_wb.writebacks == 1
        assert with_wb.demand_misses == demand_only.demand_misses
        assert with_wb.stream_hits == demand_only.stream_hits


class TestStats:
    def test_stream_misses_property(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        stats = pf.run(make_miss_trace(range(100, 110)))
        assert stats.stream_misses == stats.demand_misses - stats.stream_hits

    def test_hit_rate_zero_when_no_misses(self):
        pf = StreamPrefetcher(StreamConfig.jouppi())
        stats = pf.finalize()
        assert stats.hit_rate == 0.0

    def test_finalize_idempotent(self):
        pf = StreamPrefetcher(StreamConfig.jouppi(n_streams=2))
        pf.run(make_miss_trace(range(100, 110)))
        first = pf.finalize()
        second = pf.finalize()
        assert first.prefetches_issued == second.prefetches_issued
        assert first.lengths.total_hits == second.lengths.total_hits
