"""Tests for repro.trace.builder."""

import pytest

from repro.trace.builder import TraceBuilder
from repro.trace.events import Access, AccessKind, Trace


class TestTraceBuilder:
    def test_chained_appends(self):
        trace = TraceBuilder().read(8).write(16).ifetch(64).build()
        assert trace.to_accesses() == [
            Access.read(8),
            Access.write(16),
            Access.ifetch(64),
        ]

    def test_len(self):
        builder = TraceBuilder()
        builder.read(1).read(2)
        assert len(builder) == 2

    def test_no_pcs_by_default(self):
        trace = TraceBuilder().read(8).build()
        assert not trace.has_pcs

    def test_pcs_recorded_when_enabled(self):
        trace = TraceBuilder(with_pcs=True).read(8, pc=0x40).write(16, pc=0x44).build()
        assert trace.has_pcs
        assert trace.pcs.tolist() == [0x40, 0x44]

    def test_extend_with_existing_trace(self):
        base = Trace.uniform([1, 2])
        trace = TraceBuilder().read(0).extend(base).build()
        assert [a.addr for a in trace] == [0, 1, 2]

    def test_extend_carries_pcs(self):
        import numpy as np

        base = Trace(
            np.array([1], dtype=np.int64),
            np.array([0], dtype=np.uint8),
            np.array([7], dtype=np.int64),
        )
        trace = TraceBuilder(with_pcs=True).read(0, pc=5).extend(base).build()
        assert trace.pcs.tolist() == [5, 7]

    def test_empty_build(self):
        assert len(TraceBuilder().build()) == 0

    def test_single_use(self):
        builder = TraceBuilder()
        builder.read(1)
        builder.build()
        with pytest.raises(RuntimeError):
            builder.read(2)
        with pytest.raises(RuntimeError):
            builder.build()
        with pytest.raises(RuntimeError):
            builder.extend(Trace.uniform([1]))

    def test_built_trace_runs_through_cache(self):
        from repro.caches import Cache, CacheConfig

        builder = TraceBuilder()
        for i in range(256):
            builder.read(i * 64)
        cache = Cache(CacheConfig(capacity=4096, assoc=2, block_size=64, policy="lru"))
        miss = cache.simulate(builder.build())
        assert miss.n_misses == 256
