"""Tests for repro.costs."""

import pytest

from repro.costs import (
    CostModel,
    bandwidth_affordable,
    l2_design_cost,
    stream_design_cost,
)


class TestCostModel:
    def test_defaults_valid(self):
        CostModel()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sram_cost_per_mb": 0},
            {"baseline_memory_cost": -1},
            {"bandwidth_cost_per_x": 0},
            {"stream_buffer_cost": 0},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CostModel(**kwargs)


class TestDesignCosts:
    def test_l2_cost_scales_with_capacity(self):
        small = l2_design_cost(0.5)
        big = l2_design_cost(4.0)
        assert big.total > small.total
        assert big.sram_mb == 4.0

    def test_stream_cost_scales_with_bandwidth(self):
        narrow = stream_design_cost(1.0)
        wide = stream_design_cost(4.0)
        assert wide.total > narrow.total
        assert narrow.sram_mb == 0.0

    def test_streams_cheaper_than_any_real_l2_at_equal_bandwidth(self):
        assert stream_design_cost(1.0).total < l2_design_cost(0.5).total

    def test_validation(self):
        with pytest.raises(ValueError):
            l2_design_cost(-1)
        with pytest.raises(ValueError):
            stream_design_cost(0.5)

    def test_scaled_to_parallel_machine(self):
        machine = l2_design_cost(2.0).scaled(1024)
        assert machine.sram_mb == 2048.0  # the paper's "gigabytes of SRAM"
        assert machine.total == pytest.approx(1024 * l2_design_cost(2.0).total)
        with pytest.raises(ValueError):
            machine.scaled(0)


class TestBandwidthAffordable:
    def test_bigger_l2_buys_more_bandwidth(self):
        assert bandwidth_affordable(4.0) > bandwidth_affordable(1.0) > 1.0

    def test_budget_identity(self):
        """At the affordable bandwidth, both designs cost the same."""
        for l2_mb in (0.5, 1.0, 2.0, 4.0):
            bandwidth = bandwidth_affordable(l2_mb)
            assert stream_design_cost(bandwidth).total == pytest.approx(
                l2_design_cost(l2_mb).total
            )

    def test_floor_at_one(self):
        # A tiny L2 may not even cover the stream hardware: floor at 1x.
        model = CostModel(stream_buffer_cost=10.0)
        assert bandwidth_affordable(0.5, model) == 1.0

    def test_expensive_bandwidth_reduces_multiplier(self):
        cheap = bandwidth_affordable(2.0, CostModel(bandwidth_cost_per_x=0.25))
        dear = bandwidth_affordable(2.0, CostModel(bandwidth_cost_per_x=2.0))
        assert cheap > dear
