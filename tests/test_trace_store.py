"""Tests for repro.trace.store and the store-layered MissTraceCache."""

import json

import numpy as np
import pytest

from repro.caches.cache import CacheConfig, MissEventKind, MissTrace
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.sim.results import L1Summary
from repro.sim.runner import MissTraceCache, simulate_l1
from repro.trace.store import (
    TraceStore,
    result_digest,
    stats_from_dict,
    stats_to_dict,
    trace_digest,
)
from repro.workloads import get_workload


def make_miss_trace(n=64, with_pcs=False, with_writebacks=True):
    rng = np.random.default_rng(7)
    addrs = (rng.integers(0, 1 << 30, size=n) & ~np.int64(63)).astype(np.int64)
    kinds = np.full(n, int(MissEventKind.READ_MISS), dtype=np.uint8)
    if with_writebacks:
        kinds[::7] = int(MissEventKind.WRITEBACK)
    pcs = rng.integers(0, 1 << 20, size=n).astype(np.int64) if with_pcs else None
    return MissTrace(addrs, kinds, 6, pcs)


def make_summary():
    return L1Summary(
        accesses=1000,
        misses=64,
        writebacks=9,
        ifetch_misses=0,
        miss_rate=0.064,
        trace_length=1000,
        data_set_bytes=4096,
    )


class TestDigests:
    def test_stable_and_sensitive(self):
        l1 = CacheConfig.paper_l1()
        d = trace_digest("mgrid", 1.0, 0, l1)
        assert d == trace_digest("mgrid", 1.0, 0, l1)
        assert d != trace_digest("mgrid", 1.0, 1, l1)
        assert d != trace_digest("mgrid", 2.0, 0, l1)
        assert d != trace_digest("cgm", 1.0, 0, l1)
        assert d != trace_digest("mgrid", 1.0, 0, l1, keep_pcs=True)
        tiny = CacheConfig(capacity=4096, assoc=2, block_size=64)
        assert d != trace_digest("mgrid", 1.0, 0, tiny)

    def test_result_digest_depends_on_config(self):
        a = result_digest("t", StreamConfig.jouppi(n_streams=2))
        b = result_digest("t", StreamConfig.jouppi(n_streams=3))
        assert a != b
        assert a == result_digest("t", StreamConfig.jouppi(n_streams=2))


class TestTraceRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        store = TraceStore(tmp_path)
        mt, summary = make_miss_trace(), make_summary()
        store.save_trace("abc", mt, summary)
        loaded = store.load_trace("abc")
        assert loaded is not None
        got_mt, got_summary = loaded
        assert np.array_equal(got_mt.addrs, mt.addrs)
        assert np.array_equal(got_mt.kinds, mt.kinds)
        assert got_mt.block_bits == mt.block_bits
        assert got_mt.pcs is None
        assert got_summary == summary

    def test_pcs_preserved(self, tmp_path):
        store = TraceStore(tmp_path)
        mt = make_miss_trace(with_pcs=True)
        store.save_trace("abc", mt, make_summary())
        got_mt, _ = store.load_trace("abc")
        assert np.array_equal(got_mt.pcs, mt.pcs)

    def test_missing_entry_is_none(self, tmp_path):
        assert TraceStore(tmp_path).load_trace("nonesuch") is None

    def test_corrupted_file_is_none(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save_trace("abc", make_miss_trace(), make_summary())
        path = store.trace_path("abc")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.load_trace("abc") is None

    def test_garbage_file_is_none(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.trace_path("abc")
        path.parent.mkdir(parents=True)
        path.write_text("not an npz archive")
        assert store.load_trace("abc") is None

    def test_stale_version_is_none(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        store.save_trace("abc", make_miss_trace(), make_summary())
        import repro.trace.store as store_mod

        monkeypatch.setattr(
            "repro.trace.store.STORE_FORMAT_VERSION", store_mod.STORE_FORMAT_VERSION + 1
        )
        assert store.load_trace("abc") is None
        assert store.prune() == 1
        assert len(store) == 0


class TestResultRoundTrip:
    def run_stats(self):
        return StreamPrefetcher(StreamConfig.filtered(n_streams=4)).run(
            make_miss_trace(n=256)
        )

    def test_stats_dict_round_trip(self):
        stats = self.run_stats()
        assert stats_from_dict(json.loads(json.dumps(stats_to_dict(stats)))) == stats

    def test_store_round_trip(self, tmp_path):
        store = TraceStore(tmp_path)
        stats = self.run_stats()
        store.save_result("r1", stats)
        assert store.load_result("r1") == stats
        assert store.n_results() == 1

    def test_corrupted_result_is_none(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save_result("r1", self.run_stats())
        store.result_path("r1").write_text("{ not json")
        assert store.load_result("r1") is None

    def test_stale_result_version_is_none(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        store.save_result("r1", self.run_stats())
        monkeypatch.setattr("repro.trace.store.RESULT_FORMAT_VERSION", 99)
        assert store.load_result("r1") is None
        assert store.prune() == 1

    def test_clear(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save_trace("t", make_miss_trace(), make_summary())
        store.save_result("r", self.run_stats())
        store.clear()
        assert len(store) == 0
        assert store.n_results() == 0


class TestProfileRoundTrip:
    def make_profiles(self):
        from repro.analytic import profile_miss_trace

        return profile_miss_trace(make_miss_trace(n=256))

    def test_exact_round_trip(self, tmp_path):
        store = TraceStore(tmp_path)
        profiles = self.make_profiles()
        store.save_profiles("abc", profiles)
        loaded = store.load_profiles("abc")
        assert loaded is not None
        assert set(loaded) == set(profiles)
        for bs, profile in profiles.items():
            got = loaded[bs]
            assert np.array_equal(got.read_hist, profile.read_hist)
            assert np.array_equal(got.write_hist, profile.write_hist)
            assert got.cold_reads == profile.cold_reads
            assert got.cold_writes == profile.cold_writes
            assert got.writebacks == profile.writebacks
            assert got.unique_blocks == profile.unique_blocks
        assert store.n_profiles() == 1

    def test_missing_entry_is_none(self, tmp_path):
        assert TraceStore(tmp_path).load_profiles("nonesuch") is None

    def test_corrupted_file_is_none(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save_profiles("abc", self.make_profiles())
        store.profile_path("abc").write_text("not an npz archive")
        assert store.load_profiles("abc") is None

    def test_stale_version_is_none_and_pruned(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        store.save_profiles("abc", self.make_profiles())
        monkeypatch.setattr("repro.trace.store.PROFILE_FORMAT_VERSION", 99)
        assert store.load_profiles("abc") is None
        assert store.prune() == 1
        assert store.n_profiles() == 0

    def test_clear_covers_profiles(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save_profiles("abc", self.make_profiles())
        store.clear()
        assert store.n_profiles() == 0

    def test_hook_events(self, tmp_path):
        events = []
        store = TraceStore(tmp_path, hooks=events.append)
        assert store.load_profiles("abc") is None
        store.save_profiles("abc", self.make_profiles())
        assert store.load_profiles("abc") is not None
        assert events == ["profile_miss", "profile_saved", "profile_hit"]

    def test_no_temp_debris(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save_profiles("abc", self.make_profiles())
        assert not list((tmp_path / "profiles").glob("*.tmp"))


class TestStoreBackedCache:
    def test_second_process_equivalent_cache_hits_store(self, tmp_path):
        store = TraceStore(tmp_path)
        first = MissTraceCache(store=store)
        mt1, s1 = first.get("sweep", scale=0.25)
        assert len(store) == 1
        # A fresh cache (a new process, conceptually) loads, not recomputes.
        second = MissTraceCache(store=store)
        mt2, s2 = second.get("sweep", scale=0.25)
        assert second.store_hits == 1
        assert np.array_equal(mt1.addrs, mt2.addrs)
        assert np.array_equal(mt1.kinds, mt2.kinds)
        assert s1 == s2

    def test_stored_trace_equals_direct_simulation(self, tmp_path):
        store = TraceStore(tmp_path)
        MissTraceCache(store=store).get("stride", scale=0.25)
        loaded_mt, loaded_summary = MissTraceCache(store=store).get("stride", scale=0.25)
        direct_mt, direct_summary = simulate_l1(get_workload("stride", scale=0.25))
        assert np.array_equal(loaded_mt.addrs, direct_mt.addrs)
        assert np.array_equal(loaded_mt.kinds, direct_mt.kinds)
        assert loaded_summary == direct_summary

    def test_corrupt_store_falls_back_to_recompute(self, tmp_path):
        store = TraceStore(tmp_path)
        warm = MissTraceCache(store=store)
        mt1, _ = warm.get("sweep", scale=0.25)
        digest = warm.trace_key("sweep", 0.25, 0)
        path = store.trace_path(digest)
        path.write_bytes(b"corrupt")
        cold = MissTraceCache(store=store)
        mt2, _ = cold.get("sweep", scale=0.25)
        assert cold.store_hits == 0
        assert np.array_equal(mt1.addrs, mt2.addrs)
        # The recompute healed the store entry.
        assert store.load_trace(digest) is not None


class TestConcurrentWriterHardening:
    def test_temp_files_invisible_to_lookups(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save_trace("abc", make_miss_trace(), make_summary())
        (store.trace_path("zzz").parent / "zzz.npz.12345.tmp").write_bytes(b"partial")
        (tmp_path / "results").mkdir(exist_ok=True)
        (tmp_path / "results" / "rrr.json.99.tmp").write_text("{ torn")
        assert len(store) == 1  # only the real archive counts
        assert store.n_results() == 0
        assert store.load_trace("zzz") is None

    def test_clean_orphans_reaps_stale_temps(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save_trace("abc", make_miss_trace(), make_summary())
        stale = store.trace_path("x").parent / "x.npz.1.tmp"
        stale.write_bytes(b"orphan")
        import os

        old = 1e9  # well past any TTL
        os.utime(stale, (old, old))
        fresh = store.trace_path("y").parent / "y.npz.2.tmp"
        fresh.write_bytes(b"in progress")
        assert store.clean_orphans(60.0) == 1
        assert not stale.exists()
        assert fresh.exists()  # a live writer's temp survives
        assert store.load_trace("abc") is not None

    def test_open_reaps_old_orphans(self, tmp_path):
        import os

        traces = tmp_path / "traces"
        traces.mkdir(parents=True)
        orphan = traces / "dead.npz.7.tmp"
        orphan.write_bytes(b"left by a crashed writer")
        os.utime(orphan, (1e9, 1e9))
        TraceStore(tmp_path)  # opening the store sweeps it out
        assert not orphan.exists()

    def test_losing_rename_race_is_benign(self, tmp_path, monkeypatch):
        import os

        store = TraceStore(tmp_path)
        stats = TestResultRoundTrip().run_stats()
        store.save_result("r1", stats)  # the "winner" is already in place

        real_replace = os.replace

        def losing_replace(src, dst):
            # Windows-style loss: the target exists and the rename fails.
            if str(dst).endswith("r1.json"):
                raise FileExistsError(dst)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", losing_replace)
        store.save_result("r1", stats)  # must not raise: winner's bytes are ours
        assert store.load_result("r1") == stats
        # No staging debris left behind either.
        assert not list((tmp_path / "results").glob("*.tmp"))

    def test_failed_rename_without_winner_raises(self, tmp_path, monkeypatch):
        import os

        store = TraceStore(tmp_path)
        stats = TestResultRoundTrip().run_stats()

        def broken_replace(src, dst):
            raise PermissionError(dst)

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(PermissionError):
            store.save_result("r2", stats)  # no winner: the failure is real
        assert not list((tmp_path / "results").glob("*.tmp"))

    def test_parallel_saves_same_digest(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        store = TraceStore(tmp_path)
        mt, summary = make_miss_trace(), make_summary()
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: store.save_trace("same", mt, summary), range(16)))
        assert len(store) == 1
        loaded = store.load_trace("same")
        assert loaded is not None
        assert np.array_equal(loaded[0].addrs, mt.addrs)
        assert not list((tmp_path / "traces").glob("*.tmp"))


class TestStoreHooks:
    def test_events_fire_per_layer(self, tmp_path):
        events = []
        store = TraceStore(tmp_path, hooks=events.append)
        assert store.load_trace("abc") is None
        store.save_trace("abc", make_miss_trace(), make_summary())
        assert store.load_trace("abc") is not None
        assert store.load_result("r") is None
        store.save_result("r", TestResultRoundTrip().run_stats())
        assert store.load_result("r") is not None
        assert events == [
            "trace_miss", "trace_saved", "trace_hit",
            "result_miss", "result_saved", "result_hit",
        ]


class TestCacheLruBound:
    def test_eviction_keeps_recent_entries(self):
        cache = MissTraceCache(max_entries=2)
        cache.get("sweep", scale=0.125)
        cache.get("sweep", scale=0.25)
        cache.get("sweep", scale=0.5)  # evicts scale=0.125
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_get_refreshes_lru_position(self):
        cache = MissTraceCache(max_entries=2)
        a = cache.get("sweep", scale=0.125)
        cache.get("sweep", scale=0.25)
        assert cache.get("sweep", scale=0.125)[0] is a[0]  # touch: now MRU
        cache.get("sweep", scale=0.5)  # evicts scale=0.25, not 0.125
        assert cache.get("sweep", scale=0.125)[0] is a[0]
        assert cache.evictions == 1

    def test_unbounded_when_none(self):
        cache = MissTraceCache(max_entries=None)
        for scale in (0.125, 0.25, 0.5):
            cache.get("sweep", scale=scale)
        assert len(cache) == 3
        assert cache.evictions == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            MissTraceCache(max_entries=0)


class TestOrphanClockSteps:
    """`clean_orphans` ages temp files against the *filesystem* clock, so
    a wall-clock step cannot make a freshly-staged file look ancient."""

    def test_wall_clock_step_does_not_reap_fresh_temp(self, tmp_path, monkeypatch):
        import time

        store = TraceStore(tmp_path)
        fresh = store.trace_path("w").parent / "w.npz.9.tmp"
        fresh.parent.mkdir(parents=True, exist_ok=True)
        fresh.write_bytes(b"in progress")
        real_time = time.time
        # a huge backward step: under time.time() aging, `fresh` would
        # look ~1e6 seconds old and be reaped out from under its writer
        monkeypatch.setattr(time, "time", lambda: real_time() - 1e6)
        assert store.clean_orphans(60.0) == 0
        assert fresh.exists()

    def test_genuinely_old_temp_still_reaped_under_step(self, tmp_path, monkeypatch):
        import os
        import time

        store = TraceStore(tmp_path)
        stale = store.trace_path("x").parent / "x.npz.1.tmp"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_bytes(b"orphan")
        os.utime(stale, (1e9, 1e9))
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + 1e6)
        assert store.clean_orphans(60.0) == 1
        assert not stale.exists()
