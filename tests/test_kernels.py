"""Tests for repro.workloads.kernels."""

import numpy as np
import pytest

from repro.trace.events import AccessKind
from repro.workloads.kernels import (
    ascending,
    butterfly_pairs,
    clustered_indices,
    gather_addresses,
    loop,
    random_indices,
    read,
    runs_at,
    strided,
    tiled_runs,
    triangular_row_walk,
    write,
)


class TestLoop:
    def test_column_order_per_iteration(self):
        a = np.array([0, 8], dtype=np.int64)
        b = np.array([100, 108], dtype=np.int64)
        trace = loop([read(a), write(b)])
        assert [acc.addr for acc in trace] == [0, 100, 8, 108]
        assert [acc.kind for acc in trace] == [
            AccessKind.READ,
            AccessKind.WRITE,
            AccessKind.READ,
            AccessKind.WRITE,
        ]

    def test_empty_columns(self):
        assert len(loop([])) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            loop([read(np.zeros(2, dtype=np.int64)), read(np.zeros(3, dtype=np.int64))])


class TestSweeps:
    def test_ascending(self):
        assert ascending(100, 4).tolist() == [100, 108, 116, 124]

    def test_ascending_element_size(self):
        assert ascending(0, 3, element_size=16).tolist() == [0, 16, 32]

    def test_ascending_negative_n_rejected(self):
        with pytest.raises(ValueError):
            ascending(0, -1)

    def test_strided(self):
        assert strided(0, 3, 1024).tolist() == [0, 1024, 2048]

    def test_strided_negative(self):
        assert strided(4096, 3, -1024).tolist() == [4096, 3072, 2048]

    def test_strided_zero_rejected(self):
        with pytest.raises(ValueError):
            strided(0, 3, 0)


class TestRuns:
    def test_tiled_runs(self):
        addrs = tiled_runs(0, n_runs=2, run_elements=3, run_pitch_bytes=100)
        assert addrs.tolist() == [0, 8, 16, 100, 108, 116]

    def test_tiled_runs_validation(self):
        with pytest.raises(ValueError):
            tiled_runs(0, n_runs=-1, run_elements=3, run_pitch_bytes=10)
        with pytest.raises(ValueError):
            tiled_runs(0, n_runs=1, run_elements=0, run_pitch_bytes=10)

    def test_runs_at_arbitrary_starts(self):
        starts = np.array([0, 1000], dtype=np.int64)
        addrs = runs_at(starts, run_elements=2)
        assert addrs.tolist() == [0, 8, 1000, 1008]

    def test_runs_at_validation(self):
        with pytest.raises(ValueError):
            runs_at(np.array([0]), run_elements=0)


class TestIndices:
    def test_gather_addresses(self):
        indices = np.array([0, 5, 2], dtype=np.int64)
        assert gather_addresses(1000, indices).tolist() == [1000, 1040, 1016]

    def test_clustered_indices_bounded(self):
        rng = np.random.default_rng(0)
        indices = clustered_indices(1000, 5000, 64, rng)
        assert indices.min() >= 0
        assert indices.max() < 5000

    def test_clustered_indices_stay_near_centres(self):
        rng = np.random.default_rng(0)
        indices = clustered_indices(1000, 100_000, 10, rng)
        centres = np.linspace(0, 99_999, num=1000).astype(np.int64)
        assert np.abs(indices - centres).max() <= 5

    def test_clustered_indices_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            clustered_indices(-1, 10, 2, rng)
        with pytest.raises(ValueError):
            clustered_indices(1, 0, 2, rng)
        with pytest.raises(ValueError):
            clustered_indices(1, 10, 0, rng)

    def test_random_indices_bounded(self):
        rng = np.random.default_rng(0)
        indices = random_indices(1000, 50, rng)
        assert indices.min() >= 0
        assert indices.max() < 50

    def test_random_indices_deterministic(self):
        a = random_indices(10, 100, np.random.default_rng(5))
        b = random_indices(10, 100, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_random_indices_validation(self):
        with pytest.raises(ValueError):
            random_indices(10, 0, np.random.default_rng(0))


class TestTriangular:
    def test_triangular_row_walk_is_contiguous(self):
        addrs = triangular_row_walk(0, 3)
        assert addrs.tolist() == [0, 8, 16, 24, 32, 40]  # 1+2+3 elements

    def test_triangular_validation(self):
        with pytest.raises(ValueError):
            triangular_row_walk(0, -1)


class TestButterfly:
    def test_stage_zero_pairs_neighbours(self):
        first, second = butterfly_pairs(0, 8, stage=0)
        assert (second - first).tolist() == [16] * 4
        assert first.tolist() == [0, 32, 64, 96]

    def test_stage_one_pairs_at_distance_two(self):
        first, second = butterfly_pairs(0, 8, stage=1)
        assert (second - first).tolist() == [32] * 4
        assert first.tolist() == [0, 16, 64, 80]

    def test_element_size(self):
        first, second = butterfly_pairs(0, 4, stage=0, element_size=8)
        assert (second - first).tolist() == [8, 8]

    def test_stage_too_large_rejected(self):
        with pytest.raises(ValueError):
            butterfly_pairs(0, 8, stage=3)

    def test_negative_stage_rejected(self):
        with pytest.raises(ValueError):
            butterfly_pairs(0, 8, stage=-1)
