"""Tests for repro.core.config."""

import pytest

from repro.core.config import StreamConfig, StrideDetector


class TestDefaults:
    def test_paper_defaults(self):
        config = StreamConfig()
        assert config.n_streams == 10
        assert config.depth == 2
        assert config.block_size == 64
        assert not config.has_unit_filter

    def test_jouppi_constructor(self):
        config = StreamConfig.jouppi(n_streams=4)
        assert config.n_streams == 4
        assert not config.has_unit_filter
        assert config.stride_detector == StrideDetector.NONE

    def test_filtered_constructor(self):
        config = StreamConfig.filtered(entries=16)
        assert config.unit_filter_entries == 16
        assert config.has_unit_filter

    def test_non_unit_constructor(self):
        config = StreamConfig.non_unit(czone_bits=18)
        assert config.stride_detector == StrideDetector.CZONE
        assert config.czone_bits == 18
        assert config.has_unit_filter  # detector sits behind the filter


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_streams": 0},
            {"depth": 0},
            {"block_bits": -1},
            {"unit_filter_entries": -1},
            {"stride_detector": "magic"},
            {"czone_filter_entries": 0},
            {"min_delta_entries": 0},
            {"min_lead": -1},
            {"i_streams": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StreamConfig(**kwargs)

    def test_czone_smaller_than_block_rejected(self):
        with pytest.raises(ValueError):
            StreamConfig(czone_bits=3, block_bits=6, unit_filter_entries=16,
                         stride_detector=StrideDetector.CZONE)

    def test_detector_requires_unit_filter(self):
        with pytest.raises(ValueError):
            StreamConfig(stride_detector=StrideDetector.CZONE, unit_filter_entries=0)


class TestWith:
    def test_with_replaces_fields(self):
        config = StreamConfig.jouppi()
        changed = config.with_(n_streams=3)
        assert changed.n_streams == 3
        assert config.n_streams == 10  # original unchanged

    def test_with_validates(self):
        with pytest.raises(ValueError):
            StreamConfig.jouppi().with_(depth=0)

    def test_frozen(self):
        config = StreamConfig()
        with pytest.raises(Exception):
            config.n_streams = 5
