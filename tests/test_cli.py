"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "sweep"])
        assert args.workload == "sweep"
        assert args.streams == 10
        assert args.depth == 2

    def test_exhibit_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exhibit", "table99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "embar" in out
        assert "PERFECT" in out

    def test_run_sweep(self, capsys):
        assert main(["run", "sweep", "--streams", "2", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "stream hit rate" in out
        assert "100.0%" in out

    def test_run_with_filter(self, capsys):
        assert main(["run", "sweep", "--scale", "0.25", "--filter", "16"]) == 0
        assert "stream hit rate" in capsys.readouterr().out

    def test_run_with_stride_detector_auto_enables_filter(self, capsys):
        assert main(
            ["run", "stride", "--scale", "0.25", "--stride-detector", "czone"]
        ) == 0
        out = capsys.readouterr().out
        # The czone detector catches the 1KB-stride walk.
        hit_line = [l for l in out.splitlines() if "stream hit rate" in l][0]
        hit = float(hit_line.split(":")[1].strip().rstrip("%"))
        assert hit > 90

    def test_profile(self, capsys):
        assert main(["profile", "sweep", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "unit-stride pairs" in out

    def test_exhibit_with_benchmark_subset(self, capsys):
        assert main(["exhibit", "table2", "--benchmarks", "buk"]) == 0
        out = capsys.readouterr().out
        assert "buk" in out
        assert "embar" not in out

    def test_unknown_workload_errors(self):
        with pytest.raises(KeyError):
            main(["run", "nonesuch"])

    def test_compare(self, capsys):
        assert main(["compare", "stride", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "RPT" in out
        assert "OBL" in out
        assert "streams" in out

    def test_timing(self, capsys):
        assert main(["timing", "sweep", "--scale", "0.25", "--bandwidth", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "AMAT" in out

    def test_timing_l2_size_flag(self, capsys):
        assert main(["timing", "sweep", "--scale", "0.25", "--l2-kb", "256"]) == 0
        assert "256KB L2" in capsys.readouterr().out
