"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "sweep"])
        assert args.workload == "sweep"
        assert args.streams == 10
        assert args.depth == 2

    def test_exhibit_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exhibit", "table99"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workloads == ["embar", "mgrid", "cgm", "buk"]
        assert args.n_streams == list(range(1, 11))
        assert args.jobs == 1
        assert args.trace_store is None

    def test_engine_flags_on_sweep_and_exhibit(self):
        args = build_parser().parse_args(
            ["sweep", "--jobs", "4", "--trace-store", "/tmp/ts"]
        )
        assert args.jobs == 4
        assert args.trace_store == "/tmp/ts"
        args = build_parser().parse_args(
            ["exhibit", "figure3", "--jobs", "2", "--trace-store", "/tmp/ts"]
        )
        assert args.jobs == 2
        assert args.trace_store == "/tmp/ts"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "embar" in out
        assert "PERFECT" in out

    def test_run_sweep(self, capsys):
        assert main(["run", "sweep", "--streams", "2", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "stream hit rate" in out
        assert "100.0%" in out

    def test_run_with_filter(self, capsys):
        assert main(["run", "sweep", "--scale", "0.25", "--filter", "16"]) == 0
        assert "stream hit rate" in capsys.readouterr().out

    def test_run_with_stride_detector_auto_enables_filter(self, capsys):
        assert main(
            ["run", "stride", "--scale", "0.25", "--stride-detector", "czone"]
        ) == 0
        out = capsys.readouterr().out
        # The czone detector catches the 1KB-stride walk.
        hit_line = [l for l in out.splitlines() if "stream hit rate" in l][0]
        hit = float(hit_line.split(":")[1].strip().rstrip("%"))
        assert hit > 90

    def test_profile(self, capsys):
        assert main(["profile", "sweep", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "unit-stride pairs" in out

    def test_exhibit_with_benchmark_subset(self, capsys):
        assert main(["exhibit", "table2", "--benchmarks", "buk"]) == 0
        out = capsys.readouterr().out
        assert "buk" in out
        assert "embar" not in out

    def test_unknown_workload_errors(self):
        with pytest.raises(KeyError):
            main(["run", "nonesuch"])

    def test_compare(self, capsys):
        assert main(["compare", "stride", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "RPT" in out
        assert "OBL" in out
        assert "streams" in out

    def test_profile_locality(self, capsys):
        assert main(["profile", "sweep", "--scale", "0.25", "--locality"]) == 0
        out = capsys.readouterr().out
        assert "stack-distance" in out
        assert "FA LRU" in out
        assert "64 KB" in out

    def test_compare_analytic(self, capsys):
        # A pure sweep is screened out entirely: every ladder entry is a
        # certain miss, so the search simulates nothing.
        assert main(["compare", "sweep", "--scale", "0.25", "--analytic"]) == 0
        out = capsys.readouterr().out
        assert "analytic est %" in out
        assert "screened out" in out
        assert "min matching L2 : >4 MB" in out
        assert "simulated       : 0/42" in out

    def test_compare_analytic_trace_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        args = ["compare", "sweep", "--scale", "0.25", "--analytic",
                "--trace-store", store_dir]
        assert main(args) == 0
        capsys.readouterr()
        from repro.trace.store import TraceStore

        assert TraceStore(store_dir).n_profiles() == 1
        assert main(args) == 0  # second run loads trace + profiles

    def test_check_replay_analytic(self, capsys):
        assert main(["check", "--replay", "analytic:3"]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_timing(self, capsys):
        assert main(["timing", "sweep", "--scale", "0.25", "--bandwidth", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "AMAT" in out

    def test_timing_l2_size_flag(self, capsys):
        assert main(["timing", "sweep", "--scale", "0.25", "--l2-kb", "256"]) == 0
        assert "256KB L2" in capsys.readouterr().out


class TestSweepCommand:
    ARGS = [
        "sweep",
        "--workloads", "sweep", "stride",
        "--n-streams", "1", "2",
        "--scale", "0.25",
    ]

    def test_sweep_renders_matrix(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "hit% @1" in out
        assert "hit% @2" in out
        assert "stride" in out
        assert "cells/s" in out

    def test_sweep_populates_trace_store(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(self.ARGS + ["--trace-store", str(store_dir)]) == 0
        from repro.trace.store import TraceStore

        store = TraceStore(store_dir)
        assert len(store) == 2  # one trace per workload
        assert store.n_results() == 4  # one per grid cell
        # Second invocation is served from the store.
        assert main(self.ARGS + ["--trace-store", str(store_dir)]) == 0
        assert "store" in capsys.readouterr().out

    def test_sweep_reports_failed_cells(self, capsys):
        assert main(["sweep", "--workloads", "nonesuch", "--n-streams", "1"]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert "nonesuch" in captured.err
