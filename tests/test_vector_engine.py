"""Vectorized batch replay engine (repro.sim.vector) tests.

Engine dispatch, support-envelope gating, batch-boundary edge cases
(empty/single-event traces, runs crossing set boundaries), bit-identity
against the scalar engines, and the cached trace kind flags.
"""

import random
from dataclasses import replace

import numpy as np
import pytest

from repro.caches.cache import Cache, CacheConfig, MissEventKind, MissTrace
from repro.caches.secondary import simulate_secondary
from repro.check import differ
from repro.check import invariants as _inv
from repro.core.config import StreamConfig, StrideDetector
from repro.core.prefetcher import StreamPrefetcher
from repro.sim import vector
from repro.trace.events import AccessKind, Trace


def _trace(addrs, kinds=None):
    addrs = np.asarray(addrs, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(len(addrs), dtype=np.uint8)
    return Trace(addrs, np.asarray(kinds, dtype=np.uint8))


def _miss_trace(addrs, kinds=None, block_bits=6):
    addrs = np.asarray(addrs, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(len(addrs), dtype=np.uint8)
    return MissTrace(addrs, np.asarray(kinds, dtype=np.uint8), block_bits)


def _wb_config(**overrides):
    base = dict(
        capacity=4 * 1024,
        assoc=2,
        block_size=32,
        policy="lru",
        write_back=True,
        write_allocate=True,
        seed=7,
    )
    base.update(overrides)
    return CacheConfig(**base)


def _assert_l1_identical(config, trace):
    vectorized = vector.vector_simulate_cache(config, trace)
    assert vectorized is not None
    vec_trace, vec_stats = vectorized
    scalar = Cache(config)
    ref_trace = scalar.simulate(trace)
    assert np.array_equal(vec_trace.addrs, ref_trace.addrs)
    assert np.array_equal(vec_trace.kinds, ref_trace.kinds)
    assert vec_stats == scalar.stats


class TestEngineResolution:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(vector.ENGINE_ENV_VAR, raising=False)
        assert vector.resolve_engine() == vector.ENGINE_VECTOR

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(vector.ENGINE_ENV_VAR, vector.ENGINE_SCALAR)
        assert vector.resolve_engine() == vector.ENGINE_SCALAR

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(vector.ENGINE_ENV_VAR, vector.ENGINE_SCALAR)
        assert vector.resolve_engine(vector.ENGINE_VECTOR) == vector.ENGINE_VECTOR

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown engine"):
            vector.resolve_engine("turbo")
        monkeypatch.setenv(vector.ENGINE_ENV_VAR, "warp")
        with pytest.raises(ValueError, match="unknown engine"):
            vector.resolve_engine()


class TestL1Gating:
    def test_write_through_falls_back(self):
        config = _wb_config(write_back=False)
        assert vector.vector_simulate_cache(config, _trace([0, 32])) is None
        assert not vector.cache_vector_supported(config, _trace([0]))

    def test_no_write_allocate_falls_back(self):
        config = _wb_config(write_allocate=False)
        assert vector.vector_simulate_cache(config, _trace([0, 32])) is None

    def test_pc_carrying_trace_falls_back(self):
        addrs = np.asarray([0, 32], dtype=np.int64)
        trace = Trace(
            addrs,
            np.zeros(2, dtype=np.uint8),
            pcs=np.asarray([4, 8], dtype=np.int64),
        )
        assert vector.vector_simulate_cache(_wb_config(), trace) is None

    def test_repro_check_stand_down(self, monkeypatch):
        monkeypatch.setattr(_inv, "ENABLED", True)
        config = _wb_config()
        trace = _trace([0, 32, 64])
        assert vector.vector_simulate_cache(config, trace) is None
        assert not vector.cache_vector_supported(config, trace)
        # force=True (the differ's escape hatch) keeps the engine live.
        assert vector.vector_simulate_cache(config, trace, force=True) is not None


class TestL1EdgeCases:
    def test_empty_trace(self):
        vectorized = vector.vector_simulate_cache(_wb_config(), _trace([]))
        assert vectorized is not None
        miss_trace, stats = vectorized
        assert len(miss_trace) == 0
        assert stats.accesses == 0
        assert stats.misses == 0

    def test_single_access(self):
        config = _wb_config()
        _assert_l1_identical(config, _trace([0x1234]))
        vec_trace, stats = vector.vector_simulate_cache(config, _trace([0x1234]))
        assert stats.accesses == 1 and stats.misses == 1 and stats.hits == 0
        assert vec_trace.kinds.tolist() == [int(MissEventKind.READ_MISS)]

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_run_crossing_set_boundary(self, policy):
        # A unit-stride walk whose same-set runs are length one but whose
        # block runs wrap across the set index boundary; consecutive
        # same-block accesses must still collapse, block transitions not.
        config = _wb_config(policy=policy, capacity=1024, assoc=1, block_size=32)
        step = 8
        addrs = [i * step for i in range(600)]  # crosses every set repeatedly
        kinds = [int(AccessKind.WRITE) if i % 5 == 0 else 0 for i in range(600)]
        _assert_l1_identical(config, _trace(addrs, kinds))

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_dirty_run_collapse(self, policy):
        # Reads then a write inside one same-block run: the run's install
        # must be dirty and produce exactly one eventual write-back.
        config = _wb_config(policy=policy, capacity=64, assoc=1, block_size=32)
        addrs = [0, 4, 8, 12, 64, 0]  # write at 8; 64 evicts set 0... (1 set? no)
        kinds = [0, 0, int(AccessKind.WRITE), 0, 0, 0]
        _assert_l1_identical(config, _trace(addrs, kinds))

    def test_ifetch_treated_as_read(self):
        config = _wb_config()
        addrs = [i * 32 for i in range(40)] * 2
        kinds = [int(AccessKind.IFETCH) if i % 3 == 0 else 0 for i in range(80)]
        _assert_l1_identical(config, _trace(addrs, kinds))

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_random_traces_identical(self, policy):
        rng = random.Random(1234)
        for seed in range(3):
            config = replace(
                differ.random_cache_config(random.Random(seed)),
                policy=policy,
                write_back=True,
                write_allocate=True,
            )
            trace = differ.random_trace(rng, 1500)
            _assert_l1_identical(config, trace)

    def test_seed_reproducibility(self):
        # Two invocations of the vector engine consume fresh, identical
        # RNG streams — bit-equal outputs, no hidden state.
        config = _wb_config(policy="random", seed=99)
        trace = differ.random_trace(random.Random(5), 2000)
        a_trace, a_stats = vector.vector_simulate_cache(config, trace)
        b_trace, b_stats = vector.vector_simulate_cache(config, trace)
        assert np.array_equal(a_trace.addrs, b_trace.addrs)
        assert np.array_equal(a_trace.kinds, b_trace.kinds)
        assert a_stats == b_stats


class TestStreamReplay:
    def _flat_config(self, **overrides):
        base = StreamConfig.filtered(n_streams=4)
        return replace(base, **overrides) if overrides else base

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(partitioned=True, i_streams=2),
            dict(lookup_depth=2),
            dict(min_lead=1),
            dict(stride_detector=StrideDetector.CZONE),
        ],
    )
    def test_unsupported_configs_fall_back(self, overrides):
        config = self._flat_config(**overrides)
        assert vector.vector_replay_streams(config, _miss_trace([0])) is None
        assert not vector.streams_vector_supported(config)
        # The dispatcher still answers, through the scalar prefetcher.
        stats = vector.replay_streams(config, _miss_trace([0, 64, 128]))
        assert stats == StreamPrefetcher(config).run(_miss_trace([0, 64, 128]))

    def test_block_bits_mismatch_raises(self):
        config = self._flat_config()
        with pytest.raises(ValueError, match="block_bits"):
            vector.vector_replay_streams(config, _miss_trace([0], block_bits=7))

    def test_empty_and_single_event(self):
        config = self._flat_config()
        for mt in (_miss_trace([]), _miss_trace([0x1000])):
            vec = vector.vector_replay_streams(config, mt)
            ref = StreamPrefetcher(config).run(mt)
            assert vec == ref

    def test_mixed_writeback_ifetch_stream(self):
        # Sequential run, an ifetch miss inside it, then a write-back
        # invalidating a prefetched block mid-window.
        config = self._flat_config()
        block = 64
        addrs = [i * block for i in range(8)]
        kinds = [int(MissEventKind.READ_MISS)] * 8
        kinds[3] = int(MissEventKind.IFETCH_MISS)
        addrs.append(5 * block)  # invalidate an in-window block
        kinds.append(int(MissEventKind.WRITEBACK))
        addrs += [i * block for i in range(8, 14)]
        kinds += [int(MissEventKind.READ_MISS)] * 6
        mt = _miss_trace(addrs, kinds)
        vec = vector.vector_replay_streams(config, mt)
        ref = StreamPrefetcher(config).run(mt)
        assert vec == ref
        assert vec.writebacks == 1 and vec.ifetch_misses == 1

    @pytest.mark.parametrize("n_streams,depth", [(1, 1), (4, 4), (10, 2)])
    def test_random_miss_traces_identical(self, n_streams, depth):
        config = StreamConfig.jouppi(n_streams=n_streams, depth=depth)
        for seed in range(3):
            mt = differ.random_miss_trace(random.Random(seed), 1200)
            vec = vector.vector_replay_streams(config, mt)
            ref = StreamPrefetcher(config).run(mt)
            assert vec == ref

    def test_repro_check_stand_down(self, monkeypatch):
        monkeypatch.setattr(_inv, "ENABLED", True)
        config = self._flat_config()
        mt = _miss_trace([0, 64])
        assert vector.vector_replay_streams(config, mt) is None
        assert vector.vector_replay_streams(config, mt, force=True) is not None


class TestSecondaryProbe:
    def test_unsupported_policy_domain_falls_back(self):
        assert (
            vector.vector_simulate_secondary(
                _miss_trace([0]), _wb_config(write_back=False)
            )
            is None
        )

    def test_bad_sample_every_raises(self):
        with pytest.raises(ValueError, match="sample_every"):
            vector.vector_simulate_secondary(
                _miss_trace([0]), _wb_config(), sample_every=0
            )

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize("sample_every", [1, 4])
    def test_identical_to_scalar(self, policy, sample_every):
        config = _wb_config(policy=policy, capacity=16 * 1024, assoc=2, block_size=64)
        for seed in range(3):
            mt = differ.random_miss_trace(random.Random(seed), 1500)
            vec = vector.vector_simulate_secondary(mt, config, sample_every=sample_every)
            ref = simulate_secondary(mt, config, sample_every=sample_every)
            assert vec == ref

    def test_empty_miss_trace(self):
        config = _wb_config()
        vec = vector.vector_simulate_secondary(_miss_trace([]), config)
        ref = simulate_secondary(_miss_trace([]), config)
        assert vec == ref


class TestCachedKindFlags:
    def test_trace_has_ifetch(self):
        assert not _trace([0, 4]).has_ifetch
        assert _trace([0, 4], [0, int(AccessKind.IFETCH)]).has_ifetch

    def test_miss_trace_flags(self):
        mt = _miss_trace(
            [0, 64, 128],
            [
                int(MissEventKind.READ_MISS),
                int(MissEventKind.WRITEBACK),
                int(MissEventKind.IFETCH_MISS),
            ],
        )
        assert mt.has_writebacks and mt.has_ifetch_misses
        plain = _miss_trace([0, 64])
        assert not plain.has_writebacks and not plain.has_ifetch_misses

    def test_flags_cached_per_instance(self):
        mt = _miss_trace([0, 64])
        assert mt.has_writebacks is mt.has_writebacks  # cached bool, no rescan
        assert "_kind_flags" in mt.__dict__
