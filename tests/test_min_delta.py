"""Tests for repro.core.min_delta (the Section 7 alternative scheme)."""

import pytest

from repro.core.min_delta import MinDeltaDetector


def make_detector(entries=4, block_bits=6, allow_negative=True, max_stride_blocks=1 << 20):
    return MinDeltaDetector(
        entries=entries,
        block_bits=block_bits,
        allow_negative=allow_negative,
        max_stride_blocks=max_stride_blocks,
    )


class TestMinDelta:
    def test_empty_history_returns_nothing(self):
        det = make_detector()
        assert det.observe(1 << 20) is None

    def test_second_miss_uses_delta_as_stride(self):
        det = make_detector()
        det.observe(1 << 20)
        hit = det.observe((1 << 20) + 1024)
        assert hit is not None
        assert hit.stride_bytes == 1024
        assert hit.stride_blocks == 16

    def test_minimum_distance_entry_chosen(self):
        det = make_detector()
        det.observe(0)
        det.observe(1 << 20)
        hit = det.observe((1 << 20) + 2048)  # closest to the second entry
        assert hit.stride_bytes == 2048

    def test_negative_delta_chosen_when_closest(self):
        det = make_detector()
        det.observe(10_000 * 64)
        hit = det.observe(9_000 * 64)
        assert hit.stride_blocks == -1000

    def test_negative_rejected_when_disabled(self):
        det = make_detector(allow_negative=False)
        det.observe(10_000 * 64)
        assert det.observe(9_000 * 64) is None

    def test_sub_block_delta_rejected(self):
        det = make_detector()
        det.observe(1000)
        assert det.observe(1008) is None

    def test_zero_delta_ignored(self):
        det = make_detector()
        det.observe(4096)
        det.observe(4096)
        # Only the duplicate in history; no non-zero delta exists.
        assert det.history().count(4096) == 2

    def test_stride_cap(self):
        det = make_detector(max_stride_blocks=10)
        det.observe(0)
        assert det.observe(1 << 20) is None  # 16384 blocks away

    def test_history_bounded(self):
        det = make_detector(entries=2)
        for addr in (0, 1 << 10, 1 << 20):
            det.observe(addr)
        assert len(det.history()) == 2
        assert det.history() == [1 << 10, 1 << 20]

    def test_start_block_one_stride_ahead(self):
        det = make_detector()
        det.observe(1 << 20)
        hit = det.observe((1 << 20) + 4096)
        assert hit.start_block == (((1 << 20) + 4096) >> 6) + 64

    def test_validation(self):
        with pytest.raises(ValueError):
            make_detector(entries=0)
        with pytest.raises(ValueError):
            make_detector(max_stride_blocks=0)

    def test_counters(self):
        det = make_detector()
        det.observe(0)
        det.observe(1 << 16)
        assert det.observations == 2
        assert det.hits == 1
