"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.cache import Cache, CacheConfig
from repro.caches.replacement import make_policy
from repro.core.bank import Lookup, StreamBufferBank
from repro.core.config import StreamConfig
from repro.core.filters import UnitStrideFilter
from repro.core.lengths import bucket_of
from repro.core.prefetcher import StreamPrefetcher
from repro.core.stride_fsm import StrideFsm
from repro.mem.address import AddressSpace
from repro.trace.compress import compress_consecutive
from repro.trace.events import Trace
from repro.trace.sampling import TimeSampler

# Bounded address universe keeps the state spaces meaningful: a handful
# of sets and enough aliasing to exercise every eviction path.
block_ids = st.integers(min_value=0, max_value=255)
block_seqs = st.lists(block_ids, min_size=1, max_size=300)
addr_seqs = st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300)


class TestCacheInvariants:
    @given(blocks=block_seqs, policy=st.sampled_from(["lru", "fifo", "random"]))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_geometry(self, blocks, policy):
        config = CacheConfig(capacity=512, assoc=2, block_size=64, policy=policy)
        cache = Cache(config)
        for block in blocks:
            cache.access_block(block, is_write=block % 3 == 0)
        resident = cache.resident_blocks()
        assert len(resident) <= config.n_sets * config.assoc
        assert len(set(resident)) == len(resident)  # no duplicates

    @given(blocks=block_seqs, policy=st.sampled_from(["lru", "fifo", "random"]))
    @settings(max_examples=60, deadline=None)
    def test_last_accessed_block_always_resident(self, blocks, policy):
        cache = Cache(CacheConfig(capacity=512, assoc=2, block_size=64, policy=policy))
        for block in blocks:
            cache.access_block(block)
            assert cache.probe(block * 64)

    @given(blocks=block_seqs)
    @settings(max_examples=60, deadline=None)
    def test_stats_identities(self, blocks):
        cache = Cache(CacheConfig(capacity=512, assoc=2, block_size=64, policy="lru"))
        for block in blocks:
            cache.access_block(block)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.read_misses + stats.write_misses == stats.misses
        assert stats.writebacks <= stats.misses  # at most one per install

    @given(blocks=block_seqs)
    @settings(max_examples=40, deadline=None)
    def test_inlined_lru_matches_reference_policy(self, blocks):
        """The cache's inlined LRU must agree with the standalone policy."""
        config = CacheConfig(capacity=256, assoc=4, block_size=64, policy="lru")
        cache = Cache(config)
        references = [make_policy("lru", 4) for _ in range(config.n_sets)]
        for block in blocks:
            set_index = block % config.n_sets
            reference = references[set_index]
            expect_hit = block in reference
            hit, _ = cache.access_block(block)
            assert hit == expect_hit
            if expect_hit:
                reference.touch(block)
            else:
                reference.insert(block)

    @given(blocks=block_seqs)
    @settings(max_examples=40, deadline=None)
    def test_writeback_only_for_previously_written_blocks(self, blocks):
        cache = Cache(CacheConfig(capacity=256, assoc=2, block_size=64, policy="lru"))
        written = set()
        for block in blocks:
            is_write = block % 2 == 0
            _, wb = cache.access_block(block, is_write)
            if is_write:
                written.add(block)
            if wb is not None:
                assert wb in written


class TestCompressionProperty:
    @given(addrs=addr_seqs)
    @settings(max_examples=40, deadline=None)
    def test_compression_preserves_misses(self, addrs):
        trace = Trace.uniform(np.asarray(addrs, dtype=np.int64))
        config = CacheConfig(capacity=512, assoc=2, block_size=64, policy="lru")
        full = Cache(config)
        full.simulate(trace)
        compressed = compress_consecutive(trace, AddressSpace())
        partial = Cache(config)
        partial.simulate(compressed.trace, weights=compressed.weights)
        assert full.stats.misses == partial.stats.misses
        assert full.stats.accesses == partial.stats.accesses
        assert int(compressed.weights.sum()) == len(trace)
        assert compressed.weights.min() >= 1


class TestStreamBankInvariants:
    @given(blocks=block_seqs)
    @settings(max_examples=60, deadline=None)
    def test_bandwidth_accounting_identity(self, blocks):
        bank = StreamBufferBank(n_streams=3, depth=2)
        for block in blocks:
            if bank.lookup(block) is Lookup.MISS:
                bank.allocate(block + 1, 1)
        bank.finalize()
        assert bank.prefetches_used == bank.hits
        assert 0 <= bank.prefetches_useless <= bank.prefetches_issued
        # After finalize, every stream is drained.
        assert all(len(stream) == 0 for stream in bank.streams())

    @given(blocks=block_seqs)
    @settings(max_examples=60, deadline=None)
    def test_lru_order_is_a_permutation(self, blocks):
        bank = StreamBufferBank(n_streams=4, depth=2)
        for block in blocks:
            if bank.lookup(block) is Lookup.MISS:
                bank.allocate(block + 1, 1)
            assert sorted(bank.lru_order()) == [0, 1, 2, 3]

    @given(blocks=block_seqs)
    @settings(max_examples=60, deadline=None)
    def test_length_histogram_conserves_hits(self, blocks):
        bank = StreamBufferBank(n_streams=2, depth=2)
        for block in blocks:
            if bank.lookup(block) is Lookup.MISS:
                bank.allocate(block + 1, 1)
        bank.finalize()
        assert bank.lengths.total_hits == bank.hits


class TestPrefetcherInvariants:
    @given(
        blocks=block_seqs,
        entries=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_filtered_never_issues_more_than_unfiltered(self, blocks, entries):
        from repro.caches.cache import MissTrace

        arr = np.asarray(blocks, dtype=np.int64) << 6
        kinds = np.zeros(len(blocks), dtype=np.uint8)
        mt = MissTrace(arr, kinds, 6)
        plain = StreamPrefetcher(StreamConfig.jouppi(n_streams=3)).run(mt)
        filtered = StreamPrefetcher(
            StreamConfig.filtered(n_streams=3, entries=entries)
        ).run(MissTrace(arr, kinds, 6))
        assert filtered.prefetches_issued <= plain.prefetches_issued
        assert filtered.allocations <= plain.allocations

    @given(blocks=block_seqs)
    @settings(max_examples=40, deadline=None)
    def test_stats_identities(self, blocks):
        from repro.caches.cache import MissTrace

        arr = np.asarray(blocks, dtype=np.int64) << 6
        mt = MissTrace(arr, np.zeros(len(blocks), dtype=np.uint8), 6)
        stats = StreamPrefetcher(StreamConfig.jouppi(n_streams=3)).run(mt)
        assert stats.demand_misses == len(blocks)
        assert stats.stream_hits + stats.stream_misses == stats.demand_misses
        assert stats.prefetches_used <= stats.prefetches_issued
        assert 0.0 <= stats.hit_rate <= 1.0


class TestFilterInvariants:
    @given(blocks=block_seqs, entries=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, blocks, entries):
        filt = UnitStrideFilter(entries)
        for block in blocks:
            filt.observe(block)
            assert len(filt) <= entries

    @given(blocks=block_seqs)
    @settings(max_examples=60, deadline=None)
    def test_hit_implies_prior_predecessor_miss(self, blocks):
        filt = UnitStrideFilter(64)  # big enough to never evict here
        seen = set()
        for block in blocks:
            allocated = filt.observe(block)
            if allocated:
                assert block - 1 in seen
            seen.add(block)


class TestFsmProperty:
    @given(
        start=st.integers(min_value=0, max_value=1 << 20),
        stride=st.integers(min_value=-4096, max_value=4096).filter(lambda s: s != 0),
    )
    @settings(max_examples=80, deadline=None)
    def test_three_strided_refs_always_verify(self, start, stride):
        fsm = StrideFsm()
        assert fsm.observe(start) is None
        assert fsm.observe(start + stride) is None
        assert fsm.observe(start + 2 * stride) == stride


class TestSamplerProperty:
    @given(
        n=st.integers(min_value=0, max_value=5000),
        on=st.integers(min_value=1, max_value=50),
        off=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_sampled_length_matches_mask(self, n, on, off):
        sampler = TimeSampler(on_window=on, off_window=off)
        trace = Trace.uniform(np.arange(n, dtype=np.int64))
        sampled = sampler.sample(trace)
        expected = int(sampler.mask(n).sum()) if n else 0
        assert len(sampled) == expected
        # Sampling keeps at least the ratio's floor share of accesses.
        assert len(sampled) >= int(n * sampler.sampling_ratio) - on


class TestBucketProperty:
    @given(length=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_every_length_has_exactly_one_bucket(self, length):
        low, high = bucket_of(length)
        assert low <= length
        if high:
            assert length <= high
