"""Tests for repro.mem.allocator."""

import pytest

from repro.mem.allocator import Allocation, Arena


class TestAllocation:
    def test_end_and_contains(self):
        alloc = Allocation(name="a", base=100, size=50)
        assert alloc.end == 150
        assert alloc.contains(100)
        assert alloc.contains(149)
        assert not alloc.contains(150)
        assert not alloc.contains(99)


class TestArena:
    def test_allocations_do_not_overlap(self):
        arena = Arena()
        a = arena.alloc("a", 100)
        b = arena.alloc("b", 100)
        assert a.end <= b.base

    def test_guard_gap_separates_allocations(self):
        arena = Arena(guard=64)
        a = arena.alloc("a", 64)
        b = arena.alloc("b", 64)
        assert b.base - a.end >= 64

    def test_alignment(self):
        arena = Arena(alignment=64)
        a = arena.alloc("a", 10)
        b = arena.alloc("b", 10)
        assert a.base % 64 == 0
        assert b.base % 64 == 0

    def test_alloc_words(self):
        arena = Arena()
        a = arena.alloc_words("a", 10, word_size=8)
        assert a.size == 80

    def test_duplicate_name_rejected(self):
        arena = Arena()
        arena.alloc("a", 10)
        with pytest.raises(ValueError):
            arena.alloc("a", 10)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Arena().alloc("a", 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Arena().alloc("a", -5)

    def test_lookup_by_name(self):
        arena = Arena()
        a = arena.alloc("a", 10)
        assert arena["a"] is a
        assert "a" in arena
        assert "b" not in arena

    def test_find_by_address(self):
        arena = Arena()
        a = arena.alloc("a", 100)
        b = arena.alloc("b", 100)
        assert arena.find(a.base) is a
        assert arena.find(b.base + 50) is b

    def test_find_miss_raises(self):
        arena = Arena()
        arena.alloc("a", 100)
        with pytest.raises(KeyError):
            arena.find(0)

    def test_total_bytes(self):
        arena = Arena()
        arena.alloc("a", 100)
        arena.alloc("b", 200)
        assert arena.total_bytes == 300

    def test_footprint_includes_padding(self):
        arena = Arena(alignment=64, guard=64)
        arena.alloc("a", 1)
        assert arena.footprint_bytes >= 1

    def test_allocations_property_is_copy(self):
        arena = Arena()
        arena.alloc("a", 10)
        listing = arena.allocations
        listing.clear()
        assert len(arena.allocations) == 1

    def test_base_respected(self):
        arena = Arena(base=1 << 24)
        a = arena.alloc("a", 10)
        assert a.base >= 1 << 24

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Arena(alignment=0)
        with pytest.raises(ValueError):
            Arena(guard=-1)
        with pytest.raises(ValueError):
            Arena(base=-1)
