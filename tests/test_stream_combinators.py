"""Tests for repro.trace.stream (trace combinators)."""

import pytest

from repro.trace.events import AccessKind, Trace
from repro.trace.stream import blocked_interleave, interleave, repeat, take


def addrs(trace):
    return [a.addr for a in trace]


class TestInterleave:
    def test_round_robin(self):
        a = Trace.uniform([1, 2, 3])
        b = Trace.uniform([10, 20, 30])
        assert addrs(interleave([a, b])) == [1, 10, 2, 20, 3, 30]

    def test_shorter_trace_drops_out(self):
        a = Trace.uniform([1, 2, 3])
        b = Trace.uniform([10])
        assert addrs(interleave([a, b])) == [1, 10, 2, 3]

    def test_single_trace_passthrough(self):
        a = Trace.uniform([1, 2])
        assert interleave([a]) == a

    def test_empty_inputs(self):
        assert len(interleave([])) == 0
        assert len(interleave([Trace.empty(), Trace.empty()])) == 0

    def test_kinds_preserved(self):
        a = Trace.uniform([1], AccessKind.WRITE)
        b = Trace.uniform([2], AccessKind.READ)
        out = interleave([a, b])
        assert out[0].kind is AccessKind.WRITE
        assert out[1].kind is AccessKind.READ


class TestBlockedInterleave:
    def test_granule_groups_runs(self):
        a = Trace.uniform([1, 2, 3, 4])
        b = Trace.uniform([10, 20, 30, 40])
        out = blocked_interleave([a, b], granule=2)
        assert addrs(out) == [1, 2, 10, 20, 3, 4, 30, 40]

    def test_partial_final_granule(self):
        a = Trace.uniform([1, 2, 3])
        b = Trace.uniform([10])
        out = blocked_interleave([a, b], granule=2)
        assert addrs(out) == [1, 2, 10, 3]

    def test_total_length_preserved(self):
        a = Trace.uniform(list(range(7)))
        b = Trace.uniform(list(range(100, 105)))
        out = blocked_interleave([a, b], granule=3)
        assert len(out) == 12

    def test_invalid_granule(self):
        with pytest.raises(ValueError):
            blocked_interleave([Trace.uniform([1])], granule=0)


class TestRepeat:
    def test_repeat_twice(self):
        assert addrs(repeat(Trace.uniform([1, 2]), 2)) == [1, 2, 1, 2]

    def test_repeat_zero(self):
        assert len(repeat(Trace.uniform([1]), 0)) == 0

    def test_repeat_empty(self):
        assert len(repeat(Trace.empty(), 5)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            repeat(Trace.uniform([1]), -1)


class TestTake:
    def test_take_prefix(self):
        assert addrs(take(Trace.uniform([1, 2, 3]), 2)) == [1, 2]

    def test_take_more_than_length(self):
        assert addrs(take(Trace.uniform([1, 2]), 10)) == [1, 2]

    def test_take_zero(self):
        assert len(take(Trace.uniform([1]), 0)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            take(Trace.uniform([1]), -1)
