"""Tests for repro.reporting.tables and repro.reporting.figures."""

import pytest

from repro.reporting.figures import render_bars, render_series
from repro.reporting.tables import format_cell, render_table


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_and_str(self):
        assert format_cell(42) == "42"
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_basic_structure(self):
        out = render_table(["name", "value"], [["a", 1.0], ["bb", 2.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "bb" in lines[4]

    def test_numeric_columns_right_aligned(self):
        out = render_table(["n", "v"], [["a", 5], ["b", 123]])
        lines = out.splitlines()
        assert lines[-1].endswith("123")
        assert lines[-2].endswith("  5")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_none_cells_render_dash(self):
        out = render_table(["a"], [[None]])
        assert "-" in out.splitlines()[-1]


class TestRenderSeries:
    def test_contains_legend_and_axis(self):
        out = render_series(
            {"one": {1.0: 10.0, 2.0: 20.0}},
            y_label="hit %",
            x_label="streams",
        )
        assert "legend" in out
        assert "one" in out
        assert "streams" in out

    def test_multiple_series_distinct_marks(self):
        out = render_series({"a": {1.0: 5.0}, "b": {1.0: 10.0}})
        assert "o=a" in out
        assert "x=b" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series({})
        with pytest.raises(ValueError):
            render_series({"a": {}})

    def test_y_max_clamps(self):
        out = render_series({"a": {1.0: 50.0}}, y_max=100.0, height=8)
        assert "100.0" in out

    def test_title(self):
        out = render_series({"a": {1.0: 1.0}}, title="My chart")
        assert out.splitlines()[0] == "My chart"


class TestRenderBars:
    def test_bar_lengths_proportional(self):
        out = render_bars({"a": 50.0, "b": 100.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_values_shown(self):
        out = render_bars({"x": 12.3})
        assert "12.3%" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_bars({})
