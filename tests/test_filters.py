"""Tests for repro.core.filters (unit-stride allocation filter, Section 6)."""

import pytest

from repro.core.filters import UnitStrideFilter


class TestAllocationPolicy:
    def test_isolated_miss_does_not_allocate(self):
        filt = UnitStrideFilter(8)
        assert not filt.observe(100)
        assert filt.misses == 1

    def test_consecutive_pair_allocates(self):
        filt = UnitStrideFilter(8)
        assert not filt.observe(100)  # records expectation of 101
        assert filt.observe(101)  # pattern 100, 101 confirmed
        assert filt.hits == 1

    def test_non_consecutive_pair_does_not_allocate(self):
        filt = UnitStrideFilter(8)
        filt.observe(100)
        assert not filt.observe(102)

    def test_entry_freed_after_detection(self):
        filt = UnitStrideFilter(8)
        filt.observe(100)
        filt.observe(101)
        # The 101-entry was consumed; a new 101 miss must re-prime.
        assert not filt.observe(101)

    def test_descending_pattern_not_matched(self):
        """The unit filter only detects ascending consecutive pairs."""
        filt = UnitStrideFilter(8)
        filt.observe(101)
        assert not filt.observe(100)

    def test_interleaved_patterns_detected(self):
        filt = UnitStrideFilter(8)
        assert not filt.observe(100)
        assert not filt.observe(500)
        assert filt.observe(101)
        assert filt.observe(501)


class TestCapacity:
    def test_oldest_entry_evicted_when_full(self):
        filt = UnitStrideFilter(2)
        filt.observe(100)  # expects 101
        filt.observe(200)  # expects 201
        filt.observe(300)  # expects 301; evicts the 101 expectation
        assert filt.contents() == [201, 301]
        assert filt.observe(201)
        assert not filt.observe(101)

    def test_len_tracks_entries(self):
        filt = UnitStrideFilter(4)
        filt.observe(1)
        filt.observe(10)
        assert len(filt) == 2

    def test_contents_ordering(self):
        filt = UnitStrideFilter(4)
        filt.observe(1)
        filt.observe(10)
        assert filt.contents() == [2, 11]

    def test_repeat_miss_refreshes_expectation(self):
        filt = UnitStrideFilter(2)
        filt.observe(100)  # expects 101
        filt.observe(200)  # expects 201
        filt.observe(100)  # refreshes 101 to newest
        filt.observe(300)  # evicts oldest = 201
        assert filt.observe(101)
        assert not filt.observe(201)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            UnitStrideFilter(0)


class TestCounters:
    def test_hit_and_miss_counts(self):
        filt = UnitStrideFilter(8)
        filt.observe(1)
        filt.observe(2)
        filt.observe(50)
        assert filt.hits == 1
        assert filt.misses == 2
