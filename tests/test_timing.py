"""Tests for repro.timing."""

import pytest

from repro.caches.cache import CacheConfig
from repro.caches.secondary import SecondaryResult
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamStats
from repro.sim.results import L1Summary
from repro.timing import (
    TimingModel,
    compare_designs,
    evaluate_timing,
    l2_system_timing,
    stream_system_timing,
)


def make_l1(accesses=10_000, misses=1_000, writebacks=100):
    return L1Summary(
        accesses=accesses,
        misses=misses,
        writebacks=writebacks,
        ifetch_misses=0,
        miss_rate=misses / accesses,
        trace_length=accesses,
        data_set_bytes=1 << 20,
    )


def make_streams(demand=1_000, hits=700, issued=800, used=700):
    stats = StreamStats(config=StreamConfig.filtered())
    stats.demand_misses = demand
    stats.stream_hits = hits
    stats.prefetches_issued = issued
    stats.prefetches_used = used
    return stats


def make_l2(hit_rate=0.7, demand=1_000):
    hits = int(demand * hit_rate)
    return SecondaryResult(
        config=CacheConfig(capacity=1 << 20, assoc=4, block_size=64, policy="lru"),
        demand_accesses=demand,
        demand_hits=hits,
        writebacks_received=0,
        sampled_sets=1,
    )


class TestModelValidation:
    def test_defaults_valid(self):
        TimingModel()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"l1_hit_cycles": 0},
            {"memory_cycles": -1},
            {"block_transfer_cycles": 0},
            {"max_utilisation": 1.0},
            {"max_utilisation": 0.0},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            TimingModel(**kwargs)

    def test_bandwidth_factor(self):
        wide = TimingModel().with_bandwidth_factor(2.0)
        assert wide.block_transfer_cycles == pytest.approx(2.0)
        with pytest.raises(ValueError):
            TimingModel().with_bandwidth_factor(0)


class TestEvaluateTiming:
    def test_all_l1_hits_is_one_cycle(self):
        report = evaluate_timing(
            references=100,
            l1_hits=100,
            intermediate_hits=0,
            memory_references=0,
            traffic_blocks=0,
            intermediate_cycles=4.0,
            model=TimingModel(),
        )
        assert report.amat == pytest.approx(1.0)
        assert report.utilisation == 0.0

    def test_memory_references_raise_amat(self):
        base = evaluate_timing(100, 100, 0, 0, 0, 4.0, TimingModel())
        slow = evaluate_timing(100, 90, 0, 10, 10, 4.0, TimingModel())
        assert slow.amat > base.amat + 5

    def test_contention_inflates_latency(self):
        light = evaluate_timing(1000, 900, 0, 100, 100, 4.0, TimingModel())
        heavy = evaluate_timing(1000, 900, 0, 100, 2000, 4.0, TimingModel())
        assert heavy.amat > light.amat
        assert heavy.utilisation > light.utilisation
        assert heavy.effective_memory_cycles > light.effective_memory_cycles

    def test_utilisation_capped(self):
        report = evaluate_timing(100, 0, 0, 100, 100_000, 4.0, TimingModel())
        assert report.utilisation <= 0.95

    def test_breakdown_must_sum(self):
        with pytest.raises(ValueError):
            evaluate_timing(100, 50, 10, 10, 0, 4.0, TimingModel())

    def test_positive_references_required(self):
        with pytest.raises(ValueError):
            evaluate_timing(0, 0, 0, 0, 0, 4.0, TimingModel())

    def test_total_cycles(self):
        report = evaluate_timing(100, 100, 0, 0, 0, 4.0, TimingModel())
        assert report.total_cycles == pytest.approx(100.0)


class TestSystemTimings:
    def test_stream_hits_cheaper_than_memory(self):
        l1 = make_l1()
        good = stream_system_timing(l1, make_streams(hits=900, used=900, issued=950))
        bad = stream_system_timing(l1, make_streams(hits=100, used=100, issued=150))
        assert good.amat < bad.amat

    def test_useless_prefetches_cost_bandwidth(self):
        l1 = make_l1()
        clean = stream_system_timing(l1, make_streams(issued=750, used=700))
        wasteful = stream_system_timing(l1, make_streams(issued=3000, used=700))
        assert wasteful.utilisation > clean.utilisation
        assert wasteful.amat >= clean.amat

    def test_l2_system(self):
        l1 = make_l1()
        strong = l2_system_timing(l1, make_l2(hit_rate=0.9))
        weak = l2_system_timing(l1, make_l2(hit_rate=0.2))
        assert strong.amat < weak.amat

    def test_comparison_speedup_direction(self):
        l1 = make_l1()
        comparison = compare_designs(
            l1,
            make_streams(hits=800, used=800, issued=850),
            make_l2(hit_rate=0.3),
        )
        assert comparison.speedup > 1.0  # good streams beat a weak L2

    def test_equal_hit_rates_favour_streams_slightly(self):
        """The paper: stream hits can be faster than L2 hits (no RAM
        lookup), so at equal hit rates streams win on latency."""
        l1 = make_l1()
        comparison = compare_designs(
            l1,
            make_streams(hits=700, used=700, issued=750),
            make_l2(hit_rate=0.7),
        )
        assert comparison.speedup > 1.0
