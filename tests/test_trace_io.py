"""Tests for repro.trace.io."""

import io

import numpy as np
import pytest

from repro.trace.events import Access, AccessKind, Trace
from repro.trace.io import dump_text, load_trace, parse_text, save_trace


@pytest.fixture
def mixed_trace():
    return Trace.from_accesses(
        [Access.read(0x1000), Access.write(0x2000), Access.ifetch(0x40)]
    )


class TestNpzRoundtrip:
    def test_roundtrip(self, tmp_path, mixed_trace):
        path = tmp_path / "trace.npz"
        save_trace(mixed_trace, path)
        loaded = load_trace(path)
        assert loaded == mixed_trace

    def test_roundtrip_empty(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_trace(Trace.empty(), path)
        assert len(load_trace(path)) == 0

    def test_roundtrip_large(self, tmp_path):
        trace = Trace.uniform(np.arange(100_000, dtype=np.int64) * 8)
        path = tmp_path / "big.npz"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, whatever=np.arange(3))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_future_version(self, tmp_path, mixed_trace):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            version=np.int64(999),
            addrs=mixed_trace.addrs,
            kinds=mixed_trace.kinds,
        )
        with pytest.raises(ValueError):
            load_trace(path)


class TestTextFormat:
    def test_dump_format(self, mixed_trace):
        out = io.StringIO()
        dump_text(mixed_trace, out)
        lines = out.getvalue().splitlines()
        assert lines == ["R 0x1000", "W 0x2000", "I 0x40"]

    def test_parse_roundtrip(self, mixed_trace):
        out = io.StringIO()
        dump_text(mixed_trace, out)
        assert parse_text(out.getvalue().splitlines()) == mixed_trace

    def test_parse_skips_comments_and_blanks(self):
        trace = parse_text(["# header", "", "R 0x10", "  ", "W 32"])
        assert trace == Trace.from_accesses([Access.read(16), Access.write(32)])

    def test_parse_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            parse_text(["X 0x10"])

    def test_parse_rejects_bad_arity(self):
        with pytest.raises(ValueError):
            parse_text(["R 0x10 extra"])

    def test_parse_decimal_addresses(self):
        trace = parse_text(["R 100"])
        assert trace[0].addr == 100
