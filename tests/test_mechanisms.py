"""Tests for the secondary-mechanism zoo (repro.mechanisms).

Covers the config surface (validation, spec parsing, dict round-trips),
the victim/miss-cache/hybrid semantics pinned by docs/mechanisms.md,
the engine/runner/store/wire plumbing that threads mechanism identity
through the stack, the shared protocol edge cases (empty, single-miss
and all-writeback traces — also exercised through every
``baselines/base.py`` prefetch baseline), and the vector-engine
fallback regression for hybrid configs.
"""

from __future__ import annotations

import json
import math
import random

import numpy as np
import pytest

from repro.caches.cache import MissEventKind, MissTrace
from repro.check.differ import (
    diff_hybrid,
    diff_misscache,
    diff_victim,
    random_hybrid_config,
    random_miss_trace,
)
from repro.core.config import StreamConfig
from repro.mechanisms import (
    HybridStack,
    MechanismConfig,
    MechStats,
    MissCache,
    VictimCache,
    build_mechanism,
    mechanism_from_dict,
    mechanism_label,
    mechanism_to_dict,
    parse_mechanism_spec,
)
from repro.sim.vector import replay_secondary


def _trace(events, block_bits=6):
    """Build a MissTrace from (addr, kind) pairs."""
    addrs = np.asarray([addr for addr, _ in events], dtype=np.int64)
    kinds = np.asarray([int(kind) for _, kind in events], dtype=np.uint8)
    return MissTrace(addrs, kinds, block_bits)


READ = MissEventKind.READ_MISS
WB = MissEventKind.WRITEBACK


class TestMechanismConfig:
    def test_constructors_and_labels(self):
        assert mechanism_label(MechanismConfig.for_streams()) == "streams"
        assert mechanism_label(MechanismConfig.victim(8)) == "victim:8"
        assert mechanism_label(MechanismConfig.misscache(4)) == "misscache:4"
        hybrid = MechanismConfig.hybrid(
            MechanismConfig.victim(8), MechanismConfig.for_streams()
        )
        assert mechanism_label(hybrid) == "victim:8+streams"

    def test_validation(self):
        with pytest.raises(ValueError):
            MechanismConfig.victim(0)
        with pytest.raises(ValueError):
            MechanismConfig.misscache(-1)
        with pytest.raises(ValueError):
            MechanismConfig.victim(4, shadow_sets=3)  # not a power of two
        with pytest.raises(ValueError):
            MechanismConfig.hybrid(MechanismConfig.victim(4))  # < 2 members
        with pytest.raises(ValueError):  # stream member must be last
            MechanismConfig.hybrid(
                MechanismConfig.for_streams(), MechanismConfig.victim(4)
            )
        with pytest.raises(ValueError):  # at most one stream member
            MechanismConfig.hybrid(
                MechanismConfig.for_streams(), MechanismConfig.for_streams()
            )
        with pytest.raises(ValueError):  # no nested hybrids
            MechanismConfig.hybrid(
                MechanismConfig.hybrid(
                    MechanismConfig.victim(4), MechanismConfig.misscache(4)
                ),
                MechanismConfig.misscache(4),
            )
        with pytest.raises(ValueError):  # members share block_bits
            MechanismConfig.hybrid(
                MechanismConfig.victim(4, block_bits=5),
                MechanismConfig.misscache(4, block_bits=6),
            )

    def test_spec_parsing_round_trip(self):
        for spec in ("streams", "victim:16", "misscache:4", "victim:4+streams",
                     "misscache:8+streams", "victim:4+misscache:4"):
            config = parse_mechanism_spec(spec)
            assert mechanism_label(config) == spec
        assert parse_mechanism_spec("sb") == MechanismConfig.for_streams()
        assert parse_mechanism_spec("vc:4") == MechanismConfig.victim(4)
        assert parse_mechanism_spec("mc") == MechanismConfig.misscache(16)
        with pytest.raises(ValueError):
            parse_mechanism_spec("bogus")
        with pytest.raises(ValueError):
            parse_mechanism_spec("streams:4")

    def test_dict_round_trip_is_json_safe(self):
        configs = [
            MechanismConfig.for_streams(StreamConfig.non_unit(czone_bits=18)),
            MechanismConfig.victim(8, shadow_sets=64, shadow_assoc=2),
            MechanismConfig.misscache(4),
            parse_mechanism_spec("victim:4+misscache:4+streams"),
        ]
        for config in configs:
            payload = json.loads(json.dumps(mechanism_to_dict(config)))
            assert mechanism_from_dict(payload) == config


class TestVictimCache:
    def test_conflict_misses_hit_the_buffer(self):
        # Direct-mapped single-set shadow: two blocks ping-pong, so
        # after the cold pass every re-reference is a victim-buffer hit.
        config = MechanismConfig.victim(4, shadow_sets=1, shadow_assoc=1)
        mech = build_mechanism(config)
        a, b = 0 << 6, 1 << 6
        outcomes = [mech.handle_miss(addr) for addr in (a, b, a, b, a)]
        stats = mech.finalize()
        assert outcomes == [False, False, True, True, True]
        assert stats.demand_misses == 5 and stats.hits == 3
        assert stats.allocations == 4  # every displaced victim inserted
        assert stats.evictions == 0 and stats.writebacks_out == 0

    def test_dirty_victim_writes_back_on_buffer_overflow(self):
        config = MechanismConfig.victim(1, shadow_sets=1, shadow_assoc=1)
        mech = build_mechanism(config)
        mech.handle_miss(0 << 6)
        mech.handle_writeback(0 << 6)  # block 0 leaves L1 dirty
        mech.handle_miss(1 << 6)
        mech.handle_miss(2 << 6)  # victim(1) displaced -> dirty 0 evicted
        stats = mech.finalize()
        assert stats.writebacks == 1
        assert stats.evictions == 1
        assert stats.writebacks_out == 1
        assert stats.invalidations == 0

    def test_geometry_mismatch_raises(self):
        mech = VictimCache(MechanismConfig.victim(4, block_bits=6))
        with pytest.raises(ValueError):
            mech.run(_trace([(0, READ)], block_bits=7))


class TestMissCache:
    def test_repeat_misses_hit(self):
        mech = MissCache(MechanismConfig.misscache(2))
        assert mech.handle_miss(0) is False
        assert mech.handle_miss(0) is True
        assert mech.handle_miss(1 << 6) is False
        assert mech.handle_miss(2 << 6) is False  # evicts LRU (block 0)
        assert mech.handle_miss(0) is False
        stats = mech.finalize()
        assert stats.hits == 1
        assert stats.allocations == 4 and stats.evictions == 2
        assert stats.writebacks_out == 0

    def test_writeback_invalidates(self):
        mech = MissCache(MechanismConfig.misscache(4))
        mech.handle_miss(0)
        mech.handle_writeback(0)
        assert mech.handle_miss(0) is False  # invalidated, not a hit
        stats = mech.finalize()
        assert stats.invalidations == 1 and stats.writebacks == 1


class TestHybridStack:
    def test_front_member_shields_the_back(self):
        config = MechanismConfig.hybrid(
            MechanismConfig.misscache(4), MechanismConfig.misscache(4)
        )
        mech = HybridStack(config)
        mech.handle_miss(0)
        assert mech.handle_miss(0) is True  # front member hit
        stats = mech.finalize()
        assert stats.member_hits == (1, 0)  # back member never saw it
        assert stats.hits == 1

    def test_writebacks_reach_every_member(self):
        config = MechanismConfig.hybrid(
            MechanismConfig.misscache(4), MechanismConfig.misscache(4)
        )
        mech = HybridStack(config)
        mech.handle_miss(0)
        mech.handle_writeback(0)
        stats = mech.finalize()
        assert stats.writebacks == 1
        # The miss propagated through both members, so both installed
        # the block and both invalidate it on the writeback.
        assert stats.invalidations == 2

    def test_two_phase_residual_matches_online(self):
        rng = random.Random(7)
        for _ in range(5):
            config = random_hybrid_config(rng)
            trace = random_miss_trace(rng, 1200, block_bits=config.block_bits)
            online = HybridStack(config).run(trace)
            residual = replay_secondary(config, trace, engine="scalar")
            assert online == residual

    def test_stream_member_embeds_full_stats(self):
        config = parse_mechanism_spec("victim:4+streams")
        trace = random_miss_trace(random.Random(3), 800)
        stats = build_mechanism(config).run(trace)
        assert stats.streams is not None
        assert stats.streams.stream_hits == stats.member_hits[1]
        assert stats.prefetches_issued == stats.streams.prefetches_issued


ZOO_SPECS = ("streams", "victim:4", "misscache:4", "victim:4+streams",
             "misscache:4+streams", "victim:4+misscache:4")


class TestProtocolEdgeCases:
    """Satellite: empty / single-miss / all-writeback traces through
    every mechanism — 0.0 rates, no division by zero."""

    @pytest.mark.parametrize("spec", ZOO_SPECS)
    def test_empty_trace(self, spec):
        stats = build_mechanism(parse_mechanism_spec(spec)).run(_trace([]))
        assert stats.demand_misses == 0
        assert stats.hit_rate == 0.0
        assert stats.hit_rate_percent == 0.0
        assert math.isfinite(stats.bandwidth.eb_measured)
        assert math.isfinite(stats.bandwidth.eb_estimate)

    @pytest.mark.parametrize("spec", ZOO_SPECS)
    def test_single_miss_trace(self, spec):
        stats = build_mechanism(parse_mechanism_spec(spec)).run(
            _trace([(0x40, READ)])
        )
        assert stats.demand_misses == 1
        assert stats.hits == 0
        assert stats.hit_rate == 0.0
        assert math.isfinite(stats.bandwidth.eb_measured)

    @pytest.mark.parametrize("spec", ZOO_SPECS)
    def test_all_writeback_trace(self, spec):
        trace = _trace([(i << 6, WB) for i in range(8)])
        stats = build_mechanism(parse_mechanism_spec(spec)).run(trace)
        assert stats.demand_misses == 0
        assert stats.writebacks == 8
        assert stats.hit_rate == 0.0
        assert math.isfinite(stats.bandwidth.eb_measured)

    def test_baselines_share_the_edge_cases(self):
        """The baselines/base.py protocol handles the same degenerate
        traces without dividing by zero."""
        from repro.baselines import (
            OneBlockLookahead,
            PrefetchingCache,
            ReferencePredictionTable,
        )

        for build in (
            lambda: OneBlockLookahead(entries=4),
            lambda: PrefetchingCache(blocks=4),
            ReferencePredictionTable,
        ):
            for events in ([], [(0x40, READ)], [(i << 6, WB) for i in range(4)]):
                stats = build().run(_trace(events))
                assert stats.hit_rate == 0.0 or events == [(0x40, READ)]
                assert math.isfinite(stats.bandwidth.eb_measured)
                assert stats.writebacks == sum(
                    1 for _, kind in events if kind == WB
                )


class TestEngineDispatch:
    """Satellite: the engine dispatcher falls back cleanly for
    mechanism shapes the vector flat-window engine cannot represent."""

    def test_vector_env_hybrid_bit_identical(self, monkeypatch):
        from repro.sim.vector import ENGINE_ENV_VAR

        config = parse_mechanism_spec("victim:4+streams")
        trace = random_miss_trace(random.Random(11), 1500)
        scalar = replay_secondary(config, trace, engine="scalar")
        monkeypatch.setenv(ENGINE_ENV_VAR, "vector")
        vector_env = replay_secondary(config, trace)
        assert scalar == vector_env

    @pytest.mark.parametrize("spec", ("victim:4", "misscache:4"))
    def test_vector_engine_never_errors_on_buffers(self, spec, monkeypatch):
        from repro.sim.vector import ENGINE_ENV_VAR

        monkeypatch.setenv(ENGINE_ENV_VAR, "vector")
        config = parse_mechanism_spec(spec)
        trace = random_miss_trace(random.Random(5), 600)
        stats = replay_secondary(config, trace)
        assert stats.demand_misses == int(trace.n_misses)

    def test_explicit_vector_matches_scalar_for_streams_kind(self):
        config = MechanismConfig.for_streams(StreamConfig.filtered())
        trace = random_miss_trace(random.Random(4), 1500)
        assert replay_secondary(config, trace, engine="vector") == replay_secondary(
            config, trace, engine="scalar"
        )


class TestRunnerAndSweep:
    def test_run_streams_is_a_run_secondary_wrapper(self):
        from repro.sim.runner import MissTraceCache, run_secondary, run_streams

        cache = MissTraceCache()
        config = StreamConfig.non_unit()
        streams = run_streams("stride", config, scale=0.05, cache=cache)
        mech = run_secondary(
            "stride", MechanismConfig.for_streams(config), scale=0.05, cache=cache
        )
        assert mech.streams == streams
        assert mech.hits == streams.stream_hits

    def test_sweep_mechanisms_serial_matches_parallel(self, tmp_path):
        from repro.sim.runner import MissTraceCache
        from repro.sim.sweep import sweep_mechanisms
        from repro.trace.store import TraceStore

        zoo = {
            spec: parse_mechanism_spec(spec)
            for spec in ("streams", "victim:4", "misscache:4+streams")
        }
        store = TraceStore(tmp_path / "store")
        serial = sweep_mechanisms(
            "stride", zoo, scale=0.05, cache=MissTraceCache(store=store)
        )
        parallel = sweep_mechanisms(
            "stride", zoo, scale=0.05, jobs=2,
            cache=MissTraceCache(store=store), store=store,
        )
        assert serial == parallel

    def test_match_result_records_mechanism(self):
        from repro.sim.compare import min_matching_l2_size

        sizes = (64 * 1024, 128 * 1024)
        plain = min_matching_l2_size("stride", scale=0.05, sizes=sizes)
        assert plain.mechanism == "streams"
        mech = min_matching_l2_size(
            "stride", scale=0.05, sizes=sizes,
            mechanism=parse_mechanism_spec("misscache:4"),
        )
        assert mech.mechanism == "misscache:4"
        with pytest.raises(ValueError):
            min_matching_l2_size(
                "stride", scale=0.05, sizes=sizes,
                stream_config=StreamConfig.jouppi(),
                mechanism=parse_mechanism_spec("misscache:4"),
            )

    def test_analytic_screen_accepts_mechanism(self):
        from repro.analytic import min_matching_l2_size_analytic
        from repro.sim.compare import min_matching_l2_size

        mech = parse_mechanism_spec("victim:4")
        brute = min_matching_l2_size("stride", scale=0.05, mechanism=mech)
        screened = min_matching_l2_size_analytic("stride", scale=0.05, mechanism=mech)
        assert screened.matched_size == brute.matched_size
        assert screened.mechanism == brute.mechanism == "victim:4"


class TestStore:
    def test_mech_result_round_trip(self, tmp_path):
        from repro.trace.store import TraceStore, mech_result_digest

        store = TraceStore(tmp_path / "store")
        config = parse_mechanism_spec("victim:4+streams")
        trace = random_miss_trace(random.Random(2), 900)
        stats = replay_secondary(config, trace)
        digest = mech_result_digest("trace-key", config)
        assert store.load_mech_result(digest, config) is None
        store.save_mech_result(digest, stats)
        assert store.load_mech_result(digest, config) == stats

    def test_streams_kind_interchangeable_with_plain_results(self, tmp_path):
        """Stream-mechanism results share digests and payloads with the
        plain run_streams store path, so warm stores serve both."""
        from repro.mechanisms.streams import mech_stats_from_streams
        from repro.sim.vector import replay_streams
        from repro.trace.store import TraceStore, mech_result_digest, result_digest

        store = TraceStore(tmp_path / "store")
        stream_config = StreamConfig.filtered()
        config = MechanismConfig.for_streams(stream_config)
        trace = random_miss_trace(random.Random(6), 700)
        stream_stats = replay_streams(stream_config, trace)

        digest = result_digest("trace-key", stream_config)
        assert mech_result_digest("trace-key", config) == digest
        store.save_result(digest, stream_stats)
        loaded = store.load_mech_result(digest, config)
        assert loaded == mech_stats_from_streams(config, stream_stats)

    def test_digests_distinguish_mechanisms(self):
        from repro.trace.store import mech_result_digest

        digests = {
            mech_result_digest("trace-key", parse_mechanism_spec(spec))
            for spec in ZOO_SPECS
        }
        assert len(digests) == len(ZOO_SPECS)
        assert mech_result_digest(
            "other-trace", parse_mechanism_spec("victim:4")
        ) != mech_result_digest("trace-key", parse_mechanism_spec("victim:4"))


class TestWire:
    def test_mech_stats_dict_round_trip(self):
        from repro.trace.store import mech_stats_from_dict, mech_stats_to_dict

        for spec in ZOO_SPECS:
            config = parse_mechanism_spec(spec)
            trace = random_miss_trace(random.Random(8), 600)
            stats = build_mechanism(config).run(trace)
            payload = json.loads(json.dumps(mech_stats_to_dict(stats)))
            assert mech_stats_from_dict(payload) == stats

    def test_run_request_with_mechanism(self):
        from repro.service import api

        request = api.parse_run_request(
            {"workload": "stride", "mechanism": "victim:4+streams"}
        )
        cell = request.cells[0]
        assert cell.key == ("stride", "victim:4+streams")
        assert isinstance(cell.config, MechanismConfig)
        with pytest.raises(api.ValidationError):
            api.parse_run_request(
                {"workload": "stride", "mechanism": "victim:4", "config": {}}
            )
        with pytest.raises(api.ValidationError):
            api.parse_run_request({"workload": "stride", "mechanism": "bogus"})

    def test_sweep_request_with_mechanisms(self):
        from repro.service import api

        request = api.parse_sweep_request(
            {"workloads": ["stride", "random"], "mechanisms": ["streams", "mc:4"]}
        )
        assert [cell.key for cell in request.cells] == [
            ("stride", "streams"), ("stride", "misscache:4"),
            ("random", "streams"), ("random", "misscache:4"),
        ]
        with pytest.raises(api.ValidationError):
            api.parse_sweep_request(
                {"workloads": ["stride"], "mechanisms": ["streams"],
                 "n_streams": [1, 2]}
            )

    def test_chunk_and_result_round_trip(self):
        from repro.service import api
        from repro.sim.results import RunResult
        from repro.sim.runner import MissTraceCache, run_secondary

        config = parse_mechanism_spec("misscache:4+streams")
        chunk = api.parse_chunk_request(
            {"cells": [{
                "key": ["stride", "misscache:4+streams"],
                "workload": "stride",
                "scale": 0.05,
                "mechanism": mechanism_to_dict(config),
            }]}
        )
        cell = chunk.cells[0]
        assert cell.config == config

        cache = MissTraceCache()
        stats = run_secondary("stride", config, scale=0.05, cache=cache)
        _, summary = cache.get("stride", scale=0.05)
        result = RunResult(
            workload="stride", scale=0.05, seed=0, l1=summary, streams=stats
        )
        payload = json.loads(json.dumps(api.encode_cell_result(cell, result)))
        assert "mech" in payload and "stats" not in payload
        assert api.decode_cell_result(payload) == result

    def test_fleet_encode_cells_is_mechanism_aware(self):
        from repro.fleet.dispatch import FleetDispatcher
        from repro.service import api
        from repro.sim.parallel import SweepTask

        config = parse_mechanism_spec("victim:4")
        encoded = FleetDispatcher._encode_cells(
            [SweepTask(key=("stride", "victim:4"), workload="stride",
                       config=config, scale=0.05, seed=0)]
        )
        assert encoded[0]["mechanism"] == mechanism_to_dict(config)
        assert "config" not in encoded[0]
        parsed = api.parse_chunk_request({"cells": encoded})
        assert parsed.cells[0].config == config


class TestDifferStages:
    def test_generators_produce_valid_configs(self):
        from repro.check.differ import (
            random_misscache_config,
            random_victim_config,
        )

        rng = random.Random(1)
        for _ in range(50):
            random_victim_config(rng)
            random_misscache_config(rng)
            random_hybrid_config(rng)  # __post_init__ validates

    def test_stage_slice_clean_and_deterministic(self):
        for stage in (diff_victim, diff_misscache, diff_hybrid):
            for seed in range(4):
                assert stage(seed, n_events=700) is None
            assert stage(2, n_events=700) == stage(2, n_events=700)

    def test_stages_registered(self):
        from repro.check.differ import DEFAULT_STAGES, STAGE_FUNCTIONS

        for name in ("victim", "misscache", "hybrid"):
            assert name in STAGE_FUNCTIONS
            assert name in DEFAULT_STAGES

    def test_victim_oracle_detects_injected_bug(self, monkeypatch):
        """Detection power: corrupting the production victim cache's
        LRU insertion must surface as a divergence."""
        original = VictimCache._insert_victim

        def broken(self, block, dirty):
            original(self, block, dirty=False)  # drop the dirty bit

        monkeypatch.setattr(VictimCache, "_insert_victim", broken)
        found = [diff_victim(seed, n_events=1500) for seed in range(10)]
        assert any(d is not None for d in found)


class TestCli:
    def test_sweep_mechanism(self, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--workloads", "stride", "--scale", "0.05",
            "--mechanism", "streams", "victim:4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "hit% streams" in out and "hit% victim:4" in out

    def test_sweep_mechanism_rejects_bad_spec(self, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--workloads", "stride", "--mechanism", "bogus:1",
        ])
        assert code == 2
        assert "bad --mechanism" in capsys.readouterr().err

    def test_compare_mechanism(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "stride", "--scale", "0.05",
            "--mechanism", "misscache:4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "misscache:4" in out and "min matching L2" in out

    def test_exhibit_mechzoo_listed(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["exhibit", "mechzoo"])
        assert args.name == "mechzoo"


class TestMechzooExhibit:
    def test_small_slice_witnessed(self):
        from repro.reporting.experiments import mechzoo, render_mechzoo

        rows = mechzoo(names=["stride"], scales={"stride": (0.05,)})
        labels = {row.mechanism for row in rows}
        assert labels == {
            "streams", "victim:16", "misscache:16",
            "victim:16+streams", "misscache:16+streams",
        }
        rendered = render_mechzoo(rows)
        assert "Mechanism zoo" in rendered
        assert "witnessed by sampled simulation" in rendered
        for row in rows:
            # A reported match is always backed by a real probe.
            if row.match.matched_size is not None:
                assert any(
                    point.size == row.match.matched_size
                    for point in row.match.l2_hit_rates
                )
