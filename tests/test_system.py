"""Tests for repro.sim.system (per-access MemorySystem)."""

import numpy as np
import pytest

from repro.caches.cache import CacheConfig
from repro.core.config import StreamConfig
from repro.sim.system import MemorySystem, ServiceLevel
from repro.trace.events import AccessKind, Trace


def small_system(**stream_kwargs):
    l1 = CacheConfig(capacity=4096, assoc=2, block_size=64, policy="lru")
    return MemorySystem(l1, StreamConfig.jouppi(n_streams=4).with_(**stream_kwargs))


class TestServiceLevels:
    def test_cold_miss_goes_to_memory(self):
        system = small_system()
        assert system.access(0) is ServiceLevel.MEMORY

    def test_second_access_hits_l1(self):
        system = small_system()
        system.access(0)
        assert system.access(0) is ServiceLevel.L1

    def test_sequential_walk_hits_streams(self):
        system = small_system()
        levels = [system.access(block * 64) for block in range(64)]
        assert levels[0] is ServiceLevel.MEMORY
        assert all(level is ServiceLevel.STREAM for level in levels[1:])

    def test_stats_accumulate(self):
        system = small_system()
        for block in range(10):
            system.access(block * 64)
        stats = system.stats
        assert stats.references == 10
        assert stats.memory_fetches == 1
        assert stats.stream_hits == 9

    def test_serviced_on_chip_fraction(self):
        system = small_system()
        for block in range(100):
            system.access(block * 64)
        assert system.stats.serviced_on_chip_fraction > 0.9


class TestWritebackCoherence:
    def test_writeback_invalidates_stream_copies(self):
        system = small_system()
        n_sets = system.l1.config.n_sets
        # Prime a stream prefetching block 2 and 3.
        system.access(1 * 64)
        # Dirty a block that aliases ahead of the stream and force its
        # eviction so a write-back for block 2 travels to memory.
        system.access(2 * 64, AccessKind.WRITE)
        system.access((2 + n_sets) * 64)
        system.access((2 + 2 * n_sets) * 64)  # evicts dirty block 2
        assert system.stats.writebacks >= 1
        # Block 2's stream copy is now stale: a re-access must go to memory.
        level = system.access(2 * 64)
        assert level in (ServiceLevel.MEMORY, ServiceLevel.L1)

    def test_amat_monotone_in_memory_time(self):
        system = small_system()
        for block in range(50):
            system.access(block * 64)
        fast = system.stats.amat(memory_time=20.0)
        slow = system.stats.amat(memory_time=100.0)
        assert slow > fast

    def test_amat_empty(self):
        assert small_system().stats.amat() == 0.0


class TestRunTrace:
    def test_run_counts_every_reference(self):
        system = small_system()
        trace = Trace.uniform(np.arange(256, dtype=np.int64) * 8)
        stats = system.run(trace)
        assert stats.references == 256

    def test_stream_stats_accessible(self):
        system = small_system()
        system.run(Trace.uniform(np.arange(64, dtype=np.int64) * 64))
        stream_stats = system.stream_stats()
        assert stream_stats.demand_misses == system.stats.memory_fetches + system.stats.stream_hits


class TestConfigValidation:
    def test_block_bits_must_agree(self):
        l1 = CacheConfig(capacity=4096, assoc=2, block_size=128, policy="lru")
        with pytest.raises(ValueError):
            MemorySystem(l1, StreamConfig.jouppi())

    def test_defaults_are_paper(self):
        system = MemorySystem()
        assert system.l1.config.capacity == 64 * 1024
        assert system.prefetcher.config.has_unit_filter
