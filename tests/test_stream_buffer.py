"""Tests for repro.core.stream_buffer (single FIFO buffer, Figure 2)."""

import pytest

from repro.core.stream_buffer import StreamBuffer


class TestAllocation:
    def test_inactive_until_allocated(self):
        stream = StreamBuffer(depth=2)
        assert not stream.active
        assert stream.head is None
        assert not stream.head_matches(0)

    def test_allocate_fills_depth_entries(self):
        stream = StreamBuffer(depth=3)
        issued = stream.allocate(100, stride=1)
        assert issued == [100, 101, 102]
        assert len(stream) == 3
        assert stream.head.block == 100

    def test_strided_allocation(self):
        stream = StreamBuffer(depth=2)
        issued = stream.allocate(50, stride=10)
        assert issued == [50, 60]

    def test_negative_stride(self):
        stream = StreamBuffer(depth=2)
        issued = stream.allocate(50, stride=-4)
        assert issued == [50, 46]

    def test_zero_stride_rejected(self):
        stream = StreamBuffer(depth=2)
        with pytest.raises(ValueError):
            stream.allocate(0, stride=0)

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            StreamBuffer(depth=0)

    def test_reallocation_discards_old_entries(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(10, 1)
        stream.allocate(500, 1)
        assert stream.head.block == 500
        assert len(stream) == 2


class TestConsume:
    def test_consume_advances_fifo(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(10, 1)
        issued = stream.consume_head()
        assert issued == 12  # keeps the FIFO `depth` deep
        assert stream.head.block == 11

    def test_consume_counts_hits(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(10, 1)
        stream.consume_head()
        stream.consume_head()
        assert stream.hits_since_alloc == 2

    def test_consume_strided(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(0, 7)
        assert stream.consume_head() == 14
        assert stream.consume_head() == 21

    def test_consume_inactive_raises(self):
        stream = StreamBuffer(depth=2)
        with pytest.raises(RuntimeError):
            stream.consume_head()

    def test_head_matches_only_head(self):
        stream = StreamBuffer(depth=3)
        stream.allocate(10, 1)
        assert stream.head_matches(10)
        assert not stream.head_matches(11)  # present, but not at head


class TestFlush:
    def test_flush_returns_discard_count(self):
        stream = StreamBuffer(depth=3)
        stream.allocate(10, 1)
        stream.consume_head()
        assert stream.flush() == 3  # refilled on consume
        assert not stream.active

    def test_flush_resets_hit_counter(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(10, 1)
        stream.consume_head()
        stream.flush()
        assert stream.hits_since_alloc == 0


class TestInvalidate:
    def test_invalidate_marks_entry_stale(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(10, 1)
        assert stream.invalidate(11) == 1
        entries = stream.entries()
        assert entries[0].valid
        assert not entries[1].valid

    def test_invalidated_head_never_matches(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(10, 1)
        stream.invalidate(10)
        assert not stream.head_matches(10)

    def test_invalidate_absent_block(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(10, 1)
        assert stream.invalidate(999) == 0

    def test_issue_seq_recorded(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(10, 1, issue_seq=42)
        assert all(e.issue_seq == 42 for e in stream.entries())
        stream.consume_head(issue_seq=50)
        assert stream.entries()[-1].issue_seq == 50
