"""Unit tests for the fleet tier: hashing, wire format, blob layer,
client retry, and the dispatcher's sharding/failover mechanics.

Everything here runs in-process (no sockets except the retry tests,
which use a throwaway local listener); the cross-host behaviour is
covered end-to-end by ``test_fleet_e2e.py`` and the smoke job.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.caches.cache import CacheConfig
from repro.core.config import StreamConfig
from repro.fleet.hashing import rendezvous_owner, rendezvous_rank, rendezvous_score
from repro.service import api
from repro.service.client import RequestFailed, ServiceClient
from repro.sim.parallel import SweepTask, TaskError, run_grid
from repro.sim.results import RunResult
from repro.trace.store import TraceStore, trace_digest

NODES = [f"http://10.0.0.{i}:8077" for i in range(1, 6)]
KEYS = [f"digest-{i:04d}" for i in range(200)]


class TestRendezvousHashing:
    def test_owner_is_stable_and_seed_independent(self):
        # sha256-based: the same literal inputs must map identically in
        # every process, regardless of PYTHONHASHSEED.
        assert rendezvous_owner("abc", NODES) == rendezvous_owner("abc", list(NODES))
        assert rendezvous_score("abc", NODES[0]) == rendezvous_score("abc", NODES[0])

    def test_rank_is_a_permutation_and_owner_is_its_head(self):
        for key in KEYS[:20]:
            rank = rendezvous_rank(key, NODES)
            assert sorted(rank) == sorted(NODES)
            assert rank[0] == rendezvous_owner(key, NODES)

    def test_removing_a_node_only_moves_its_own_keys(self):
        # The property failover leans on: killing one worker reassigns
        # exactly the keys it owned; every other placement is untouched.
        before = {key: rendezvous_owner(key, NODES) for key in KEYS}
        dead = NODES[2]
        survivors = [n for n in NODES if n != dead]
        after = {key: rendezvous_owner(key, survivors) for key in KEYS}
        for key in KEYS:
            if before[key] != dead:
                assert after[key] == before[key]
            else:
                assert after[key] != dead
        # and the dead node's keys land on their rank runner-up
        for key in KEYS:
            if before[key] == dead:
                assert after[key] == rendezvous_rank(key, NODES)[1]

    def test_distribution_is_roughly_even(self):
        counts = {node: 0 for node in NODES}
        for key in KEYS:
            counts[rendezvous_owner(key, NODES)] += 1
        assert min(counts.values()) > 0
        assert max(counts.values()) < 3 * len(KEYS) / len(NODES)

    def test_empty_node_set(self):
        assert rendezvous_owner("abc", []) is None


class TestChunkWireFormat:
    def test_parse_chunk_request_round_trip(self):
        payload = {
            "v": api.WIRE_VERSION,
            "cells": [
                {
                    "key": ["sweep", 4],
                    "workload": "sweep",
                    "scale": 0.25,
                    "seed": 0,
                    "config": {"n_streams": 4},
                }
            ],
            "blob_origin": "http://127.0.0.1:9000/",
            "fetch_policy": "require",
            "timeout_s": 30,
        }
        request = api.parse_chunk_request(payload)
        assert len(request.cells) == 1
        cell = request.cells[0]
        assert cell.key == ("sweep", 4)
        assert cell.workload == "sweep"
        assert cell.config.n_streams == 4
        assert request.blob_origin == "http://127.0.0.1:9000"
        assert request.fetch_policy == "require"
        assert request.timeout_s == 30

    def test_parse_chunk_request_rejects_garbage(self):
        with pytest.raises(api.ValidationError):
            api.parse_chunk_request({"v": api.WIRE_VERSION, "cells": []})
        with pytest.raises(api.ValidationError):
            api.parse_chunk_request(
                {
                    "v": api.WIRE_VERSION,
                    "cells": [{"workload": "sweep"}],
                    "fetch_policy": "sometimes",
                }
            )
        with pytest.raises(api.ValidationError):
            api.parse_chunk_request(
                {"v": api.WIRE_VERSION, "cells": [{"workload": "nope"}]}
            )

    def test_parse_register_request(self):
        assert (
            api.parse_register_request(
                {"v": api.WIRE_VERSION, "url": "http://h:1/"}
            )
            == "http://h:1"
        )
        with pytest.raises(api.ValidationError):
            api.parse_register_request({"v": api.WIRE_VERSION, "url": "ftp://h:1"})
        with pytest.raises(api.ValidationError):
            api.parse_register_request({"v": api.WIRE_VERSION})

    def test_cell_result_survives_the_wire_with_provenance(self):
        task = SweepTask(
            key=("sweep", 4),
            workload="sweep",
            config=StreamConfig.jouppi(n_streams=4),
            scale=0.25,
        )
        (result,) = run_grid([task])
        cell = api.CellSpec(
            key=task.key, workload="sweep", config=task.config, scale=0.25
        )
        encoded = json.loads(json.dumps(api.encode_cell_result(cell, result)))
        decoded = api.decode_cell_result(encoded)
        assert decoded.streams == result.streams
        assert decoded.l1 == result.l1
        assert decoded.worker == result.worker
        assert decoded.source == result.source
        assert decoded.wall_time_s == result.wall_time_s

    def test_task_error_survives_the_wire(self):
        error = TaskError(
            key=("sweep", 4),
            workload="sweep",
            error="boom",
            details="trace",
            wall_time_s=0.5,
            worker=123,
        )
        decoded = api.decode_task_error(json.loads(json.dumps(error.to_payload())))
        assert decoded.key == ("sweep", 4)
        assert decoded.error == "boom"
        assert decoded.details == "trace"
        assert decoded.worker == 123


class TestStoreBlobLayer:
    def test_ingest_read_round_trip(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        digest = "a" * 64
        assert not store.has_blob("trace", digest)
        assert store.read_blob("trace", digest) is None
        store.ingest_blob("trace", digest, b"\x00\x01payload")
        assert store.has_blob("trace", digest)
        assert store.read_blob("trace", digest) == b"\x00\x01payload"
        # blob identity maps onto the ordinary store layout
        assert store.blob_path("trace", digest) == store.trace_path(digest)

    def test_unknown_kind_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.blob_path("model", "a" * 64)

    def test_blob_bytes_are_store_bytes(self, tmp_path):
        # A blob fetched from one store and ingested into another makes
        # the destination a cache hit for the same digest.
        src = TraceStore(tmp_path / "src")
        dst = TraceStore(tmp_path / "dst")
        from repro.sim.runner import MissTraceCache

        cache = MissTraceCache(CacheConfig.paper_l1(), store=src)
        cache.get("sweep", 0.25, 0)
        digest = trace_digest("sweep", 0.25, 0, CacheConfig.paper_l1(), False)
        data = src.read_blob("trace", digest)
        assert data is not None
        dst.ingest_blob("trace", digest, data)
        loaded = dst.load_trace(digest)
        assert loaded is not None


def _flaky_listener(failures: int, respond_status: int = 200):
    """A local TCP server that botches its first ``failures`` requests
    (accept + close without responding), then answers JSON."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    port = sock.getsockname()[1]
    state = {"seen": 0}

    def serve():
        while True:
            try:
                conn, _ = sock.accept()
            except OSError:
                return
            with conn:
                try:
                    conn.settimeout(5.0)
                    data = b""
                    while b"\r\n\r\n" not in data:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        data += chunk
                except OSError:
                    continue
                state["seen"] += 1
                if state["seen"] <= failures:
                    continue  # close without responding: transport error
                body = json.dumps({"ok": True, "v": api.WIRE_VERSION}).encode()
                conn.sendall(
                    (
                        f"HTTP/1.1 {respond_status} OK\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n"
                    ).encode()
                    + body
                )

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return sock, port, state


class TestClientRetry:
    def test_retries_through_transport_failures(self):
        sock, port, state = _flaky_listener(failures=2)
        try:
            client = ServiceClient(
                "127.0.0.1", port, timeout=5.0, retries=3, backoff_s=0.01
            )
            status, body = client.health()
            assert status == 200 and body["ok"]
            assert state["seen"] == 3  # 2 botched + 1 served
            client.close()
        finally:
            sock.close()

    def test_attempt_cap_is_honored(self):
        sock, port, state = _flaky_listener(failures=100)
        try:
            client = ServiceClient(
                "127.0.0.1", port, timeout=5.0, retries=2, backoff_s=0.01
            )
            with pytest.raises(RequestFailed) as exc_info:
                client.health()
            assert exc_info.value.attempts == 3
            assert state["seen"] == 3
            client.close()
        finally:
            sock.close()

    def test_deadline_bounds_the_whole_retry_loop(self):
        # An unreachable port with a generous retry budget: the
        # deadline, not the attempt cap, must stop the loop.
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here
        client = ServiceClient(
            "127.0.0.1", port, timeout=5.0, retries=50, backoff_s=0.05
        )
        started = time.monotonic()
        with pytest.raises(RequestFailed):
            client.request("GET", "/healthz", deadline_s=0.5)
        elapsed = time.monotonic() - started
        assert elapsed < 2.0, f"deadline of 0.5s overshot to {elapsed:.2f}s"

    def test_connection_is_reused_across_requests(self, tmp_path):
        # Against the real server (keep-alive), two sequential requests
        # must ride one TCP connection.
        from repro.service.server import ServiceConfig, ServiceServer, SimulationService

        async def scenario():
            server = ServiceServer(SimulationService(ServiceConfig(jobs=1)))
            host, port = await server.start()
            try:
                def talk():
                    client = ServiceClient(host, port, timeout=10.0)
                    try:
                        client.health()
                        first_sock = client._conn.sock
                        assert first_sock is not None
                        client.health()
                        assert client._conn.sock is first_sock
                    finally:
                        client.close()

                await asyncio.to_thread(talk)
            finally:
                await server.close()

        asyncio.run(scenario())


def _tasks(n_streams=(1, 2, 4, 6, 8, 12), workloads=("sweep", "stride")):
    return [
        SweepTask(
            key=(name, n),
            workload=name,
            config=StreamConfig.jouppi(n_streams=n),
            scale=0.25,
        )
        for name in workloads
        for n in n_streams
    ]


class TestDispatcherSharding:
    def _dispatcher(self, **kwargs):
        from repro.fleet.dispatch import FleetDispatcher
        from repro.obs.metrics import MetricsRegistry

        async def local(tasks):
            return run_grid(tasks)

        kwargs.setdefault("heartbeat_s", 0)
        kwargs.setdefault("registry", MetricsRegistry())
        return FleetDispatcher(local, **kwargs)

    def test_same_trace_same_worker(self):
        dispatcher = self._dispatcher(workers=NODES)
        tasks = _tasks()
        alive = dispatcher.alive_workers()
        groups = dispatcher._shard(tasks, alive)
        owner_of = {}
        for worker, indexed in groups:
            for _, task in indexed:
                digest = dispatcher._task_trace_digest(task)
                assert owner_of.setdefault(digest, worker.url) == worker.url
        # every cell of one workload shares a trace digest, hence a worker
        assert len(owner_of) == 2  # two workloads at one (scale, seed)

    def test_shard_preserves_every_index_exactly_once(self):
        dispatcher = self._dispatcher(workers=NODES)
        tasks = _tasks()
        groups = dispatcher._shard(tasks, dispatcher.alive_workers())
        seen = sorted(i for _, indexed in groups for i, _ in indexed)
        assert seen == list(range(len(tasks)))

    def test_zero_workers_runs_locally(self):
        dispatcher = self._dispatcher()
        tasks = _tasks(n_streams=(4,), workloads=("sweep",))
        results = asyncio.run(dispatcher.run_batch(tasks))
        (direct,) = run_grid(tasks)
        assert results[0].streams == direct.streams

    def test_dead_workers_fall_back_to_local(self):
        # Registered but dead-on-arrival workers (nothing listens on
        # their ports): every shard exhausts its attempts, fails over,
        # finds no survivors, and lands on the local runner with
        # bit-identical results.
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        dispatcher = self._dispatcher(
            workers=[f"http://127.0.0.1:{port}"],
            max_attempts=2,
            backoff_s=0.01,
            chunk_timeout_s=5.0,
        )
        tasks = _tasks(n_streams=(1, 4), workloads=("sweep",))
        results = asyncio.run(dispatcher.run_batch(tasks))
        direct = run_grid(tasks)
        for got, want in zip(results, direct):
            assert isinstance(got, RunResult)
            assert got.streams == want.streams
        assert not dispatcher.workers[f"http://127.0.0.1:{port}"].alive
        snap = dispatcher._m.snapshot()
        assert snap["counters"]["fleet_failover_cells_total"] == len(tasks)
        assert snap["counters"]["fleet_local_fallback_cells_total"] == len(tasks)
        assert snap["counters"]["fleet_retry_total"] >= 1

    def test_status_is_json_safe(self):
        dispatcher = self._dispatcher(workers=NODES[:2])
        tasks = _tasks(n_streams=(4,), workloads=("sweep",))
        dispatcher._log_cells(tasks, run_grid(tasks), origin="local")
        encoded = json.dumps(dispatcher.status())
        decoded = json.loads(encoded)
        assert decoded["alive"] == 2
        assert decoded["cells"][0]["origin"] == "local"
        assert decoded["cells"][0]["key"] == ["sweep", 4]


class TestConfigValidation:
    def test_worker_cannot_dispatch(self):
        from repro.service.server import ServiceConfig

        with pytest.raises(ValueError):
            ServiceConfig(worker=True, workers=("http://h:1",))

    def test_bad_fetch_policy_rejected(self):
        from repro.service.server import ServiceConfig

        with pytest.raises(ValueError):
            ServiceConfig(fetch_policy="sometimes")


class TestWorkerClocks:
    """Liveness decisions must survive wall-clock steps (NTP, manual
    changes): `heartbeat_age_s` reads the monotonic clock only; the unix
    stamp is display-only."""

    def _handle(self):
        from repro.fleet.dispatch import WorkerHandle

        return WorkerHandle(NODES[0], max_inflight=2)

    def test_age_none_before_first_heartbeat(self):
        handle = self._handle()
        assert handle.heartbeat_age_s() is None
        assert handle.summary()["heartbeat_age_s"] is None

    def test_age_small_after_mark_alive(self):
        handle = self._handle()
        handle.mark_alive(pid=123)
        age = handle.heartbeat_age_s()
        assert age is not None and 0.0 <= age < 5.0
        assert handle.summary()["last_heartbeat_unix"] == pytest.approx(
            time.time(), abs=5.0
        )

    @pytest.mark.parametrize("step", [1e6, -1e6])
    def test_age_immune_to_wall_clock_steps(self, step, monkeypatch):
        handle = self._handle()
        handle.mark_alive(pid=123)
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + step)
        # the decision clock does not move with the wall clock
        age = handle.heartbeat_age_s()
        assert age is not None and 0.0 <= age < 5.0

    def test_age_tracks_monotonic_elapsed(self, monkeypatch):
        handle = self._handle()
        handle.mark_alive(pid=123)
        real_mono = time.monotonic
        monkeypatch.setattr(time, "monotonic", lambda: real_mono() + 120.0)
        assert handle.heartbeat_age_s() >= 120.0
