"""Tests for the quasi-associative lookup extension (lookup_depth)."""

import numpy as np
import pytest

from repro.caches.cache import MissTrace
from repro.core.bank import Lookup, StreamBufferBank
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.core.stream_buffer import StreamBuffer


def make_mt(blocks):
    arr = np.asarray(blocks, dtype=np.int64) << 6
    return MissTrace(arr, np.zeros(len(blocks), dtype=np.uint8), 6)


class TestStreamBufferFindSkip:
    def test_find_positions(self):
        stream = StreamBuffer(depth=4)
        stream.allocate(100, 1)
        assert stream.find(100, lookup_depth=4) == 0
        assert stream.find(102, lookup_depth=4) == 2
        assert stream.find(102, lookup_depth=2) == -1  # beyond the window
        assert stream.find(999, lookup_depth=4) == -1

    def test_find_skips_invalid_entries(self):
        stream = StreamBuffer(depth=4)
        stream.allocate(100, 1)
        stream.invalidate(101)
        assert stream.find(101, lookup_depth=4) == -1

    def test_find_inactive(self):
        assert StreamBuffer(depth=2).find(0, 2) == -1

    def test_skip_drops_head_entries(self):
        stream = StreamBuffer(depth=4)
        stream.allocate(100, 1)
        stream.skip(2)
        assert stream.head.block == 102
        assert len(stream) == 2

    def test_skip_bounds(self):
        stream = StreamBuffer(depth=2)
        stream.allocate(100, 1)
        with pytest.raises(ValueError):
            stream.skip(3)
        with pytest.raises(ValueError):
            stream.skip(-1)

    def test_refill_tops_up_to_depth(self):
        stream = StreamBuffer(depth=4)
        stream.allocate(100, 1)
        stream.skip(3)
        issued = stream.refill()
        assert issued == [104, 105, 106]
        assert len(stream) == 4

    def test_refill_inactive_raises(self):
        with pytest.raises(RuntimeError):
            StreamBuffer(depth=2).refill()


class TestBankDeepLookup:
    def test_head_only_misses_skipped_block(self):
        bank = StreamBufferBank(n_streams=1, depth=4, lookup_depth=1)
        bank.allocate(100, 1)
        assert bank.lookup(102) is Lookup.MISS

    def test_deep_lookup_skips_ahead(self):
        bank = StreamBufferBank(n_streams=1, depth=4, lookup_depth=4)
        bank.allocate(100, 1)
        assert bank.lookup(102) is Lookup.HIT
        # The stream advanced past the skipped entries.
        assert bank.lookup(103) is Lookup.HIT

    def test_skipped_prefetches_counted_as_waste(self):
        bank = StreamBufferBank(n_streams=1, depth=4, lookup_depth=4)
        bank.allocate(100, 1)
        bank.lookup(102)  # skips 100, 101
        bank.finalize()
        assert bank.prefetches_useless >= 2

    def test_lookup_depth_validation(self):
        with pytest.raises(ValueError):
            StreamBufferBank(n_streams=1, depth=2, lookup_depth=3)
        with pytest.raises(ValueError):
            StreamBufferBank(n_streams=1, depth=2, lookup_depth=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(depth=2, lookup_depth=3)


class TestGappyStreamRecovery:
    """The motivating case: lucky L1 hits punch holes in a sweep."""

    @staticmethod
    def gappy_blocks(n=600, hole_every=7):
        return [b for b in range(100, 100 + n) if b % hole_every != 0]

    def test_head_only_fragments(self):
        blocks = self.gappy_blocks()
        head_only = StreamPrefetcher(
            StreamConfig(n_streams=4, depth=4, lookup_depth=1)
        ).run(make_mt(blocks))
        deep = StreamPrefetcher(
            StreamConfig(n_streams=4, depth=4, lookup_depth=4)
        ).run(make_mt(blocks))
        # Every hole costs the head-only configuration a miss (the
        # reallocation restarts the stream); deep lookup skips over it.
        assert deep.hit_rate > head_only.hit_rate + 0.1
        assert deep.hit_rate > 0.99

    def test_deep_lookup_never_hurts_hit_rate(self):
        for blocks in (list(range(100, 200)), self.gappy_blocks(), [5, 900, 17, 4000]):
            shallow = StreamPrefetcher(
                StreamConfig(n_streams=4, depth=4, lookup_depth=1)
            ).run(make_mt(blocks))
            deep = StreamPrefetcher(
                StreamConfig(n_streams=4, depth=4, lookup_depth=4)
            ).run(make_mt(blocks))
            assert deep.stream_hits >= shallow.stream_hits
