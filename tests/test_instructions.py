"""Tests for repro.workloads.instructions."""

import numpy as np
import pytest

from repro.trace.events import AccessKind, Trace
from repro.workloads.instructions import CODE_BASE, with_instructions


class TestWithInstructions:
    def test_interleaving_ratio(self):
        data = Trace.uniform(np.arange(10, dtype=np.int64) * 64 + (1 << 20))
        trace = with_instructions(data, per_access=2)
        assert len(trace) == 30
        kinds = [a.kind for a in trace]
        assert kinds[0] is AccessKind.IFETCH
        assert kinds[1] is AccessKind.IFETCH
        assert kinds[2] is AccessKind.READ

    def test_data_order_preserved(self):
        data = Trace.uniform(np.array([5, 7, 9], dtype=np.int64))
        trace = with_instructions(data, per_access=1)
        assert [a.addr for a in trace.data_only()] == [5, 7, 9]

    def test_fetches_wrap_around_code_segment(self):
        data = Trace.uniform(np.arange(100, dtype=np.int64))
        trace = with_instructions(data, code_bytes=64, fetch_bytes=16, per_access=1)
        fetch_addrs = trace.instructions_only().addrs
        assert int(fetch_addrs.max()) < CODE_BASE + 64
        assert int(fetch_addrs.min()) >= CODE_BASE

    def test_zero_per_access_is_identity(self):
        data = Trace.uniform(np.array([1], dtype=np.int64))
        assert with_instructions(data, per_access=0) is data

    def test_empty_trace_passthrough(self):
        empty = Trace.empty()
        assert with_instructions(empty) is empty

    def test_validation(self):
        data = Trace.uniform(np.array([1], dtype=np.int64))
        with pytest.raises(ValueError):
            with_instructions(data, code_bytes=0)
        with pytest.raises(ValueError):
            with_instructions(data, per_access=-1)

    def test_fetch_stream_is_sequential_within_loop(self):
        data = Trace.uniform(np.arange(8, dtype=np.int64))
        trace = with_instructions(data, code_bytes=1 << 20, fetch_bytes=16, per_access=1)
        fetches = trace.instructions_only().addrs
        deltas = np.diff(fetches)
        assert set(deltas.tolist()) == {16}
