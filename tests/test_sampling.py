"""Tests for repro.trace.sampling (time sampling, paper Section 4.1)."""

import numpy as np
import pytest

from repro.trace.events import Trace
from repro.trace.sampling import TimeSampler, time_sample


class TestTimeSampler:
    def test_paper_defaults_keep_ten_percent(self):
        sampler = TimeSampler()
        assert sampler.on_window == 10_000
        assert sampler.off_window == 90_000
        assert sampler.sampling_ratio == pytest.approx(0.10)

    def test_mask_keeps_on_window_prefix(self):
        sampler = TimeSampler(on_window=2, off_window=3)
        mask = sampler.mask(10)
        assert mask.tolist() == [True, True, False, False, False] * 2

    def test_phase_shifts_window(self):
        sampler = TimeSampler(on_window=2, off_window=3, phase=2)
        mask = sampler.mask(5)
        assert mask.tolist() == [False, False, False, True, True]

    def test_sample_selects_matching_accesses(self):
        trace = Trace.uniform(np.arange(10) * 8)
        sampled = TimeSampler(on_window=1, off_window=4).sample(trace)
        assert [a.addr for a in sampled] == [0, 40]

    def test_sample_empty_trace(self):
        trace = Trace.empty()
        assert len(TimeSampler().sample(trace)) == 0

    def test_sample_ratio_approximate_on_long_trace(self):
        trace = Trace.uniform(np.arange(100_000))
        sampled = time_sample(trace)
        assert len(sampled) == pytest.approx(10_000, rel=0.01)

    def test_off_window_zero_keeps_everything(self):
        trace = Trace.uniform(np.arange(100))
        sampled = TimeSampler(on_window=10, off_window=0).sample(trace)
        assert len(sampled) == 100

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            TimeSampler(on_window=0)
        with pytest.raises(ValueError):
            TimeSampler(off_window=-1)
        with pytest.raises(ValueError):
            TimeSampler(phase=-1)

    def test_sampling_preserves_kinds(self):
        from repro.trace.events import AccessKind

        trace = Trace.uniform(np.arange(6), AccessKind.WRITE)
        sampled = TimeSampler(on_window=1, off_window=1).sample(trace)
        assert all(a.kind is AccessKind.WRITE for a in sampled)

    def test_sampled_subsequence_order_preserved(self):
        trace = Trace.uniform(np.arange(1000))
        sampled = TimeSampler(on_window=7, off_window=13).sample(trace)
        addrs = [a.addr for a in sampled]
        assert addrs == sorted(addrs)
