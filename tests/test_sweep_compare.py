"""Tests for repro.sim.sweep and repro.sim.compare."""

import pytest

from repro.core.config import StreamConfig
from repro.sim.compare import format_size, min_matching_l2_size
from repro.sim.runner import MissTraceCache
from repro.sim.sweep import (
    compare_configs,
    sweep_czone_bits,
    sweep_depth,
    sweep_n_streams,
)


@pytest.fixture(scope="module")
def cache():
    return MissTraceCache()


class TestSweepNStreams:
    def test_interleaved_needs_enough_streams(self, cache):
        results = sweep_n_streams(
            "interleaved", n_streams_values=(1, 2, 8), scale=0.25, cache=cache
        )
        assert results[1].hit_rate < 0.1
        assert results[8].hit_rate > 0.9

    def test_hit_rate_monotone_up_to_saturation(self, cache):
        results = sweep_n_streams(
            "interleaved", n_streams_values=(2, 4, 6, 8), scale=0.25, cache=cache
        )
        rates = [results[n].hit_rate for n in (2, 4, 6, 8)]
        assert rates == sorted(rates)

    def test_configs_preserved(self, cache):
        results = sweep_n_streams("sweep", n_streams_values=(3,), scale=0.25, cache=cache)
        assert results[3].config.n_streams == 3


class TestSweepCzone:
    def test_stride_workload_band(self, cache):
        results = sweep_czone_bits(
            "stride", czone_bits_values=(8, 14, 20), scale=0.25, cache=cache
        )
        # 1KB stride: an 8-bit czone cannot hold two strided refs.
        assert results[8].hit_rate < 0.05
        assert results[14].hit_rate > 0.9

    def test_requires_czone_config(self, cache):
        with pytest.raises(ValueError):
            sweep_czone_bits("stride", base=StreamConfig.filtered(), cache=cache)


class TestSweepDepth:
    def test_depth_does_not_reduce_sequential_hits(self, cache):
        results = sweep_depth("sweep", depth_values=(1, 4), scale=0.25, cache=cache)
        assert results[4].hit_rate >= results[1].hit_rate


class TestCompareConfigs:
    def test_labels_map_to_results(self, cache):
        results = compare_configs(
            "sweep",
            {"plain": StreamConfig.jouppi(n_streams=2), "filtered": StreamConfig.filtered(n_streams=2)},
            scale=0.25,
            cache=cache,
        )
        assert set(results) == {"plain", "filtered"}
        assert results["plain"].hit_rate > 0.99


class TestMinMatchingL2:
    def test_random_workload_matched_by_smallest_l2(self, cache):
        # Streams do nothing on random references, so the smallest L2
        # already reaches the (near-zero) stream hit rate.
        result = min_matching_l2_size("random", cache=cache)
        assert result.matched_size == 64 * 1024
        assert result.stream_stats.hit_rate < 0.05

    def test_sweep_workload_unmatchable(self, cache):
        # A pure one-pass sweep has no reuse for any L2, while streams
        # are nearly perfect: no cache size can match.
        result = min_matching_l2_size("sweep", scale=0.25, cache=cache)
        assert result.matched_size is None
        # The 128B-block L2 configs reach 50% from spatial locality (the
        # L1 misses both halves); no config approaches the stream rate.
        assert all(point.hit_rate <= 0.55 for point in result.l2_hit_rates)

    def test_l2_rates_recorded_per_size(self, cache):
        result = min_matching_l2_size("random", cache=cache)
        sizes = [point.size for point in result.l2_hit_rates]
        assert sizes == sorted(sizes)

    def test_points_carry_config_provenance(self, cache):
        from repro.caches.secondary import PAPER_L2_ASSOCS, PAPER_L2_BLOCKS

        result = min_matching_l2_size("random", cache=cache)
        for point in result.l2_hit_rates:
            assert point.assoc in PAPER_L2_ASSOCS
            assert point.block_size in PAPER_L2_BLOCKS

    def test_binary_search_counts_configs(self, cache):
        result = min_matching_l2_size("random", cache=cache)
        assert result.method == "simulated"
        assert result.configs_simulated >= len(result.l2_hit_rates)


class TestFormatSize:
    def test_kb(self):
        assert format_size(64 * 1024) == "64 KB"
        assert format_size(512 * 1024) == "512 KB"

    def test_mb(self):
        assert format_size(1 << 20) == "1 MB"
        assert format_size(2 << 20) == "2 MB"

    def test_unmatched(self):
        assert format_size(None) == ">4 MB"


class TestAnalyticStreamSweep:
    def _configs(self, n_values=(1, 4, 8)):
        return {n: StreamConfig.filtered(n_streams=n) for n in n_values}

    def test_best_witness_lands_in_bound(self, cache):
        from repro.sim.compare import analytic_stream_sweep

        cells = analytic_stream_sweep(
            "sweep", self._configs(), scale=0.25, cache=cache
        )
        assert list(cells) == [1, 4, 8]
        witnessed = [cell for cell in cells.values() if cell.witnessed]
        assert len(witnessed) == 1  # "best" replays exactly one cell
        (cell,) = witnessed
        assert cell.within_bound
        assert cell.predicted_hit_rate == max(
            c.predicted_hit_rate for c in cells.values()
        )

    def test_none_witness_simulates_nothing(self, cache):
        from repro.sim.compare import analytic_stream_sweep

        cells = analytic_stream_sweep(
            "sweep", self._configs((2, 6)), scale=0.25, cache=cache, witness="none"
        )
        assert all(not cell.witnessed for cell in cells.values())
        assert all(cell.simulated_hit_rate is None for cell in cells.values())
        assert all(cell.within_bound for cell in cells.values())  # vacuous
        for cell in cells.values():
            assert 0.0 <= cell.predicted_hit_rate <= 1.0
            assert 0.0 < cell.bound <= 1.0

    def test_configs_coerced_onto_envelope(self, cache):
        from repro.analytic.streams import in_envelope
        from repro.sim.compare import analytic_stream_sweep

        off_envelope = StreamConfig.filtered(n_streams=4).with_(
            partitioned=True, i_streams=2
        )
        cells = analytic_stream_sweep(
            "sweep", {"x": off_envelope}, scale=0.25, cache=cache, witness="none"
        )
        assert in_envelope(cells["x"].config)
