"""Property-based tests for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.obl import OneBlockLookahead
from repro.baselines.prefetch_cache import PrefetchingCache
from repro.baselines.rpt import ReferencePredictionTable
from repro.caches.cache import MissTrace
from repro.core.nonunit import CzoneFilter
from repro.timing.model import TimingModel, evaluate_timing
from repro.trace.builder import TraceBuilder
from repro.trace.events import AccessKind, Trace

block_seqs = st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200)
addr_seqs = st.lists(st.integers(min_value=0, max_value=1 << 22), min_size=1, max_size=200)


def make_mt(blocks, pcs=None):
    arr = np.asarray(blocks, dtype=np.int64) << 6
    kinds = np.zeros(len(blocks), dtype=np.uint8)
    pcs_arr = np.asarray(pcs, dtype=np.int64) if pcs is not None else None
    return MissTrace(arr, kinds, 6, pcs_arr)


class TestBaselineInvariants:
    @given(blocks=block_seqs, entries=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_obl_buffer_bounded_and_consistent(self, blocks, entries):
        obl = OneBlockLookahead(entries=entries)
        stats = obl.run(make_mt(blocks))
        assert len(obl.buffered_blocks()) <= entries
        assert stats.prefetches_used <= stats.prefetches_issued
        assert stats.hits == stats.prefetches_used
        assert 0.0 <= stats.hit_rate <= 1.0

    @given(blocks=block_seqs, capacity=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_prefetch_cache_bounded_no_duplicates(self, blocks, capacity):
        cache = PrefetchingCache(blocks=capacity)
        cache.run(make_mt(blocks))
        resident = cache.cached_blocks()
        assert len(resident) <= capacity
        assert len(set(resident)) == len(resident)

    @given(blocks=block_seqs)
    @settings(max_examples=50, deadline=None)
    def test_rpt_counters_consistent(self, blocks):
        pcs = [(b % 7) * 4 for b in blocks]  # a few synthetic instructions
        rpt = ReferencePredictionTable(table_entries=4, buffer_entries=4)
        stats = rpt.run(make_mt(blocks, pcs))
        assert stats.hits == stats.prefetches_used
        assert stats.prefetches_used <= stats.prefetches_issued
        assert stats.demand_misses == len(blocks)

    @given(blocks=block_seqs)
    @settings(max_examples=30, deadline=None)
    def test_obl_hit_requires_prior_predecessor(self, blocks):
        """Untagged OBL can only hit block b if block b-1 missed earlier."""
        obl = OneBlockLookahead(entries=256, tagged=False)
        seen = set()
        for block in blocks:
            hit = obl.handle_miss(block << 6)
            if hit:
                assert (block - 1) in seen
            seen.add(block)


class TestCzoneInvariants:
    @given(addrs=addr_seqs, czone_bits=st.integers(min_value=6, max_value=22))
    @settings(max_examples=50, deadline=None)
    def test_table_bounded_and_hits_counted(self, addrs, czone_bits):
        filt = CzoneFilter(entries=4, czone_bits=czone_bits, block_bits=6)
        hits = 0
        for addr in addrs:
            if filt.observe(addr) is not None:
                hits += 1
            assert len(filt) <= 4
        assert filt.hits == hits
        assert filt.observations == len(addrs)

    @given(
        start=st.integers(min_value=0, max_value=1 << 18),
        stride=st.integers(min_value=64, max_value=2048),
    )
    @settings(max_examples=60, deadline=None)
    def test_verified_stride_is_block_consistent(self, start, stride):
        filt = CzoneFilter(entries=4, czone_bits=24, block_bits=6)
        result = None
        for k in range(3):
            result = filt.observe(start + k * stride)
        if result is not None:
            assert result.stride_bytes == stride
            assert result.stride_blocks == stride >> 6


class TestBuilderProperty:
    @given(
        steps=st.lists(
            st.tuples(
                st.sampled_from(["r", "w", "i"]),
                st.integers(min_value=0, max_value=1 << 30),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_builder_roundtrip(self, steps):
        builder = TraceBuilder()
        expected_kinds = []
        for op, addr in steps:
            getattr(builder, {"r": "read", "w": "write", "i": "ifetch"}[op])(addr)
            expected_kinds.append(
                {"r": AccessKind.READ, "w": AccessKind.WRITE, "i": AccessKind.IFETCH}[op]
            )
        trace = builder.build()
        assert len(trace) == len(steps)
        assert [a.addr for a in trace] == [addr for _, addr in steps]
        assert [a.kind for a in trace] == expected_kinds


class TestTimingProperties:
    @given(
        memory_refs=st.integers(min_value=0, max_value=1000),
        traffic=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_amat_bounded_by_components(self, memory_refs, traffic):
        refs = 1000 + memory_refs
        report = evaluate_timing(
            references=refs,
            l1_hits=1000,
            intermediate_hits=0,
            memory_references=memory_refs,
            traffic_blocks=traffic,
            intermediate_cycles=4.0,
            model=TimingModel(),
        )
        model = TimingModel()
        worst_memory = model.memory_cycles / (1 - model.max_utilisation)
        assert model.l1_hit_cycles <= report.amat <= worst_memory
        assert 0.0 <= report.utilisation <= model.max_utilisation

    @given(extra=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_amat_monotone_in_traffic(self, extra):
        def amat(traffic):
            return evaluate_timing(
                references=1000,
                l1_hits=900,
                intermediate_hits=0,
                memory_references=100,
                traffic_blocks=traffic,
                intermediate_cycles=4.0,
                model=TimingModel(),
            ).amat

        assert amat(100 + extra) >= amat(100) - 1e-9
