"""Tests for repro.caches.replacement."""

import random

import pytest

from repro.caches.replacement import (
    FIFOPolicy,
    LRUPolicy,
    POLICY_NAMES,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_evicts_least_recent(self):
        policy = LRUPolicy(2)
        policy.insert("a")
        policy.insert("b")
        assert policy.insert("c") == "a"

    def test_touch_refreshes(self):
        policy = LRUPolicy(2)
        policy.insert("a")
        policy.insert("b")
        policy.touch("a")
        assert policy.insert("c") == "b"

    def test_no_eviction_until_full(self):
        policy = LRUPolicy(3)
        assert policy.insert("a") is None
        assert policy.insert("b") is None
        assert len(policy) == 2

    def test_remove(self):
        policy = LRUPolicy(2)
        policy.insert("a")
        policy.remove("a")
        assert "a" not in policy
        policy.remove("missing")  # no-op

    def test_duplicate_insert_rejected(self):
        policy = LRUPolicy(2)
        policy.insert("a")
        with pytest.raises(ValueError):
            policy.insert("a")

    def test_keys_order(self):
        policy = LRUPolicy(3)
        for key in "abc":
            policy.insert(key)
        policy.touch("a")
        assert policy.keys() == ["b", "c", "a"]


class TestFIFO:
    def test_touch_does_not_refresh(self):
        policy = FIFOPolicy(2)
        policy.insert("a")
        policy.insert("b")
        policy.touch("a")
        assert policy.insert("c") == "a"

    def test_touch_missing_raises(self):
        policy = FIFOPolicy(2)
        with pytest.raises(KeyError):
            policy.touch("missing")


class TestRandom:
    def test_fills_before_evicting(self):
        policy = RandomPolicy(4, rng=random.Random(0))
        for key in "abcd":
            assert policy.insert(key) is None
        assert policy.insert("e") in set("abcd")

    def test_membership_after_eviction(self):
        policy = RandomPolicy(2, rng=random.Random(1))
        policy.insert("a")
        policy.insert("b")
        victim = policy.insert("c")
        assert victim not in policy
        assert "c" in policy
        assert len(policy) == 2

    def test_deterministic_given_seed(self):
        def run(seed):
            policy = RandomPolicy(4, rng=random.Random(seed))
            victims = []
            for i in range(100):
                victims.append(policy.insert(i))
            return victims

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_remove_swaps_last_slot(self):
        policy = RandomPolicy(4, rng=random.Random(0))
        for key in "abcd":
            policy.insert(key)
        policy.remove("b")
        assert "b" not in policy
        assert len(policy) == 3
        assert set(policy.keys()) == set("acd")

    def test_remove_missing_is_noop(self):
        policy = RandomPolicy(2, rng=random.Random(0))
        policy.insert("a")
        policy.remove("zzz")
        assert len(policy) == 1

    def test_touch_missing_raises(self):
        policy = RandomPolicy(2, rng=random.Random(0))
        with pytest.raises(KeyError):
            policy.touch("missing")

    def test_eviction_is_roughly_uniform(self):
        policy = RandomPolicy(4, rng=random.Random(7))
        from collections import Counter

        counts = Counter()
        for key in range(4):
            policy.insert(key)
        previous = set(range(4))
        for i in range(4, 4004):
            victim = policy.insert(i)
            counts[victim is not None] += 1
        assert counts[True] == 4000


class TestFactory:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_make_policy(self, name):
        policy = make_policy(name, 4)
        policy.insert("a")
        assert "a" in policy

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("plru", 4)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0)
