"""Runtime-invariant machinery plus the bugfix-satellite regressions:
thread-safe trace cache, canonical scale keys/digests, and zero-length
edge cases."""

import threading

import numpy as np
import pytest

from repro.caches.cache import Cache, CacheConfig, MissTrace
from repro.check import invariants
from repro.core.bank import StreamBufferBank
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.sim.runner import MissTraceCache, default_cache, resolve_workload_ref
from repro.trace.events import Trace
from repro.trace.store import canonical_scale, trace_digest


@pytest.fixture
def checking():
    previous = invariants.set_enabled(True)
    yield
    invariants.set_enabled(previous)


class TestInvariantMachinery:
    def test_disabled_by_default_without_env(self):
        # conftest doesn't set REPRO_CHECK; the suite runs with checks off.
        assert isinstance(invariants.ENABLED, bool)

    def test_set_enabled_round_trip(self):
        previous = invariants.set_enabled(True)
        assert invariants.ENABLED is True
        invariants.set_enabled(previous)
        assert invariants.ENABLED is previous

    def test_invariant_raises_with_formatting(self):
        with pytest.raises(invariants.InvariantError, match="depth 3 > 2"):
            invariants.invariant(False, "depth %d > %d", 3, 2)
        invariants.invariant(True, "never evaluated %d", 1)

    def test_invariant_error_is_assertion_error(self):
        assert issubclass(invariants.InvariantError, AssertionError)


class TestGatedChecks:
    def test_cache_simulate_checks_pass(self, checking):
        rng = np.random.default_rng(0)
        trace = Trace(
            rng.integers(0, 1 << 14, size=400, dtype=np.int64),
            rng.integers(0, 2, size=400).astype(np.uint8),
        )
        cache = Cache(CacheConfig(capacity=1024, assoc=2, block_size=64))
        cache.simulate(trace)  # must not raise

    def test_cache_detects_corrupted_slots(self, checking):
        cache = Cache(CacheConfig(capacity=1024, assoc=2, block_size=64, policy="random"))
        cache.access_block(1)
        cache._slots[1].append(999)  # corrupt the slot mirror
        with pytest.raises(invariants.InvariantError, match="slot list"):
            cache.check_set_invariants(1)

    def test_bank_checks_pass_and_detect_corruption(self, checking):
        bank = StreamBufferBank(n_streams=2, depth=2)
        bank.allocate(10, 1)
        bank.lookup(10)
        bank.check_invariants()
        bank._lru = [0, 0]  # corrupt the LRU list
        with pytest.raises(invariants.InvariantError, match="LRU"):
            bank.check_invariants()

    def test_prefetcher_run_checks_pass(self, checking):
        addrs = np.arange(64, dtype=np.int64) * 64
        miss = MissTrace(addrs, np.zeros(64, dtype=np.uint8), 6)
        StreamPrefetcher(StreamConfig.filtered(n_streams=4)).run(miss)


class TestThreadSafety:
    """Satellite: MissTraceCache / default_cache under concurrent use."""

    def test_concurrent_get_hammering(self):
        cache = MissTraceCache(max_entries=4)
        errors = []
        results = []

        def worker(seed):
            try:
                for i in range(12):
                    trace, summary = cache.get(
                        "stride", scale=0.02, seed=(seed + i) % 3
                    )
                    results.append((len(trace), summary.misses))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Determinism across threads: every (seed) result is identical.
        assert len(set(results)) <= 3
        assert len(cache) <= 4

    def test_default_cache_single_instance_across_threads(self):
        import repro.sim.runner as runner_mod

        original = runner_mod._DEFAULT_CACHE
        runner_mod._DEFAULT_CACHE = None
        try:
            instances = []
            barrier = threading.Barrier(8)

            def worker():
                barrier.wait()
                instances.append(default_cache())

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len({id(instance) for instance in instances}) == 1
        finally:
            runner_mod._DEFAULT_CACHE = original


class TestCanonicalScale:
    """Satellite: float-noise scales must share keys and digests."""

    def test_float_noise_collapses(self):
        noisy = 0.1 + 0.1 + 0.1  # 0.30000000000000004
        assert noisy != 0.3
        assert canonical_scale(noisy) == canonical_scale(0.3) == 0.3

    def test_idempotent(self):
        for value in (0.3, 1.0, 0.05, 2.5, 1e-6, 123.456):
            assert canonical_scale(canonical_scale(value)) == canonical_scale(value)

    def test_distinct_scales_stay_distinct(self):
        assert canonical_scale(0.3) != canonical_scale(0.31)
        assert canonical_scale(1.0) != canonical_scale(2.0)

    def test_key_and_digest_agree_for_aliases(self):
        noisy = 0.1 + 0.1 + 0.1
        config = CacheConfig.paper_l1()
        assert trace_digest("cgm", noisy, 0, config) == trace_digest("cgm", 0.3, 0, config)
        name_a, scale_a, _, _ = resolve_workload_ref("cgm", noisy, 0)
        name_b, scale_b, _, _ = resolve_workload_ref("cgm", 0.3, 0)
        assert (name_a, scale_a) == (name_b, scale_b)

    def test_cache_shares_entry_across_aliases(self):
        cache = MissTraceCache()
        cache.get("stride", scale=0.3, seed=0)
        cache.get("stride", scale=0.1 + 0.1 + 0.1, seed=0)
        assert len(cache) == 1


class TestZeroLengthEdgeCases:
    """Satellite: empty traces return 0.0 ratios, never divide by zero."""

    def test_stream_stats_hit_rate_empty(self):
        config = StreamConfig.filtered(n_streams=4)
        empty = MissTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8), 6
        )
        stats = StreamPrefetcher(config).run(empty)
        assert stats.demand_misses == 0
        assert stats.hit_rate == 0.0
        assert stats.hit_rate_percent == 0.0
        assert stats.stream_hits == 0
        assert stats.prefetches_issued == 0
        assert stats.bandwidth.eb_measured == 0.0
        assert stats.bandwidth.eb_estimate == 0.0
        assert stats.bandwidth.traffic_ratio == 1.0
        assert stats.lengths.total_hits == 0

    def test_cache_stats_empty(self):
        cache = Cache(CacheConfig(capacity=1024, assoc=2, block_size=64))
        miss = cache.simulate(Trace.empty())
        assert len(miss) == 0
        assert cache.stats.hit_rate == 0.0
        assert cache.stats.miss_rate == 0.0

    def test_l1_summary_empty_trace(self):
        from repro.check.differ import _FixedWorkload
        from repro.sim.runner import simulate_l1

        miss, summary = simulate_l1(_FixedWorkload(Trace.empty()))
        assert len(miss) == 0
        assert summary.accesses == 0
        assert summary.misses == 0
        assert summary.miss_rate == 0.0

    def test_length_histogram_percentages_empty(self):
        from repro.core.lengths import StreamLengthHistogram

        histogram = StreamLengthHistogram()
        assert all(value == 0.0 for value in histogram.percent_hits().values())
