"""Tests for repro.core.bandwidth (EB accounting)."""

import pytest

from repro.core.bandwidth import (
    BandwidthReport,
    extra_bandwidth_estimate,
    extra_bandwidth_measured,
)


class TestMeasuredEB:
    def test_basic_percentage(self):
        assert extra_bandwidth_measured(50, 100) == pytest.approx(50.0)

    def test_zero_misses(self):
        assert extra_bandwidth_measured(0, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            extra_bandwidth_measured(-1, 10)
        with pytest.raises(ValueError):
            extra_bandwidth_measured(1, -10)


class TestEstimateEB:
    def test_paper_formula(self):
        # EB = S * D / M: 30 stream misses, depth 2, 100 L1 misses -> 60%.
        assert extra_bandwidth_estimate(30, 2, 100) == pytest.approx(60.0)

    def test_zero_misses(self):
        assert extra_bandwidth_estimate(10, 2, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            extra_bandwidth_estimate(-1, 2, 10)
        with pytest.raises(ValueError):
            extra_bandwidth_estimate(1, 0, 10)


class TestReport:
    def test_useless_prefetches(self):
        report = BandwidthReport(
            prefetches_issued=120,
            prefetches_used=100,
            l1_misses=200,
            allocations=10,
            depth=2,
        )
        assert report.useless_prefetches == 20
        assert report.eb_measured == pytest.approx(10.0)
        assert report.eb_estimate == pytest.approx(10.0)

    def test_traffic_ratio_identity(self):
        """traffic_ratio == 1 + EB/100 (every demand miss fetches)."""
        report = BandwidthReport(
            prefetches_issued=150,
            prefetches_used=100,
            l1_misses=400,
            allocations=25,
            depth=2,
        )
        assert report.traffic_ratio == pytest.approx(1 + report.eb_measured / 100)

    def test_traffic_ratio_no_misses(self):
        report = BandwidthReport(
            prefetches_issued=0, prefetches_used=0, l1_misses=0, allocations=0, depth=2
        )
        assert report.traffic_ratio == 1.0

    def test_perfect_prefetching_has_no_overhead(self):
        report = BandwidthReport(
            prefetches_issued=100,
            prefetches_used=100,
            l1_misses=101,
            allocations=1,
            depth=2,
        )
        assert report.eb_measured == 0.0
        assert report.traffic_ratio == pytest.approx(1.0, abs=0.01)
