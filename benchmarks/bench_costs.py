"""The paper's bottom line, end to end: equal-cost design comparison.

For each benchmark: take the conventional design (L1 + 2MB L2), compute
the bandwidth the stream design can buy *at the same per-processor
cost* (cost model), then price both designs with the timing model.  The
paper's conclusion — "the cost savings of stream buffers over large
caches can be applied to increase the main memory bandwidth, resulting
in a system with better overall performance" — should hold for the
regular scientific codes and fail for the temporal-reuse codes the
paper itself flags (widely-scattered indirections).
"""

from conftest import publish

from repro.caches.cache import CacheConfig
from repro.caches.secondary import simulate_secondary
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.costs import bandwidth_affordable
from repro.reporting.tables import render_table
from repro.timing import TimingModel, l2_system_timing, stream_system_timing

BENCHES = ("embar", "mgrid", "cgm", "appsp", "applu", "spec77", "bdna", "mdg", "adm")
L2_MB = 2.0
STREAMING = ("embar", "mgrid", "cgm", "appsp", "spec77")


def test_equal_cost_comparison(benchmark, miss_cache, results_dir):
    bandwidth = bandwidth_affordable(L2_MB)
    l2_config = CacheConfig(
        capacity=int(L2_MB * (1 << 20)), assoc=4, block_size=64, policy="lru"
    )
    model = TimingModel()
    stream_model = model.with_bandwidth_factor(bandwidth)

    def run():
        out = {}
        for name in BENCHES:
            mt, summary = miss_cache.get(name)
            streams = StreamPrefetcher(StreamConfig.non_unit(czone_bits=19)).run(mt)
            l2 = simulate_secondary(mt, l2_config, sample_every=4)
            l2_amat = l2_system_timing(summary, l2, model).amat
            stream_amat = stream_system_timing(summary, streams, stream_model).amat
            out[name] = (
                streams.hit_rate_percent,
                100 * l2.local_hit_rate,
                l2_amat,
                stream_amat,
                l2_amat / stream_amat,
            )
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [[name, *[round(v, 2) for v in vals]] for name, vals in data.items()]
    rendered = render_table(
        ["bench", "stream hit %", "2MB L2 hit %", "L2 AMAT", "stream AMAT", "speedup"],
        rows,
        title=(
            f"Equal cost: 2MB-L2 design vs streams at {bandwidth:.1f}x bandwidth "
            "(the paper's conclusion, priced)"
        ),
    )
    publish(results_dir, "cost_comparison", rendered)

    speedups = {name: vals[4] for name, vals in data.items()}
    # The paper's claim holds for the regular scientific codes...
    winners = [name for name in STREAMING if speedups[name] > 1.0]
    assert len(winners) >= len(STREAMING) - 1, f"stream design won only {winners}"
    # ...and the geometric-mean verdict over the suite favours streams.
    product = 1.0
    for value in speedups.values():
        product *= value
    geomean = product ** (1.0 / len(speedups))
    assert geomean > 1.0
