"""Perf gate for the analytic Table-4 screen (PR 4).

Runs the streams-vs-L2 minimum-capacity search over a representative
workload slice three ways:

1. **brute**: the pure-simulation binary search
   (:func:`repro.sim.compare.min_matching_l2_size`);
2. **analytic cold**: the stack-distance screen including the one-off
   profiling pass, against an empty persistent store (this run
   populates it);
3. **analytic warm**: the screen again with profiles loaded from the
   now-warm store — what every later invocation pays.

Gates (process exits non-zero on any failure):

* every analytic ``matched_size`` equals the brute-force one;
* the analytic screen simulates at most 25% of the candidate L2
  configuration grid on every workload;
* the warm analytic search is faster than brute force in aggregate.

The timings and per-workload config budgets are written to
``BENCH_PR4.json`` at the repo root for cross-PR tracking.  Run via
``make profile-bench`` (or ``PYTHONPATH=src python
benchmarks/bench_profile.py``).
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analytic import min_matching_l2_size_analytic
from repro.caches.secondary import PAPER_L2_ASSOCS, PAPER_L2_BLOCKS, PAPER_L2_SIZES
from repro.sim.compare import format_size, min_matching_l2_size
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore

#: (workload, scale) cells: matchable at small/large capacities plus
#: unmatchable streams-win cases, so both screen outcomes are exercised.
CELLS = (
    ("random", 1.0),
    ("sweep", 0.25),
    ("buk", 0.5),
    ("mdg", 0.5),
    ("cgm", 0.5),
    ("trfd", 0.5),
)
GRID_CONFIGS = len(PAPER_L2_SIZES) * len(PAPER_L2_ASSOCS) * len(PAPER_L2_BLOCKS)
MAX_CONFIG_FRACTION = 0.25
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"


def main() -> int:
    failures = []
    rows = []
    brute_total = cold_total = warm_total = 0.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-profiles-") as store_dir:
        store = TraceStore(store_dir)
        cache = MissTraceCache(store=store)
        for name, scale in CELLS:
            cache.get(name, scale=scale)  # L1 simulation out of the timed region

            started = time.perf_counter()
            brute = min_matching_l2_size(name, scale=scale, cache=cache)
            brute_s = time.perf_counter() - started

            started = time.perf_counter()
            cold = min_matching_l2_size_analytic(name, scale=scale, cache=cache)
            cold_s = time.perf_counter() - started

            started = time.perf_counter()
            warm = min_matching_l2_size_analytic(name, scale=scale, cache=cache)
            warm_s = time.perf_counter() - started

            brute_total += brute_s
            cold_total += cold_s
            warm_total += warm_s
            fraction = warm.configs_simulated / GRID_CONFIGS
            agree = brute.matched_size == warm.matched_size == cold.matched_size
            print(
                f"{name:8s} scale={scale:<5g} brute={format_size(brute.matched_size):>7s} "
                f"({brute.configs_simulated:2d} cfg {brute_s:5.2f}s)  "
                f"analytic={format_size(warm.matched_size):>7s} "
                f"({warm.configs_simulated:2d} cfg, cold {cold_s:5.2f}s, warm {warm_s:5.2f}s)"
            )
            if not agree:
                failures.append(
                    f"{name}@{scale:g}: analytic matched "
                    f"{format_size(warm.matched_size)} != brute "
                    f"{format_size(brute.matched_size)}"
                )
            if fraction > MAX_CONFIG_FRACTION:
                failures.append(
                    f"{name}@{scale:g}: analytic simulated {warm.configs_simulated}/"
                    f"{GRID_CONFIGS} configs (> {MAX_CONFIG_FRACTION:.0%})"
                )
            rows.append(
                {
                    "workload": name,
                    "scale": scale,
                    "matched": format_size(warm.matched_size),
                    "agree": agree,
                    "configs_brute": brute.configs_simulated,
                    "configs_analytic": warm.configs_simulated,
                    "seconds_brute": round(brute_s, 4),
                    "seconds_analytic_cold": round(cold_s, 4),
                    "seconds_analytic_warm": round(warm_s, 4),
                }
            )
        stored_profiles = store.n_profiles()

    speedup = brute_total / warm_total if warm_total else float("inf")
    configs_brute = sum(r["configs_brute"] for r in rows)
    configs_analytic = sum(r["configs_analytic"] for r in rows)
    print(
        f"\ntotal: brute {brute_total:.2f}s ({configs_brute} cfg) vs warm analytic "
        f"{warm_total:.2f}s ({configs_analytic} cfg) -> {speedup:.1f}x"
    )
    if speedup < 1.0:
        failures.append(f"warm analytic slower than brute force ({speedup:.2f}x)")

    payload = {
        "pr": 4,
        "benchmark": "bench_profile: analytic Table-4 screen vs brute-force search",
        "grid_configs": GRID_CONFIGS,
        "max_config_fraction": MAX_CONFIG_FRACTION,
        "cells": rows,
        "seconds": {
            "brute": round(brute_total, 3),
            "analytic_cold": round(cold_total, 3),
            "analytic_warm": round(warm_total, 3),
        },
        "configs": {"brute": configs_brute, "analytic": configs_analytic},
        "warm_speedup_vs_brute": round(speedup, 2),
        "store": {"profiles": stored_profiles},
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
