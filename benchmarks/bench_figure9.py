"""Regenerate Figure 9: hit-rate sensitivity to czone size.

Paper reference: fftpde needs czone sizes of roughly 16-23 bits (too
small and three strided references straddle partitions; too large and
unrelated walks alias into one partition); appsp and trfd are satisfied
by any sufficiently large czone.
"""

from conftest import publish, sweep_jobs

from repro.reporting import experiments


def test_figure9(benchmark, miss_cache, results_dir):
    data = benchmark.pedantic(
        lambda: experiments.figure9(cache=miss_cache, jobs=sweep_jobs()),
        iterations=1,
        rounds=1,
    )
    rendered = experiments.render_figure9(data)
    publish(results_dir, "figure9", rendered)

    fftpde = data["fftpde"]
    appsp = data["appsp"]
    trfd = data["trfd"]

    # Shape 1: fftpde has a band - low at both ends, high in the middle.
    best = max(fftpde.values())
    assert best > 60
    assert fftpde[10] < best - 20, "small czone should fail for fftpde"
    assert fftpde[26] < best - 20, "huge czone should fail for fftpde"

    # Shape 2: appsp and trfd stay good once the czone is large enough.
    for series, name in ((appsp, "appsp"), (trfd, "trfd")):
        peak = max(series.values())
        assert series[24] > peak - 8, f"{name} should tolerate large czones"
        assert series[10] < peak - 8, f"{name} should fail with a tiny czone"

    benchmark.extra_info["fftpde_band"] = {
        bits: round(v) for bits, v in fftpde.items()
    }
