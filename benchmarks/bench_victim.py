"""Ablation: direct-mapped L1 + Jouppi victim cache (Section 4.1 aside).

The paper used a 4-way L1 so that conflict misses would not pollute the
stream results, noting that "in a direct-mapped cache, Jouppi's victim
buffers may also be needed".  This bench verifies that claim: with a
direct-mapped L1, conflict misses are irregular and depress the stream
hit rate; a 4-entry victim buffer recovers most of the 4-way result.
"""

from conftest import publish

from repro.caches.cache import Cache, CacheConfig
from repro.caches.victim import CacheWithVictim, VictimCacheConfig
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.reporting.tables import render_table
from repro.trace.compress import compress_consecutive
from repro.workloads import get_workload


def _run(name, l1_kind):
    workload = get_workload(name)
    trace = compress_consecutive(workload.trace()).trace
    if l1_kind == "4-way":
        cache = Cache(CacheConfig.paper_l1())
        miss_trace = cache.simulate(trace)
        misses = cache.stats.misses
    elif l1_kind == "direct":
        cache = Cache(
            CacheConfig(capacity=64 * 1024, assoc=1, block_size=64, policy="lru")
        )
        miss_trace = cache.simulate(trace)
        misses = cache.stats.misses
    else:  # direct + victim
        system = CacheWithVictim(
            CacheConfig(capacity=64 * 1024, assoc=1, block_size=64, policy="lru"),
            VictimCacheConfig(entries=4),
        )
        miss_trace = system.simulate(trace)
        misses = miss_trace.n_misses
    stats = StreamPrefetcher(StreamConfig.filtered()).run(miss_trace)
    return misses, stats.hit_rate_percent


def test_victim_cache(benchmark, miss_cache, results_dir):
    names = ("mgrid", "buk")

    def run():
        return {
            name: {kind: _run(name, kind) for kind in ("4-way", "direct", "direct+victim")}
            for name in names
        }

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = []
    for name, by_kind in data.items():
        for kind, (misses, hit) in by_kind.items():
            rows.append([name, kind, misses, hit])
    rendered = render_table(
        ["bench", "L1", "L1 misses", "stream hit %"],
        rows,
        title="Ablation: direct-mapped L1 with and without a victim cache",
    )
    publish(results_dir, "ablation_victim", rendered)

    for name, by_kind in data.items():
        direct_misses = by_kind["direct"][0]
        victim_misses = by_kind["direct+victim"][0]
        four_way_misses = by_kind["4-way"][0]
        # Conflicts inflate the direct-mapped miss count...
        assert direct_misses > four_way_misses, name
        # ...and the victim buffer claws a large share back.
        recovered = (direct_misses - victim_misses) / max(
            direct_misses - four_way_misses, 1
        )
        assert recovered > 0.3, f"{name}: victim recovered only {recovered:.0%}"
