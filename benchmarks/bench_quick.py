"""Quick perf gate: serial cold-start vs warm-store parallel sweeps.

Runs one reduced replication grid (4 workloads x 10 stream configs) three
ways through the sweep engine —

1. **serial cold**: ``jobs=1``, no store, fresh in-process cache (the
   pre-engine behaviour: every invocation recomputes every L1 trace);
2. **parallel cold**: ``jobs=4`` against an empty persistent store (this
   is the run that populates it);
3. **parallel warm**: ``jobs=4`` against the now-warm store (what every
   later ``make bench`` / figure replication pays).

It asserts the warm parallel pass is bit-identical to the serial pass
and at least 3x faster than the serial cold start, then writes the
numbers to ``BENCH_PR1.json`` at the repo root so later PRs have a
timing trajectory to compare against.

A fourth phase probes the **simulation service** (``repro.service``):
it boots an in-process server over the warm store, fires 100 concurrent
duplicate sweep requests at it over real HTTP, and records throughput
plus the coalescing/caching counters to ``BENCH_PR2.json``.  The gate:
every request answers 200 and the grid executes at most once — the
queue → coalesce → batch path must collapse the other 99 requests.

A fifth phase prices the **telemetry subsystem** (``repro.obs``) on
the same warm store: traced vs untraced sweeps, gated at 5% overhead,
recorded in ``BENCH_PR5.json`` (see ``bench_obs.py``).

A sixth phase gates the **vectorized replay engine**
(``repro.sim.vector``): scalar vs vector ``l1.simulate`` span times and
the warm jobs=1 sweep wall time, bit-identical across engines, recorded
in ``BENCH_PR6.json`` (see ``bench_vector.py``).

Run via ``make bench-quick`` (or ``PYTHONPATH=src python
benchmarks/bench_quick.py``).
"""

from __future__ import annotations

import asyncio
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import StreamConfig
from repro.service.client import arequest
from repro.service.server import ServiceConfig, ServiceServer, SimulationService
from repro.sim.parallel import SweepTask, TaskError, run_grid
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore

WORKLOADS = ("embar", "mgrid", "cgm", "buk")
N_STREAMS = tuple(range(1, 11))
JOBS = 4
MIN_SPEEDUP = 3.0
SERVICE_REQUESTS = 100
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
SERVICE_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"


def build_tasks() -> list:
    return [
        SweepTask(key=(name, n), workload=name, config=StreamConfig.jouppi(n_streams=n))
        for name in WORKLOADS
        for n in N_STREAMS
    ]


def timed_grid(label: str, **kwargs) -> tuple:
    tasks = build_tasks()
    started = time.perf_counter()
    results = run_grid(tasks, **kwargs)
    elapsed = time.perf_counter() - started
    errors = [r for r in results if isinstance(r, TaskError)]
    if errors:
        raise SystemExit(f"{label}: {len(errors)} grid cells failed: {errors[0]}")
    print(f"{label:24s} {elapsed:7.2f}s  ({len(tasks) / elapsed:6.1f} cells/s)")
    return elapsed, [r.streams for r in results]


async def service_probe(store_dir: str) -> dict:
    """Fire concurrent duplicate sweeps at a warm-store service instance."""
    n_cells = len(WORKLOADS) * len(N_STREAMS)
    payload = {
        "workloads": list(WORKLOADS),
        "n_streams": list(N_STREAMS),
        "timeout_s": 600,
    }
    server = ServiceServer(
        SimulationService(
            ServiceConfig(
                jobs=1,
                store_root=store_dir,
                max_queue=2 * SERVICE_REQUESTS,
            )
        )
    )
    host, port = await server.start()
    try:
        started = time.perf_counter()
        responses = await asyncio.gather(
            *(
                arequest(host, port, "POST", "/v1/sweep", payload, timeout=600)
                for _ in range(SERVICE_REQUESTS)
            )
        )
        elapsed = time.perf_counter() - started
        _, metrics = await arequest(host, port, "GET", "/metrics.json")
    finally:
        await server.close()

    statuses = sorted({status for status, _ in responses})
    counters = metrics["counters"]
    return {
        "requests": SERVICE_REQUESTS,
        "unique_cells": n_cells,
        "statuses": statuses,
        "seconds": round(elapsed, 3),
        "requests_per_second": round(SERVICE_REQUESTS / elapsed, 1),
        "cells_per_second": round(SERVICE_REQUESTS * n_cells / elapsed, 1),
        "counters": {
            name: counters[name]
            for name in (
                "requests_total",
                "requests_rejected_total",
                "cells_requested_total",
                "cells_executed_total",
                "coalesce_hits_total",
                "result_cache_hits_total",
                "store_fastpath_hits_total",
                "batches_total",
            )
        },
    }


def main() -> int:
    print(f"grid: {len(WORKLOADS)} workloads x {len(N_STREAMS)} configs, jobs={JOBS}")
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as store_dir:
        store = TraceStore(store_dir)
        serial_s, serial_stats = timed_grid(
            "serial cold (no store)", jobs=1, cache=MissTraceCache()
        )
        parallel_cold_s, _ = timed_grid("parallel cold (fills store)", jobs=JOBS, store=store)
        parallel_warm_s, warm_stats = timed_grid("parallel warm store", jobs=JOBS, store=store)
        stored_traces, stored_results = len(store), store.n_results()

        probe = asyncio.run(service_probe(store_dir))
        print(
            f"{'service (100x dup sweep)':24s} {probe['seconds']:7.2f}s  "
            f"({probe['requests_per_second']:6.1f} req/s, "
            f"{probe['counters']['cells_executed_total']} cells executed)"
        )

        import bench_obs

        obs_payload = bench_obs.overhead_probe(build_tasks(), store)

        import bench_vector

        vector_payload = bench_vector.vector_probe(build_tasks(), store)

    identical = serial_stats == warm_stats
    speedup = serial_s / parallel_warm_s
    print(f"\nwarm-vs-cold speedup: {speedup:.1f}x   bit-identical: {identical}")

    payload = {
        "pr": 1,
        "benchmark": "bench_quick: replication sweep via repro.sim.parallel",
        "grid": {
            "workloads": list(WORKLOADS),
            "n_streams": list(N_STREAMS),
            "cells": len(WORKLOADS) * len(N_STREAMS),
            "jobs": JOBS,
        },
        "seconds": {
            "serial_cold": round(serial_s, 3),
            "parallel_cold": round(parallel_cold_s, 3),
            "parallel_warm": round(parallel_warm_s, 3),
        },
        "warm_speedup_vs_serial_cold": round(speedup, 2),
        "bit_identical_stats": identical,
        "store": {"traces": stored_traces, "results": stored_results},
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    service_payload = {
        "pr": 2,
        "benchmark": "bench_quick: concurrent duplicate sweeps via repro.service",
        "grid": payload["grid"],
        **probe,
        "environment": payload["environment"],
    }
    SERVICE_OUTPUT.write_text(json.dumps(service_payload, indent=2) + "\n")
    print(f"wrote {SERVICE_OUTPUT}")

    if not identical:
        print("FAIL: warm parallel stats differ from serial stats", file=sys.stderr)
        return 1
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.1f}x < {MIN_SPEEDUP}x", file=sys.stderr)
        return 1
    if probe["statuses"] != [200]:
        print(f"FAIL: service statuses {probe['statuses']} != [200]", file=sys.stderr)
        return 1
    executed = probe["counters"]["cells_executed_total"]
    if executed > probe["unique_cells"]:
        print(
            f"FAIL: service executed {executed} cells for a "
            f"{probe['unique_cells']}-cell grid (coalescing broken)",
            file=sys.stderr,
        )
        return 1
    if not obs_payload["pass"]:
        print(
            f"FAIL: telemetry overhead "
            f"{100 * obs_payload['overhead_fraction']:.1f}% > "
            f"{100 * obs_payload['max_overhead_fraction']:.0f}%",
            file=sys.stderr,
        )
        return 1
    if not vector_payload["pass"]:
        print(
            "FAIL: vector engine speedup below gate "
            f"(l1 {vector_payload['l1_simulate_span']['speedup']}x, "
            f"sweep {vector_payload['warm_sweep_jobs1']['speedup']}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
