"""Quick perf gate: serial cold-start vs warm-store parallel sweeps.

Runs one reduced replication grid (4 workloads x 10 stream configs) three
ways through the sweep engine —

1. **serial cold**: ``jobs=1``, no store, fresh in-process cache (the
   pre-engine behaviour: every invocation recomputes every L1 trace);
2. **parallel cold**: ``jobs=4`` against an empty persistent store (this
   is the run that populates it);
3. **parallel warm**: ``jobs=4`` against the now-warm store (what every
   later ``make bench`` / figure replication pays).

It asserts the warm parallel pass is bit-identical to the serial pass
and at least 3x faster than the serial cold start, then writes the
numbers to ``BENCH_PR1.json`` at the repo root so later PRs have a
timing trajectory to compare against.

Run via ``make bench-quick`` (or ``PYTHONPATH=src python
benchmarks/bench_quick.py``).
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import StreamConfig
from repro.sim.parallel import SweepTask, TaskError, run_grid
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore

WORKLOADS = ("embar", "mgrid", "cgm", "buk")
N_STREAMS = tuple(range(1, 11))
JOBS = 4
MIN_SPEEDUP = 3.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"


def build_tasks() -> list:
    return [
        SweepTask(key=(name, n), workload=name, config=StreamConfig.jouppi(n_streams=n))
        for name in WORKLOADS
        for n in N_STREAMS
    ]


def timed_grid(label: str, **kwargs) -> tuple:
    tasks = build_tasks()
    started = time.perf_counter()
    results = run_grid(tasks, **kwargs)
    elapsed = time.perf_counter() - started
    errors = [r for r in results if isinstance(r, TaskError)]
    if errors:
        raise SystemExit(f"{label}: {len(errors)} grid cells failed: {errors[0]}")
    print(f"{label:24s} {elapsed:7.2f}s  ({len(tasks) / elapsed:6.1f} cells/s)")
    return elapsed, [r.streams for r in results]


def main() -> int:
    print(f"grid: {len(WORKLOADS)} workloads x {len(N_STREAMS)} configs, jobs={JOBS}")
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as store_dir:
        store = TraceStore(store_dir)
        serial_s, serial_stats = timed_grid(
            "serial cold (no store)", jobs=1, cache=MissTraceCache()
        )
        parallel_cold_s, _ = timed_grid("parallel cold (fills store)", jobs=JOBS, store=store)
        parallel_warm_s, warm_stats = timed_grid("parallel warm store", jobs=JOBS, store=store)
        stored_traces, stored_results = len(store), store.n_results()

    identical = serial_stats == warm_stats
    speedup = serial_s / parallel_warm_s
    print(f"\nwarm-vs-cold speedup: {speedup:.1f}x   bit-identical: {identical}")

    payload = {
        "pr": 1,
        "benchmark": "bench_quick: replication sweep via repro.sim.parallel",
        "grid": {
            "workloads": list(WORKLOADS),
            "n_streams": list(N_STREAMS),
            "cells": len(WORKLOADS) * len(N_STREAMS),
            "jobs": JOBS,
        },
        "seconds": {
            "serial_cold": round(serial_s, 3),
            "parallel_cold": round(parallel_cold_s, 3),
            "parallel_warm": round(parallel_warm_s, 3),
        },
        "warm_speedup_vs_serial_cold": round(speedup, 2),
        "bit_identical_stats": identical,
        "store": {"traces": stored_traces, "results": stored_results},
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if not identical:
        print("FAIL: warm parallel stats differ from serial stats", file=sys.stderr)
        return 1
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.1f}x < {MIN_SPEEDUP}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
