"""Regenerate Figure 3: stream hit rate vs number of streams.

Paper reference shapes: the majority of benchmarks reach 50-80% hit
rates; curves rise with stream count and plateau by seven-to-eight
streams; embar/mgrid/cgm sit at the top; fftpde/appsp (non-unit strides)
and adm/dyfesm (indirection) sit at the bottom.
"""

from conftest import publish, sweep_jobs

from repro.reporting import experiments
from repro.reporting.paper_data import FIGURE3_HIT_AT_10


def test_figure3(benchmark, miss_cache, results_dir):
    data = benchmark.pedantic(
        lambda: experiments.figure3(cache=miss_cache, jobs=sweep_jobs()),
        iterations=1,
        rounds=1,
    )
    rendered = experiments.render_figure3(data)
    publish(results_dir, "figure3", rendered)

    final = {name: series[10] for name, series in data.items()}

    # Shape 1: the majority of benchmarks land in the 50-80+% band.
    in_band = sum(1 for rate in final.values() if rate >= 50)
    assert in_band >= 9, f"only {in_band} benchmarks above 50%"

    # Shape 2: curves saturate - ten streams adds little over eight.
    for name, series in data.items():
        assert series[10] - series[8] < 6, name

    # Shape 3: the paper's best and worst groups are ours too.
    for name in ("embar", "mgrid", "cgm"):
        assert final[name] > 70, name
    for name in ("fftpde", "adm", "dyfesm"):
        assert final[name] < 40, name

    # Shape 4: every benchmark within a generous band of the paper curve.
    for name, paper_rate in FIGURE3_HIT_AT_10.items():
        assert abs(final[name] - paper_rate) <= 20, (
            f"{name}: measured {final[name]:.1f} vs paper ~{paper_rate}"
        )
    benchmark.extra_info["hit_at_10"] = {k: round(v, 1) for k, v in final.items()}
