"""Regenerate Table 4: stream buffers versus secondary caches at scale.

Paper reference: growing the input grows the secondary cache needed to
match the streams (appsp 128KB -> 1MB, appbt 512KB -> 2MB, applu 1MB ->
2MB, mgrid 2MB -> 4MB) while the stream hit rate holds or improves —
except cgm, whose larger input has an irregular sparse pattern that
hurts the streams (85% -> 51%, matched by a mere 64KB cache).
"""

from conftest import publish

from repro.reporting import experiments


def _rank(size):
    """Comparable capacity: None (no match at 4MB) ranks above all."""
    return size if size is not None else 1 << 40


def test_table4(benchmark, miss_cache, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.table4(cache=miss_cache), iterations=1, rounds=1
    )
    rendered = experiments.render_table4(rows)
    publish(results_dir, "table4", rendered)

    by_bench = {}
    for row in rows:
        by_bench.setdefault(row.name, []).append(row)
    for pair in by_bench.values():
        pair.sort(key=lambda r: r.scale)

    # Shape 1: the matching L2 size grows with the input for the four
    # regular benchmarks.
    for name in ("appsp", "appbt", "applu", "mgrid"):
        small, large = by_bench[name]
        assert _rank(large.match.matched_size) >= _rank(small.match.matched_size), name

    # Shape 2: their stream hit rates hold or improve with scale.
    for name in ("appsp", "appbt", "applu"):
        small, large = by_bench[name]
        assert large.stream_hit_pct >= small.stream_hit_pct - 3, name
    small, large = by_bench["mgrid"]
    assert large.stream_hit_pct >= small.stream_hit_pct - 6

    # Shape 3: the cgm anomaly - the bigger, more irregular input hurts
    # the streams and a small cache suffices to match them.
    cgm_small, cgm_large = by_bench["cgm"]
    assert cgm_large.stream_hit_pct < cgm_small.stream_hit_pct - 15
    assert _rank(cgm_large.match.matched_size) < _rank(cgm_small.match.matched_size)

    benchmark.extra_info["rows"] = [
        (r.name, r.scale, round(r.stream_hit_pct, 1), r.min_l2) for r in rows
    ]
