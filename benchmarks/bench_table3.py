"""Regenerate Table 3: distribution of stream lengths.

Paper reference: hits concentrate at the two ends — lengths 1-5 and >20
— with thin middles; appbt/adm/dyfesm/qcd are short-dominant, while
embar/mgrid/cgm/trfd draw almost everything from streams longer than 20.
"""

from conftest import publish

from repro.reporting import experiments
from repro.reporting.paper_data import TABLE3_SHORT_LONG


def test_table3(benchmark, miss_cache, results_dir):
    data = benchmark.pedantic(
        lambda: experiments.table3(cache=miss_cache), iterations=1, rounds=1
    )
    rendered = experiments.render_table3(data)
    publish(results_dir, "table3", rendered)

    # Rows are percentages.
    for name, row in data.items():
        assert sum(row) < 100.5, name

    short = {name: row[0] for name, row in data.items()}
    long_ = {name: row[4] for name, row in data.items()}

    # Shape 1: bimodality - ends dominate the middle for most benchmarks.
    bimodal = sum(
        1 for row in data.values() if row[0] + row[4] > row[1] + row[2] + row[3]
    )
    assert bimodal >= 11

    # Shape 2: the paper's short-dominant benchmarks are ours.
    for name in ("appbt", "adm", "qcd"):
        assert short[name] > 40, name
    # Shape 3: the paper's long-dominant benchmarks are ours.
    for name in ("embar", "mgrid", "cgm", "trfd", "spec77"):
        assert long_[name] > 60, name

    # Shape 4: short-vs-long dominance agrees with the paper per row.
    agree = sum(
        1
        for name, (p_short, p_long) in TABLE3_SHORT_LONG.items()
        if (short[name] >= long_[name]) == (p_short >= p_long)
        or abs(short[name] - long_[name]) < 20
    )
    assert agree >= 11, f"dominance agrees on only {agree}/15"
    benchmark.extra_info["short_pct"] = {k: round(v) for k, v in short.items()}
