"""Fleet benchmark: zipf load vs 1 frontend + N worker subprocesses.

For each fleet size (0, 2 and 4 workers) this boots a real ``repro
serve`` frontend plus worker subprocesses (the production topology:
separate processes, separate stores, chunk dispatch over TCP), then
drives the :mod:`repro.fleet.loadgen` harness against it — thousands of
logical client sessions sampling single-cell requests from a
Zipf-skewed config universe through a bounded connection window.

Recorded per size: throughput, latency percentiles, status mix, and the
dedup/dispatch counters that prove the fleet executed each touched cell
at most once cluster-wide.  Results land in ``BENCH_PR7.json`` next to
the earlier anchors (PR 2's single-host service probe measured 151.9
req/s on duplicate sweeps; the zipf workload here is different — the
anchor rides along for trajectory, not apples-to-apples).

Gates (exit 1 on violation):

* every request answers 200 (no transport failures, no 429/504 — the
  queue is sized for the window);
* cluster-wide coalescing holds at every size: executed cells <= cells
  the load actually touched;
* the 2-worker fleet answers at least as many req/s as 0 workers x 0.7
  (dispatch overhead must not eat the fleet).

Run via ``make fleet-bench`` (or ``PYTHONPATH=src python
benchmarks/bench_fleet.py``); CI runs a reduced profile via
``--profile ci``.
"""

from __future__ import annotations

import argparse
import json
import platform
import signal
import sys
import time
from pathlib import Path

import asyncio

from repro.fleet.loadgen import LoadSpec, run_load
from repro.fleet.smoke import _read_address, _spawn, _wait_for_workers
from repro.service.client import ServiceClient

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"
SINGLE_HOST_ANCHOR_REQ_S = 151.9  # BENCH_PR2.json, duplicate-sweep probe
FLEET_SIZES = (0, 2, 4)
MIN_FLEET_VS_LOCAL = 0.7

PROFILES = {
    # thousands of sessions, the headline run
    "full": LoadSpec(clients=2000, requests_per_client=1, max_inflight=256),
    # CI: same shape, smaller universe and session count
    "ci": LoadSpec(
        clients=400,
        requests_per_client=1,
        max_inflight=128,
        n_streams=tuple(range(1, 13)),
    ),
}


def _measure_fleet(n_workers: int, spec: LoadSpec, root: Path) -> dict:
    """Boot 1 frontend + n workers, run the load, tear down; stats."""
    procs = []
    try:
        frontend = _spawn(
            [
                "--trace-store",
                str(root / f"front{n_workers}"),
                "--max-queue",
                str(4 * spec.max_inflight),
            ]
        )
        procs.append(frontend)
        host, port = _read_address(frontend)
        for i in range(n_workers):
            worker = _spawn(
                [
                    "--worker",
                    "--trace-store",
                    str(root / f"w{n_workers}.{i}"),
                    "--register",
                    f"http://{host}:{port}",
                ]
            )
            procs.append(worker)
            _read_address(worker)

        client = ServiceClient(host, port, timeout=120.0)
        if n_workers:
            _wait_for_workers(client, want=n_workers)

        stats = asyncio.run(run_load(host, port, spec))

        counters = client.metrics()["counters"]
        stats["workers"] = n_workers
        stats["counters"] = {
            name: counters.get(name, 0)
            for name in (
                "requests_total",
                "requests_rejected_total",
                "cells_executed_total",
                "coalesce_hits_total",
                "result_cache_hits_total",
                "store_fastpath_hits_total",
                "fleet_dispatch_total",
                "fleet_dispatch_cells_total",
                "fleet_retry_total",
                "fleet_failover_cells_total",
                "fleet_local_fallback_cells_total",
            )
        }

        for proc in procs:
            proc.send_signal(signal.SIGINT)
        for proc in procs:
            if proc.wait(timeout=30) != 0:
                raise RuntimeError(f"pid {proc.pid} exited non-zero on SIGINT")
        return stats
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--profile", choices=sorted(PROFILES), default="full")
    args = parser.parse_args()
    spec = PROFILES[args.profile]

    import tempfile

    runs = []
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as root:
        for n_workers in FLEET_SIZES:
            print(
                f"fleet of {n_workers} worker(s): {spec.clients} sessions, "
                f"window {spec.max_inflight} ...",
                flush=True,
            )
            stats = _measure_fleet(n_workers, spec, Path(root))
            runs.append(stats)
            print(
                f"  {stats['requests_per_second']:8.1f} req/s   "
                f"p50 {stats['latency_ms']['p50']:7.1f} ms   "
                f"p99 {stats['latency_ms']['p99']:8.1f} ms   "
                f"{stats['counters']['cells_executed_total']} cells executed, "
                f"{stats['counters']['fleet_dispatch_cells_total']} dispatched",
                flush=True,
            )

    payload = {
        "pr": 7,
        "benchmark": "bench_fleet: zipf load vs 1 frontend + N worker subprocesses",
        "profile": args.profile,
        "load": {
            "clients": spec.clients,
            "requests_per_client": spec.requests_per_client,
            "max_inflight": spec.max_inflight,
            "universe_cells": len(spec.workloads) * len(spec.n_streams),
            "zipf_s": spec.zipf_s,
            "scale": spec.scale,
        },
        "single_host_anchor_req_s": SINGLE_HOST_ANCHOR_REQ_S,
        "runs": runs,
        "total_seconds": round(time.perf_counter() - started, 1),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    failures = []
    for stats in runs:
        if set(stats["statuses"]) != {"200"}:
            failures.append(
                f"{stats['workers']} workers: statuses {stats['statuses']}"
            )
        executed = stats["counters"]["cells_executed_total"]
        if executed > stats["unique_cells_requested"]:
            failures.append(
                f"{stats['workers']} workers: {executed} cells executed for "
                f"{stats['unique_cells_requested']} touched (dedup broken)"
            )
    by_workers = {stats["workers"]: stats for stats in runs}
    local = by_workers.get(0)
    fleet2 = by_workers.get(2)
    if local and fleet2:
        floor = MIN_FLEET_VS_LOCAL * local["requests_per_second"]
        if fleet2["requests_per_second"] < floor:
            failures.append(
                f"2-worker fleet {fleet2['requests_per_second']} req/s under "
                f"{floor:.1f} (0 workers ran {local['requests_per_second']})"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
