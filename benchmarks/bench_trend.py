"""Cross-PR benchmark trend gate: ``make bench-trend``.

Every PR that lands a performance claim writes a ``BENCH_PR<N>.json``
at the repo root.  Individually each file proves its own PR's claim;
what none of them can show is a *regression across PRs* — e.g. the
vector engine's warm-sweep speedup quietly eroding three PRs after it
was measured.  This gate aggregates the committed BENCH files into
per-metric series (a "series" is one conceptual metric tracked through
whichever PR files measured it, newest file last) and fails when the
latest point of any tracked headline metric is more than
``BENCH_TREND_TOLERANCE`` (default 10%) worse than the best point of
its series.  Boolean pass/fail gates recorded by a BENCH file must
simply still hold.

Two deliberate exclusions: near-zero noisy ratios (PR5's
``overhead_fraction`` swings sign run to run — its ``pass`` gate is the
tracked signal instead) and wall-clock seconds measured on different
machines (speedups and fractions are dimensionless, so they travel).

Writes ``BENCH_TREND.json`` (the full series table plus the verdict)
and exits 1 on any regression or broken gate.  Missing BENCH files
skip their points with a warning — the gate must stay runnable on a
partial checkout.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_TREND.json"
DEFAULT_TOLERANCE = 0.10

# One conceptual metric per entry; points are (bench file, dotted JSON
# path), oldest PR first.  "higher" metrics regress downward, "lower"
# metrics regress upward.
SERIES = [
    {
        "name": "warm_sweep_speedup_vs_serial_cold",
        "better": "higher",
        "points": [("BENCH_PR1.json", "warm_speedup_vs_serial_cold")],
    },
    {
        "name": "service_requests_per_second",
        "better": "higher",
        "points": [
            ("BENCH_PR2.json", "requests_per_second"),
            ("BENCH_PR7.json", "single_host_anchor_req_s"),
        ],
    },
    {
        "name": "service_cells_per_second",
        "better": "higher",
        "points": [("BENCH_PR2.json", "cells_per_second")],
    },
    {
        "name": "analytic_screen_config_fraction",
        "better": "lower",
        "points": [
            ("BENCH_PR4.json", "max_config_fraction"),
            ("BENCH_PR8.json", "max_config_fraction"),
        ],
    },
    {
        "name": "analytic_warm_speedup_vs_brute",
        "better": "higher",
        "points": [("BENCH_PR4.json", "warm_speedup_vs_brute")],
    },
    {
        "name": "vector_l1_simulate_speedup",
        "better": "higher",
        "points": [("BENCH_PR6.json", "l1_simulate_span.speedup")],
    },
    {
        "name": "vector_warm_sweep_speedup",
        "better": "higher",
        "points": [("BENCH_PR6.json", "warm_sweep_jobs1.speedup")],
    },
    {
        "name": "analytic_stream_sweep_simulated_fraction",
        "better": "lower",
        "points": [("BENCH_PR8.json", "streams.simulated_fraction")],
    },
    {
        "name": "mechzoo_warm_speedup",
        "better": "higher",
        "points": [("BENCH_PR9.json", "seconds.speedup")],
    },
]

# Boolean gates that must simply still be true in the committed files.
GATES = [
    ("BENCH_PR5.json", "pass"),
    ("BENCH_PR6.json", "pass"),
]


def dig(payload: dict, path: str):
    """Resolve a dotted path ("a.b.c") into a nested dict, or None."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def load_bench(cache: dict, name: str):
    """Load (and memoise) one BENCH file; None when absent/unreadable."""
    if name not in cache:
        try:
            cache[name] = json.loads((ROOT / name).read_text())
        except (OSError, ValueError) as exc:
            print(f"bench-trend: skipping {name}: {exc}", file=sys.stderr)
            cache[name] = None
    return cache[name]


def evaluate(tolerance: float) -> dict:
    """Build the full trend report: every series scored, gates checked."""
    cache: dict = {}
    series_reports = []
    for spec in SERIES:
        points = []
        for file_name, path in spec["points"]:
            payload = load_bench(cache, file_name)
            value = dig(payload, path) if payload else None
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                points.append({"file": file_name, "path": path, "value": value})
            else:
                print(
                    f"bench-trend: {file_name}:{path} missing, point skipped",
                    file=sys.stderr,
                )
        report = {
            "name": spec["name"],
            "better": spec["better"],
            "points": points,
        }
        if points:
            values = [p["value"] for p in points]
            latest = values[-1]
            best = max(values) if spec["better"] == "higher" else min(values)
            if spec["better"] == "higher":
                # Fractional shortfall of the latest point vs the series best.
                drift = (best - latest) / best if best else 0.0
            else:
                drift = (latest - best) / best if best else 0.0
            report.update(
                latest=latest,
                best=best,
                drift=round(drift, 4),
                regressed=drift > tolerance,
            )
        series_reports.append(report)
    gate_reports = []
    for file_name, path in GATES:
        payload = load_bench(cache, file_name)
        value = dig(payload, path) if payload else None
        gate_reports.append(
            {
                "file": file_name,
                "path": path,
                "value": value,
                # An absent file skips; a present-but-false gate fails.
                "ok": value is not False,
            }
        )
    regressions = [s["name"] for s in series_reports if s.get("regressed")]
    broken_gates = [g["file"] for g in gate_reports if not g["ok"]]
    return {
        "benchmark": "bench_trend: cross-PR headline-metric regression gate",
        "tolerance": tolerance,
        "series": series_reports,
        "gates": gate_reports,
        "regressions": regressions,
        "broken_gates": broken_gates,
        "pass": not regressions and not broken_gates,
    }


def main() -> int:
    """Score the trend, print the table, write BENCH_TREND.json."""
    tolerance = float(os.environ.get("BENCH_TREND_TOLERANCE", DEFAULT_TOLERANCE))
    report = evaluate(tolerance)
    print(f"{'metric':<42s} {'best':>9s} {'latest':>9s} {'drift':>7s}  verdict")
    for series in report["series"]:
        if "latest" not in series:
            print(f"{series['name']:<42s} {'-':>9s} {'-':>9s} {'-':>7s}  no data")
            continue
        verdict = "REGRESSED" if series["regressed"] else "ok"
        print(
            f"{series['name']:<42s} {series['best']:9.3f} "
            f"{series['latest']:9.3f} {100 * series['drift']:6.1f}%  {verdict}"
        )
    for gate in report["gates"]:
        state = "ok" if gate["ok"] else "FAIL"
        print(f"gate {gate['file']}:{gate['path']} = {gate['value']}  {state}")
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    if not report["pass"]:
        print(
            "bench-trend FAIL: "
            + ", ".join(report["regressions"] + report["broken_gates"]),
            file=sys.stderr,
        )
        return 1
    print(
        f"bench-trend PASS: {len(report['series'])} series within "
        f"{100 * tolerance:.0f}% of best, {len(report['gates'])} gates hold"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
