"""Perf/parity gate for the PR 8 analytic layer.

Two halves, one exit code:

1. **Screened Table-4 search** — re-runs the `bench_profile.py` slice
   with the combined-locality set-associative estimator and its shrunk
   `ESTIMATOR_SLACK` (0.03 -> 0.01).  Gates: every matched size equals
   brute force, per-workload simulated-config fraction stays within
   PR 4's 25% ceiling, and the slice-wide simulated-config count is
   **strictly below** the `BENCH_PR4.json` baseline — the tighter slack
   must buy real pruning, not just match the old screen.
2. **Closed-form stream sweeps** — predicts an ``n_streams`` ladder per
   workload from one stored miss spectrum
   (:func:`repro.sim.compare.analytic_stream_sweep`) and replays the
   best cell of each ladder for real.  Gates: every witness lands
   inside its prediction's declared error bound, and the sweep
   simulates only the witnessed fraction of its cells.

Results land in ``BENCH_PR8.json`` (the PR 4 baseline numbers ride
along for comparison).  Run via ``make analytic-bench`` (or
``PYTHONPATH=src python benchmarks/bench_analytic.py``).
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analytic import min_matching_l2_size_analytic
from repro.analytic.screen import ESTIMATOR_SLACK
from repro.caches.secondary import PAPER_L2_ASSOCS, PAPER_L2_BLOCKS, PAPER_L2_SIZES
from repro.core.config import StreamConfig
from repro.sim.compare import analytic_stream_sweep, format_size, min_matching_l2_size
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore

#: The bench_profile.py slice, unchanged, so the config counts compare.
CELLS = (
    ("random", 1.0),
    ("sweep", 0.25),
    ("buk", 0.5),
    ("mdg", 0.5),
    ("cgm", 0.5),
    ("trfd", 0.5),
)
GRID_CONFIGS = len(PAPER_L2_SIZES) * len(PAPER_L2_ASSOCS) * len(PAPER_L2_BLOCKS)
MAX_CONFIG_FRACTION = 0.25

#: Stream-model slice: a Figure 3-style n_streams ladder per workload.
STREAM_CELLS = (("cgm", 0.25), ("buk", 0.25), ("sweep", 0.25))
STREAM_LADDER = (1, 2, 4, 8, 10)

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_PR4.json"
OUTPUT = ROOT / "BENCH_PR8.json"


def baseline_configs() -> int:
    """PR 4's slice-wide simulated-config count (the bar to beat)."""
    try:
        return int(json.loads(BASELINE.read_text())["configs"]["analytic"])
    except (OSError, KeyError, ValueError):
        return 18  # the recorded PR 4 run, if the JSON went missing


def screen_half(cache: MissTraceCache, failures: list) -> dict:
    rows = []
    brute_total = warm_total = 0.0
    for name, scale in CELLS:
        cache.get(name, scale=scale)  # L1 simulation out of the timed region

        started = time.perf_counter()
        brute = min_matching_l2_size(name, scale=scale, cache=cache)
        brute_s = time.perf_counter() - started

        min_matching_l2_size_analytic(name, scale=scale, cache=cache)  # warm store
        started = time.perf_counter()
        warm = min_matching_l2_size_analytic(name, scale=scale, cache=cache)
        warm_s = time.perf_counter() - started

        brute_total += brute_s
        warm_total += warm_s
        fraction = warm.configs_simulated / GRID_CONFIGS
        agree = brute.matched_size == warm.matched_size
        print(
            f"{name:8s} scale={scale:<5g} brute={format_size(brute.matched_size):>7s} "
            f"({brute.configs_simulated:2d} cfg {brute_s:5.2f}s)  "
            f"analytic={format_size(warm.matched_size):>7s} "
            f"({warm.configs_simulated:2d} cfg {warm_s:5.2f}s)"
        )
        if not agree:
            failures.append(
                f"{name}@{scale:g}: analytic matched {format_size(warm.matched_size)}"
                f" != brute {format_size(brute.matched_size)}"
            )
        if fraction > MAX_CONFIG_FRACTION:
            failures.append(
                f"{name}@{scale:g}: simulated {warm.configs_simulated}/{GRID_CONFIGS}"
                f" configs (> {MAX_CONFIG_FRACTION:.0%})"
            )
        rows.append(
            {
                "workload": name,
                "scale": scale,
                "matched": format_size(warm.matched_size),
                "agree": agree,
                "configs_brute": brute.configs_simulated,
                "configs_analytic": warm.configs_simulated,
                "seconds_brute": round(brute_s, 4),
                "seconds_analytic_warm": round(warm_s, 4),
            }
        )

    configs_analytic = sum(r["configs_analytic"] for r in rows)
    configs_brute = sum(r["configs_brute"] for r in rows)
    bar = baseline_configs()
    print(
        f"\nscreen: {configs_analytic} configs simulated vs PR4 baseline {bar}"
        f" (brute {configs_brute}); slack {ESTIMATOR_SLACK}"
    )
    if configs_analytic >= bar:
        failures.append(
            f"screen simulated {configs_analytic} configs; must be strictly below"
            f" the PR4 baseline of {bar}"
        )
    return {
        "estimator_slack": ESTIMATOR_SLACK,
        "cells": rows,
        "configs": {"brute": configs_brute, "analytic": configs_analytic},
        "configs_pr4_baseline": bar,
        "seconds": {"brute": round(brute_total, 3), "analytic_warm": round(warm_total, 3)},
    }


def stream_half(cache: MissTraceCache, failures: list) -> dict:
    rows = []
    predicted = witnessed = 0
    total_s = 0.0
    for name, scale in STREAM_CELLS:
        configs = {n: StreamConfig.filtered(n_streams=n) for n in STREAM_LADDER}
        started = time.perf_counter()
        try:
            cells = analytic_stream_sweep(name, configs, scale=scale, cache=cache)
        except RuntimeError as exc:  # a witness outside its declared bound
            failures.append(f"{name}@{scale:g}: {exc}")
            continue
        sweep_s = time.perf_counter() - started
        total_s += sweep_s
        for n, cell in cells.items():
            predicted += 1
            row = {
                "workload": name,
                "scale": scale,
                "n_streams": n,
                "predicted_hit_rate": round(cell.predicted_hit_rate, 4),
                "bound": round(cell.bound, 4),
            }
            if cell.witnessed:
                witnessed += 1
                row["replayed_hit_rate"] = round(cell.simulated_hit_rate, 4)
                row["within_bound"] = cell.within_bound
                if not cell.within_bound:
                    failures.append(
                        f"{name}@{scale:g} n={n}: replayed "
                        f"{cell.simulated_hit_rate:.4f} outside "
                        f"{cell.predicted_hit_rate:.4f} +/- {cell.bound:.4f}"
                    )
            rows.append(row)
        best = max(cells.values(), key=lambda c: c.predicted_hit_rate)
        print(
            f"{name:8s} scale={scale:<5g} ladder={len(cells)} cells in {sweep_s:5.2f}s"
            f"  best predicted {best.predicted_hit_rate:6.1%} +/- {best.bound:.3f}"
            f"  replayed {best.simulated_hit_rate:6.1%}"
        )
    fraction = witnessed / predicted if predicted else 1.0
    print(
        f"\nstreams: {predicted} cells predicted, {witnessed} replayed as witnesses"
        f" ({fraction:.0%} simulated)"
    )
    if predicted and fraction > MAX_CONFIG_FRACTION:
        failures.append(
            f"stream sweeps replayed {witnessed}/{predicted} cells"
            f" (> {MAX_CONFIG_FRACTION:.0%})"
        )
    return {
        "ladder": list(STREAM_LADDER),
        "cells": rows,
        "cells_predicted": predicted,
        "cells_simulated": witnessed,
        "simulated_fraction": round(fraction, 4),
        "seconds": round(total_s, 3),
    }


def main() -> int:
    failures: list = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-analytic-") as store_dir:
        store = TraceStore(store_dir)
        cache = MissTraceCache(store=store)
        screen = screen_half(cache, failures)
        streams = stream_half(cache, failures)
        stored = {"profiles": store.n_profiles(), "spectra": store.n_spectra()}

    payload = {
        "pr": 8,
        "benchmark": (
            "bench_analytic: combined-locality Table-4 screen + closed-form"
            " stream sweeps vs brute force"
        ),
        "grid_configs": GRID_CONFIGS,
        "max_config_fraction": MAX_CONFIG_FRACTION,
        "screen": screen,
        "streams": streams,
        "store": stored,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
