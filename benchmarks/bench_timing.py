"""The paper's conclusion, priced: streams + bandwidth vs a big L2.

The paper argues that replacing the secondary cache with stream buffers
and spending the savings on main-memory bandwidth yields "a system with
better overall performance".  This bench evaluates both designs under
the timing extension across a bandwidth sweep:

* the conventional design: L1 + 512KB L2 + baseline-bandwidth memory;
* the paper's design: L1 + filtered streams + memory with 1x / 2x / 4x
  the baseline bandwidth (the money saved on SRAM buys the extra).

Expected shape: on streaming scientific codes the stream design
overtakes the L2 design once it holds any bandwidth advantage, and the
crossover arrives earlier the better the workload streams.
"""

from conftest import publish

from repro.caches.secondary import simulate_secondary
from repro.caches.cache import CacheConfig
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.reporting.tables import render_table
from repro.timing import TimingModel, l2_system_timing, stream_system_timing

BENCHES = ("mgrid", "cgm", "appsp", "bdna", "mdg")
L2_CONFIG = CacheConfig(capacity=512 * 1024, assoc=4, block_size=64, policy="lru")
BANDWIDTH_FACTORS = (1.0, 2.0, 4.0)


def test_timing_tradeoff(benchmark, miss_cache, results_dir):
    base_model = TimingModel()

    def run():
        out = {}
        for name in BENCHES:
            mt, summary = miss_cache.get(name)
            streams = StreamPrefetcher(StreamConfig.non_unit(czone_bits=19)).run(mt)
            l2 = simulate_secondary(mt, L2_CONFIG)
            l2_report = l2_system_timing(summary, l2, base_model)
            stream_reports = {
                factor: stream_system_timing(
                    summary, streams, base_model.with_bandwidth_factor(factor)
                )
                for factor in BANDWIDTH_FACTORS
            }
            out[name] = (summary, streams, l2, l2_report, stream_reports)
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)

    rows = []
    for name, (summary, streams, l2, l2_report, stream_reports) in data.items():
        rows.append(
            [
                name,
                streams.hit_rate_percent,
                100 * l2.local_hit_rate,
                l2_report.amat,
                stream_reports[1.0].amat,
                stream_reports[2.0].amat,
                stream_reports[4.0].amat,
            ]
        )
    rendered = render_table(
        [
            "bench",
            "stream hit %",
            "512KB-L2 hit %",
            "L2 AMAT",
            "streams 1x BW",
            "streams 2x BW",
            "streams 4x BW",
        ],
        rows,
        title="Timing: conventional L2 design vs streams + extra bandwidth (AMAT, cycles)",
        precision=2,
    )
    publish(results_dir, "timing_tradeoff", rendered)

    for name, (_, streams, l2, l2_report, stream_reports) in data.items():
        # More bandwidth monotonically helps the stream design.
        amats = [stream_reports[f].amat for f in BANDWIDTH_FACTORS]
        assert amats == sorted(amats, reverse=True), name
        # At 4x bandwidth, the stream design wins wherever the streams'
        # hit rate is at least in the L2's neighbourhood.
        if streams.hit_rate >= l2.local_hit_rate - 0.10:
            assert stream_reports[4.0].amat < l2_report.amat, name

    # The flagship case: a streaming code where streams already match
    # the L2's hit rate wins at equal bandwidth too (cheaper hits).
    _, streams, l2, l2_report, stream_reports = data["cgm"]
    assert stream_reports[1.0].amat < l2_report.amat * 1.1
