"""Regenerate Table 1: benchmark characteristics.

Paper reference: data-set sizes 0.1-14.7 MB and L1 data miss rates
0.01-3.33% across the fifteen benchmarks.  The models deliberately run
miss-heavier than the full applications (we model the memory-bound
kernels, not the whole program), so the comparison is about *ordering*:
which benchmarks have large footprints and which miss more.
"""

from conftest import publish

from repro.reporting import experiments


def test_table1(benchmark, miss_cache, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.table1(cache=miss_cache), iterations=1, rounds=1
    )
    rendered = experiments.render_table1(rows)
    publish(results_dir, "table1", rendered)

    assert len(rows) == 15
    # Every model misses somewhere and allocates a real footprint.
    assert all(r.model_miss_rate_pct > 0 for r in rows)
    assert all(r.model_data_mb > 0.06 for r in rows)
    benchmark.extra_info["benchmarks"] = len(rows)
