"""Section 5's saturation claim, isolated.

"The number of streams at which the hit rate saturates is related to
the number of unique array references in the program loops."  This
bench builds loops with exactly K interleaved array walks and measures
the stream count where the hit rate saturates: it should track K.
"""

from conftest import publish

from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.reporting.tables import render_table
from repro.sim.runner import simulate_l1
from repro.trace.events import Trace
from repro.workloads.base import BenchmarkInfo, Workload
from repro.workloads.kernels import ascending, loop, read


class _KWalks(Workload):
    """K interleaved unit-stride walks (not registered; bench-local)."""

    info = BenchmarkInfo(name="kwalks", suite="micro", description="K walks")

    ELEMENTS = 16384

    def __init__(self, k: int):
        super().__init__()
        self.k = k

    def build(self) -> Trace:
        columns = []
        for index in range(self.k):
            array = self.arena.alloc_words(f"a{index}", self.ELEMENTS)
            columns.append(read(ascending(array.base, self.ELEMENTS)))
        return loop(columns)


def saturation_point(hits_by_n, threshold=0.95):
    """Smallest stream count reaching 95% of the 12-stream hit rate."""
    final = hits_by_n[max(hits_by_n)]
    for n in sorted(hits_by_n):
        if hits_by_n[n] >= threshold * final:
            return n
    return max(hits_by_n)


def test_saturation_tracks_walk_count(benchmark, results_dir):
    walk_counts = (2, 4, 6, 8)
    stream_counts = tuple(range(1, 13))

    def run():
        out = {}
        for k in walk_counts:
            miss_trace, _ = simulate_l1(_KWalks(k))
            hits = {}
            for n in stream_counts:
                stats = StreamPrefetcher(StreamConfig.jouppi(n_streams=n)).run(
                    miss_trace
                )
                hits[n] = stats.hit_rate_percent
            out[k] = hits
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = []
    for k, hits in data.items():
        rows.append([k, saturation_point(hits), hits[1], hits[k], hits[12]])
    rendered = render_table(
        ["array walks", "saturation streams", "hit @1", "hit @K", "hit @12"],
        rows,
        title="Section 5 claim: saturation stream count tracks loop array count",
    )
    publish(results_dir, "saturation", rendered)

    for k, hits in data.items():
        sat = saturation_point(hits)
        # Saturation arrives at the walk count (give or take one: the
        # LRU needs no slack for pure round-robin walks).
        assert k - 1 <= sat <= k + 1, f"K={k}: saturated at {sat}"
        # Below K streams the LRU thrashes round-robin walks badly.
        assert hits[max(1, k - 1)] < 50, f"K={k}"
        assert hits[12] > 95, f"K={k}"
