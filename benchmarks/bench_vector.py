"""Vector engine gate: scalar vs batch replay on the replication grid.

Two measurements against the warm replication grid (the same 40 cells
as ``bench_quick``), both engine-for-engine with everything else held
fixed —

* **l1.simulate span time**: each workload's trace is built once, then
  ``simulate_l1`` runs under each engine with tracing enabled and the
  ``l1.simulate`` span durations are compared (min over repeats).  The
  scalar side pays consecutive-same-block compression plus the
  per-access ``Cache.simulate`` loop; the vector side the set-local
  collapse plus the residue loop (see docs/vectorized.md).
* **warm jobs=1 sweep wall time**: the PR 5 trajectory number (6.4 s in
  ``BENCH_PR5.json``) re-measured per engine — miss traces hydrated in
  memory, every cell's stream replay running for real.

Both must be bit-identical across engines, and the speedups must clear
the gate floors below.  ISSUE 6 asked for a 10x ``l1.simulate`` target;
the measured ceiling of this trace family is lower because the
replacement-state residue is RNG-serialized (every set shares one
``random.Random`` stream, so draw order is a global sequential
dependency) — the gate pins the robustly reproducible floor and
``BENCH_PR6.json`` records both the target and what was achieved; the
irreducibility argument lives in docs/vectorized.md.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_vector.py``
or ``make vector-bench``) or as the sixth phase of ``make bench-quick``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.obs.spans import set_tracing
from repro.sim.parallel import TaskError, run_grid
from repro.sim.runner import MissTraceCache, simulate_l1
from repro.sim.vector import ENGINE_ENV_VAR, ENGINE_SCALAR, ENGINE_VECTOR
from repro.trace.store import TraceStore
from repro.workloads import get_workload

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"

#: The PR 5 trajectory anchor: BENCH_PR5.json's ``disabled_min`` as
#: committed by PR 5 (scalar engines).  Pinned rather than read from the
#: live file, which later bench runs rewrite with current-engine times.
PR5_BASELINE_S = 6.3921

#: Gate floors: robustly reproducible on the replication grid (the
#: measured ratios sit well above these; see module docstring for why
#: the ISSUE's 10x aspiration is not the gate).
MIN_L1_SPEEDUP = 1.8
MIN_SWEEP_SPEEDUP = 1.8
ISSUE_TARGET_L1_SPEEDUP = 10.0
REPEATS = 3


def _l1_span_ms(workload, engine: str) -> float:
    """One traced ``simulate_l1`` pass; returns the l1.simulate span ms."""
    tracer = set_tracing(True)
    tracer.clear()
    try:
        simulate_l1(workload, engine=engine)
        events = tracer.events()
    finally:
        tracer.enabled = False
        tracer.clear()
    return sum(e["dur"] for e in events if e["name"] == "l1.simulate") / 1000.0


def l1_probe(workload_names) -> dict:
    """Per-workload scalar-vs-vector ``l1.simulate`` span times (warm)."""
    per_workload = {}
    scalar_total = 0.0
    vector_total = 0.0
    for name in workload_names:
        workload = get_workload(name)
        workload.trace()  # memoize the trace build out of the measurement

        scalar_trace, scalar_summary = simulate_l1(workload, engine=ENGINE_SCALAR)
        vector_trace, vector_summary = simulate_l1(workload, engine=ENGINE_VECTOR)
        if not (
            np.array_equal(scalar_trace.addrs, vector_trace.addrs)
            and np.array_equal(scalar_trace.kinds, vector_trace.kinds)
            and scalar_summary == vector_summary
        ):
            raise SystemExit(f"bench_vector: engines diverge on workload {name}")

        scalar_ms = min(_l1_span_ms(workload, ENGINE_SCALAR) for _ in range(REPEATS))
        vector_ms = min(_l1_span_ms(workload, ENGINE_VECTOR) for _ in range(REPEATS))
        per_workload[name] = {
            "scalar_ms": round(scalar_ms, 1),
            "vector_ms": round(vector_ms, 1),
            "speedup": round(scalar_ms / vector_ms, 2),
        }
        scalar_total += scalar_ms
        vector_total += vector_ms
    return {
        "per_workload": per_workload,
        "scalar_total_ms": round(scalar_total, 1),
        "vector_total_ms": round(vector_total, 1),
        "speedup": round(scalar_total / vector_total, 2),
    }


def _hydrated_cache(tasks, store: TraceStore) -> MissTraceCache:
    """Every task's miss trace in memory, store detached (as bench_obs)."""
    cache = MissTraceCache(store=store)
    for task in tasks:
        cache.get(task.workload, scale=task.scale, seed=task.seed)
    cache.store = None
    return cache


def _sweep_pass(tasks, cache: MissTraceCache) -> tuple:
    started = time.perf_counter()
    results = run_grid(tasks, jobs=1, cache=cache)
    elapsed = time.perf_counter() - started
    errors = [r for r in results if isinstance(r, TaskError)]
    if errors:
        raise SystemExit(f"bench_vector: {len(errors)} cells failed: {errors[0]}")
    return elapsed, [r.streams for r in results]


def sweep_probe(tasks, store: TraceStore) -> dict:
    """Warm jobs=1 sweep wall time per engine (the PR 5 trajectory number)."""
    cache = _hydrated_cache(tasks, store)
    times = {}
    stats = {}
    saved = os.environ.get(ENGINE_ENV_VAR)
    try:
        for engine in (ENGINE_SCALAR, ENGINE_VECTOR):
            os.environ[ENGINE_ENV_VAR] = engine
            _sweep_pass(tasks, cache)  # warm this engine's replay path once
            best = None
            for _ in range(REPEATS):
                elapsed, streams = _sweep_pass(tasks, cache)
                best = elapsed if best is None else min(best, elapsed)
            times[engine] = best
            stats[engine] = streams
    finally:
        if saved is None:
            os.environ.pop(ENGINE_ENV_VAR, None)
        else:
            os.environ[ENGINE_ENV_VAR] = saved
    identical = stats[ENGINE_SCALAR] == stats[ENGINE_VECTOR]
    if not identical:
        raise SystemExit("bench_vector: sweep stream stats diverge across engines")

    return {
        "cells": len(tasks),
        "scalar_s": round(times[ENGINE_SCALAR], 3),
        "vector_s": round(times[ENGINE_VECTOR], 3),
        "speedup": round(times[ENGINE_SCALAR] / times[ENGINE_VECTOR], 2),
        "pr5_baseline_s": PR5_BASELINE_S,
    }


def vector_probe(tasks, store: TraceStore) -> dict:
    """Run both probes, print the gate verdict, write ``BENCH_PR6.json``."""
    workload_names = sorted({task.workload for task in tasks})
    l1 = l1_probe(workload_names)
    sweep = sweep_probe(tasks, store)

    ok = l1["speedup"] >= MIN_L1_SPEEDUP and sweep["speedup"] >= MIN_SWEEP_SPEEDUP
    print(
        f"{'l1.simulate span':24s} {l1['scalar_total_ms']:7.0f}ms scalar ->"
        f" {l1['vector_total_ms']:5.0f}ms vector  ({l1['speedup']:.1f}x,"
        f" gate >= {MIN_L1_SPEEDUP}x, issue target {ISSUE_TARGET_L1_SPEEDUP:.0f}x)"
    )
    baseline = (
        f", PR5 baseline {sweep['pr5_baseline_s']:.1f}s"
        if sweep["pr5_baseline_s"]
        else ""
    )
    print(
        f"{'warm sweep jobs=1':24s} {sweep['scalar_s']:7.2f}s scalar ->"
        f" {sweep['vector_s']:5.2f}s vector  ({sweep['speedup']:.1f}x,"
        f" gate >= {MIN_SWEEP_SPEEDUP}x{baseline})"
    )
    print(f"vector engine gate: {'PASS' if ok else 'FAIL'} (bit-identical: True)")

    payload = {
        "pr": 6,
        "benchmark": "bench_vector: scalar vs batch replay engines (repro.sim.vector)",
        "grid": {"cells": len(tasks), "workloads": workload_names, "repeats": REPEATS},
        "l1_simulate_span": l1,
        "warm_sweep_jobs1": sweep,
        "gates": {
            "min_l1_speedup": MIN_L1_SPEEDUP,
            "min_sweep_speedup": MIN_SWEEP_SPEEDUP,
            "issue_target_l1_speedup": ISSUE_TARGET_L1_SPEEDUP,
        },
        "bit_identical": True,
        "notes": (
            "L1 residue loop is RNG-serialized (one shared random.Random "
            "across all sets), bounding the honest l1.simulate speedup below "
            "the issue's 10x aspiration; see docs/vectorized.md."
        ),
        "pass": ok,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    return payload


def main() -> int:
    from bench_quick import build_tasks  # same replication grid as PR 1's gate

    tasks = build_tasks()
    with tempfile.TemporaryDirectory(prefix="repro-bench-vector-") as store_dir:
        store = TraceStore(store_dir)
        print(f"grid: {len(tasks)} cells; populating store ...")
        run_grid(tasks, jobs=4, store=store)
        payload = vector_probe(tasks, store)
    if not payload["pass"]:
        print(
            "FAIL: vector engine speedup below gate "
            f"(l1 {payload['l1_simulate_span']['speedup']}x, "
            f"sweep {payload['warm_sweep_jobs1']['speedup']}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
