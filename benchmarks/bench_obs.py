"""Telemetry overhead probe: traced vs untraced replication sweeps.

The obs subsystem's core promise is that it can stay compiled into
every layer because it is nearly free: counter bumps always-on, spans
only when tracing is enabled.  This probe prices both states on real
sweep work — every cell's stream replay actually runs, against an
in-memory miss-trace cache, so the measured ratio is what a figure
replication would pay —

* **disabled** (the default): tracer off, no manifest; the only
  telemetry cost is engine-registry counter bumps;
* **enabled**: tracer on (with a bound trace context, so every span
  pays the trace-id auto-tag), structured logging at INFO, plus the
  full artifact path (ManifestBuilder construction, per-cell records,
  manifest build from the drained spans).

Each state is timed ``REPEATS`` times, interleaved to spread thermal /
cache drift across both, and the minima are compared.  The gate:
enabled within ``MAX_OVERHEAD`` (5%) of disabled.  Results land in
``BENCH_PR5.json``.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_obs.py``) or
as the final phase of ``make bench-quick``, hydrating its in-memory
cache from the already-warm store.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from contextlib import nullcontext

import numpy as np

from repro.obs.context import trace_scope
from repro.obs.log import INFO, get_level, set_level
from repro.obs.manifest import ManifestBuilder
from repro.obs.spans import set_tracing
from repro.sim.parallel import TaskError, run_grid
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
MAX_OVERHEAD = 0.05
REPEATS = 3


def replay_cache(tasks, store: TraceStore) -> MissTraceCache:
    """An in-memory cache holding every task's miss trace, store detached.

    Hydrating from the warm store is cheap; detaching it afterwards
    makes each probe pass replay every cell for real instead of
    loading memoised results — replay work is what the overhead ratio
    must be measured against.
    """
    cache = MissTraceCache(store=store)
    for task in tasks:
        cache.get(task.workload, scale=task.scale, seed=task.seed)
    cache.store = None
    return cache


def _one_pass(tasks, cache: MissTraceCache, enabled: bool) -> float:
    tracer = set_tracing(enabled)
    tracer.clear()
    previous_level = get_level()
    if enabled:
        set_level(INFO)  # structured logging on: part of the priced state
    builder = ManifestBuilder("bench_obs") if enabled else None
    started = time.perf_counter()
    with trace_scope() if enabled else nullcontext():
        results = run_grid(tasks, jobs=1, cache=cache)
    if builder is not None:
        builder.add_results(tasks, results)
        builder.build(span_events=tracer.events())
    elapsed = time.perf_counter() - started
    set_level(previous_level)
    tracer.enabled = False
    tracer.clear()
    errors = [r for r in results if isinstance(r, TaskError)]
    if errors:
        raise SystemExit(f"bench_obs: {len(errors)} cells failed: {errors[0]}")
    return elapsed


def overhead_probe(tasks, store: TraceStore, repeats: int = REPEATS) -> dict:
    """Time traced vs untraced replay sweeps and write ``BENCH_PR5.json``."""
    cache = replay_cache(tasks, store)
    _one_pass(tasks, cache, enabled=False)  # warm the replay path once
    disabled: list = []
    enabled: list = []
    for _ in range(repeats):
        disabled.append(_one_pass(tasks, cache, enabled=False))
        enabled.append(_one_pass(tasks, cache, enabled=True))
    best_disabled, best_enabled = min(disabled), min(enabled)
    overhead = best_enabled / best_disabled - 1.0
    ok = overhead <= MAX_OVERHEAD
    print(
        f"{'telemetry disabled':24s} {best_disabled:7.3f}s  "
        f"({len(tasks) / best_disabled:6.1f} cells/s, min of {repeats})"
    )
    print(
        f"{'telemetry enabled':24s} {best_enabled:7.3f}s  "
        f"({len(tasks) / best_enabled:6.1f} cells/s, min of {repeats})"
    )
    print(
        f"telemetry overhead: {100 * overhead:+.1f}% "
        f"(gate <= {100 * MAX_OVERHEAD:.0f}%)  ->  {'PASS' if ok else 'FAIL'}"
    )

    payload = {
        "pr": 5,
        "benchmark": "bench_obs: traced vs untraced warm sweep (repro.obs)",
        "grid": {"cells": len(tasks), "jobs": 1, "repeats": repeats},
        "seconds": {
            "disabled_min": round(best_disabled, 4),
            "enabled_min": round(best_enabled, 4),
            "disabled_all": [round(s, 4) for s in disabled],
            "enabled_all": [round(s, 4) for s in enabled],
        },
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_OVERHEAD,
        "pass": ok,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    return payload


def main() -> int:
    from bench_quick import build_tasks  # same replication grid as PR 1's gate

    tasks = build_tasks()
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as store_dir:
        store = TraceStore(store_dir)
        print(f"grid: {len(tasks)} cells; populating store ...")
        run_grid(tasks, jobs=4, store=store)
        payload = overhead_probe(tasks, store)
    if not payload["pass"]:
        print(
            f"FAIL: telemetry overhead {100 * payload['overhead_fraction']:.1f}% "
            f"> {100 * MAX_OVERHEAD:.0f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
