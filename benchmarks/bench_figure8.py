"""Regenerate Figure 8: the non-unit stride (czone) detection scheme.

Paper reference: fftpde 26 -> 71, appsp 33 -> 65, trfd 50 -> 65; "gains
in other benchmarks are minor".
"""

from conftest import publish

from repro.reporting import experiments
from repro.workloads import NON_UNIT_STRIDE_BENCHMARKS


def test_figure8(benchmark, miss_cache, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.figure8(cache=miss_cache), iterations=1, rounds=1
    )
    rendered = experiments.render_figure8(rows)
    publish(results_dir, "figure8", rendered)

    by_name = {r.name: r for r in rows}

    # Shape 1: the three non-unit stride benchmarks gain substantially.
    for name in NON_UNIT_STRIDE_BENCHMARKS:
        row = by_name[name]
        gain = row.hit_constant_stride - row.hit_unit_only
        assert gain > 10, f"{name} gained only {gain:.1f}"

    # Shape 2: nobody loses from the extra detector.
    for row in rows:
        assert row.hit_constant_stride >= row.hit_unit_only - 2.0, row.name

    # Shape 3: the big winners end up at good absolute levels.
    assert by_name["fftpde"].hit_constant_stride > 60
    assert by_name["appsp"].hit_constant_stride > 60

    benchmark.extra_info["gains"] = {
        r.name: round(r.hit_constant_stride - r.hit_unit_only, 1) for r in rows
    }
