"""Regenerate Figure 5: the unit-stride filter's effect.

Paper reference: the filter usually cuts EB by more than half at a small
or negligible hit-rate cost (trfd 96->11, is 48->7, appsp 134->45, cgm
30->13); fftpde's hit rate *rises* (active streams stop being
disturbed); appbt, dominated by short streams, loses ~20 points
(65->45).
"""

from conftest import publish

from repro.reporting import experiments


def test_figure5(benchmark, miss_cache, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.figure5(cache=miss_cache), iterations=1, rounds=1
    )
    rendered = experiments.render_figure5(rows)
    publish(results_dir, "figure5", rendered)

    by_name = {r.name: r for r in rows}

    # Shape 1: EB falls for every benchmark, by >50% for most.
    halved = 0
    for row in rows:
        assert row.eb_with_filter <= row.eb_no_filter + 1.0, row.name
        if row.eb_with_filter < 0.5 * max(row.eb_no_filter, 1e-9):
            halved += 1
    assert halved >= 11, f"EB halved for only {halved}/15"

    # Shape 2: trfd / buk / cgm keep their hit rate (paper's examples).
    for name in ("trfd", "buk", "cgm"):
        row = by_name[name]
        assert row.hit_no_filter - row.hit_with_filter < 8, name

    # Shape 3: the short-stream benchmark pays (appbt: 65 -> 45).
    appbt = by_name["appbt"]
    assert appbt.hit_no_filter - appbt.hit_with_filter > 10

    # Shape 4: fftpde does not lose (the filter protects its streams).
    fftpde = by_name["fftpde"]
    assert fftpde.hit_with_filter >= fftpde.hit_no_filter - 1.0

    benchmark.extra_info["eb_with_filter"] = {
        r.name: round(r.eb_with_filter, 1) for r in rows
    }
