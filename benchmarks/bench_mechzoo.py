"""Perf/parity gate for the PR 9 mechanism zoo.

Times the ``mechzoo`` exhibit (min matching L2 per secondary mechanism;
see docs/mechanisms.md) over a reduced workload slice, cold versus warm:

1. **Cold** — empty trace store and miss-trace cache; every cell pays
   L1 simulation plus mechanism replays.
2. **Warm** — the same cache/store re-used; the exhibit must get
   cheaper from the stored traces and mechanism results.

Gates: the warm pass is strictly faster than the cold pass, every
reported match is witnessed by a real probed simulation point, and the
hybrid columns never match a *larger* L2 than plain streams on the same
cell (a front buffer can only remove misses ahead of the stream
prefetcher).  The PR 8 analytic-screen warm timing rides along as the
reference baseline.  Results land in ``BENCH_PR9.json``; run via
``make zoo-bench``.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.reporting.experiments import default_zoo, mechzoo, render_mechzoo
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore

#: Reduced slice: one clearly streamable workload, one cache-friendly
#: one, and one paper benchmark at its small Table 4 scale.
CELLS = (("stride", 0.05), ("random", 0.25), ("cgm", 0.25))

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_PR8.json"
OUTPUT = ROOT / "BENCH_PR9.json"

def baseline_seconds() -> float:
    """PR 8's warm analytic-screen wall time (reference, not a gate —
    the zoo runs 5 mechanisms per cell, the screen ran one)."""
    try:
        payload = json.loads(BASELINE.read_text())
        return float(payload["screen"]["seconds"]["analytic_warm"])
    except (OSError, KeyError, ValueError):
        return 0.0


def _size_rank(row) -> int:
    """Matched size in bytes; an unmatched cell ranks above every size."""
    size = row.match.matched_size
    return (1 << 60) if size is None else int(size)


def run_exhibit(cache: MissTraceCache):
    names = [name for name, _ in CELLS]
    scales = {name: (scale,) for name, scale in CELLS}
    started = time.perf_counter()
    rows = mechzoo(names=names, scales=scales, cache=cache)
    return rows, time.perf_counter() - started


def main() -> int:
    failures: list = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-mechzoo-") as store_dir:
        store = TraceStore(store_dir)
        cache = MissTraceCache(store=store)
        cold_rows, cold_s = run_exhibit(cache)
        warm_rows, warm_s = run_exhibit(cache)

    print(render_mechzoo(warm_rows))
    speedup = cold_s / warm_s if warm_s else float("inf")
    print(f"\ncold {cold_s:.2f}s  warm {warm_s:.2f}s  ({speedup:.1f}x)")

    if warm_rows != cold_rows:
        failures.append("warm exhibit rows differ from the cold run")
    if warm_s >= cold_s:
        failures.append(
            f"warm pass ({warm_s:.2f}s) not faster than cold ({cold_s:.2f}s)"
        )
    for row in warm_rows:
        match = row.match
        if match.matched_size is not None and not any(
            point.size == match.matched_size for point in match.l2_hit_rates
        ):
            failures.append(
                f"{row.name}@{row.scale:g} {row.mechanism}: match not witnessed"
                " by a probed simulation point"
            )

    by_cell = {(r.name, r.scale, r.mechanism): r for r in warm_rows}
    for label in default_zoo():
        if not label.endswith("+streams"):
            continue
        for name, scale in CELLS:
            hybrid = by_cell.get((name, scale, label))
            streams = by_cell.get((name, scale, "streams"))
            if hybrid is None or streams is None:
                continue
            if _size_rank(hybrid) > _size_rank(streams):
                failures.append(
                    f"{name}@{scale:g}: {label} matched {hybrid.min_l2} but"
                    f" plain streams matched {streams.min_l2}"
                )

    payload = {
        "pr": 9,
        "benchmark": (
            "bench_mechzoo: mechzoo exhibit (min matching L2 per secondary"
            " mechanism) cold vs warm over a reduced slice"
        ),
        "cells": [
            {
                "workload": row.name,
                "scale": row.scale,
                "mechanism": row.mechanism,
                "hit_pct": round(row.hit_pct, 2),
                "min_l2": row.min_l2,
                "configs_simulated": row.configs_simulated,
                "sizes_pruned": row.sizes_pruned,
            }
            for row in warm_rows
        ],
        "seconds": {
            "cold": round(cold_s, 3),
            "warm": round(warm_s, 3),
            "speedup": round(speedup, 2),
        },
        "pr8_analytic_warm_seconds": baseline_seconds(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
