"""Related-work comparison: stream buffers vs Section 2's alternatives.

Not a paper exhibit — the paper only *argues* against its related work.
This bench puts the argument to the test on the same miss streams:

* **OBL (tagged)**, Smith: one-block lookahead into an associative
  buffer — no multi-block runahead, no stride capability.  Note its
  structural weakness is invisible to a pure hit-rate metric: an OBL
  "hit" was prefetched by the *immediately preceding* miss, so it
  arrives with essentially no latency lead, while depth-2 streams run
  ahead (the paper's Section 8 discussion).
* **Prefetching cache**, Rambus: a ~1KB associative cache with
  lookahead fill — adds short-range temporal reuse.
* **RPT**, Baer & Chen: PC-indexed stride prediction — given *oracle*
  PCs, the on-chip scheme the paper says commodity parts cannot export.

Expected shapes: unfiltered streams match or beat the PC-free
alternatives nearly everywhere; the czone configuration wins decisively
on the strided codes; oracle-PC RPT is strong exactly there too — which
is why the paper needed a PC-free stride scheme.
"""

from conftest import publish

from repro.baselines import (
    OneBlockLookahead,
    PrefetchingCache,
    ReferencePredictionTable,
)
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.reporting.tables import render_table
from repro.sim.runner import MissTraceCache

BENCHES = ("embar", "mgrid", "cgm", "buk", "appsp", "appbt", "trfd", "mdg")


def test_baseline_comparison(benchmark, results_dir):
    pc_cache = MissTraceCache(keep_pcs=True)

    def run():
        out = {}
        for name in BENCHES:
            mt, _ = pc_cache.get(name)
            plain = StreamPrefetcher(StreamConfig.jouppi()).run(mt)
            czone = StreamPrefetcher(StreamConfig.non_unit(czone_bits=19)).run(mt)
            obl = OneBlockLookahead(entries=16, tagged=True).run(mt)
            pcache = PrefetchingCache(blocks=16).run(mt)
            rpt = ReferencePredictionTable(table_entries=64, buffer_entries=32).run(mt)
            out[name] = {
                "streams": plain.hit_rate_percent,
                "streams+czone": czone.hit_rate_percent,
                "obl": obl.hit_rate_percent,
                "prefetch-cache": pcache.hit_rate_percent,
                "rpt": rpt.hit_rate_percent,
            }
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    keys = ("streams", "streams+czone", "obl", "prefetch-cache", "rpt")
    rows = [[name, *[round(vals[k], 1) for k in keys]] for name, vals in data.items()]
    rendered = render_table(
        ["bench", "streams %", "+czone %", "OBL %", "pf-cache %", "RPT(oracle) %"],
        rows,
        title="Related work: hit rate over the same L1 miss streams",
    )
    publish(results_dir, "baseline_comparison", rendered)

    wins = 0
    for name, vals in data.items():
        best_streams = max(vals["streams"], vals["streams+czone"])
        best_pcfree_rival = max(vals["obl"], vals["prefetch-cache"])
        # The best stream configuration never loses meaningfully to the
        # PC-free related work...
        assert best_streams >= best_pcfree_rival - 6, name
        if best_streams >= best_pcfree_rival - 1.5:
            wins += 1
    # ...and wins or ties on most benchmarks.  (The associative
    # lookahead buffers are genuinely competitive on a pure hit-rate
    # metric; the streams' structural advantages — multi-block runahead
    # for latency, stride detection — show in the strided rows and in
    # the min_lead ablation.)
    assert wins >= len(BENCHES) - 3

    # The strided codes are where streams+czone pull far ahead of the
    # lookahead schemes.
    for name in ("appsp", "trfd"):
        assert data[name]["streams+czone"] > data[name]["obl"] + 10, name

    # The oracle-PC RPT shines on the same codes — the reason the paper
    # needed a PC-free stride scheme.
    assert data["appsp"]["rpt"] > 60
    assert data["trfd"]["rpt"] > data["trfd"]["obl"]
