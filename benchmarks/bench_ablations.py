"""Ablation benches for the design choices the paper fixes or sketches.

Not paper exhibits — these quantify the decisions around them:

* stream depth (the paper fixes 2 and calls the choice memory-system
  dependent);
* czone vs the minimum-delta stride scheme (Section 7 says they perform
  similarly; the paper picked czone on hardware cost);
* the Section 8 hit-definition caveat, via the ``min_lead`` latency
  model;
* partitioned I/D streams (Section 5 says partitioning was not
  beneficial);
* the paper's 10% time sampling (Section 4.1) versus full traces.
"""

import numpy as np
from conftest import publish

from repro.core.config import StreamConfig, StrideDetector
from repro.core.prefetcher import StreamPrefetcher
from repro.reporting.tables import render_table
from repro.sim.runner import run_streams, simulate_l1
from repro.sim.sweep import sweep_depth
from repro.trace.sampling import time_sample
from repro.workloads import NON_UNIT_STRIDE_BENCHMARKS, get_workload


def test_depth_sweep(benchmark, miss_cache, results_dir):
    """Depth helps short-stream codes little and costs bandwidth."""
    names = ("embar", "appbt", "mdg")
    depths = (1, 2, 4, 8)

    def run():
        return {
            name: sweep_depth(name, depths, cache=miss_cache) for name in names
        }

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = []
    for name, by_depth in data.items():
        for depth, stats in by_depth.items():
            rows.append(
                [name, depth, stats.hit_rate_percent, stats.bandwidth.eb_measured]
            )
    rendered = render_table(
        ["bench", "depth", "hit %", "EB %"],
        rows,
        title="Ablation: stream depth (paper fixes depth = 2)",
    )
    publish(results_dir, "ablation_depth", rendered)

    for name in names:
        by_depth = data[name]
        # With the paper's always-available assumption, extra depth never
        # helps hit rate (only latency coverage, which is not modelled)...
        assert by_depth[8].hit_rate_percent <= by_depth[2].hit_rate_percent + 2
        # ...but it does cost bandwidth on reallocation-heavy codes.
        if name != "embar":
            assert (
                by_depth[8].bandwidth.eb_measured
                > by_depth[2].bandwidth.eb_measured
            )


def test_lookup_depth(benchmark, miss_cache, results_dir):
    """Quasi-associative lookup (extension): comparing a few entries per
    stream lets a stream survive the 'gappy miss stream' effect — a
    block that luckily survived in the L1 no longer strands the head."""
    names = ("mgrid", "applu", "buk")
    depth = 4

    def run():
        out = {}
        for name in names:
            rows = []
            for lookup_depth in (1, 2, 4):
                stats = run_streams(
                    name,
                    StreamConfig(
                        n_streams=10,
                        depth=depth,
                        unit_filter_entries=16,
                        lookup_depth=lookup_depth,
                    ),
                    cache=miss_cache,
                )
                rows.append(
                    (lookup_depth, stats.hit_rate_percent, stats.bandwidth.eb_measured)
                )
            out[name] = rows
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    table_rows = []
    for name, rows in data.items():
        for lookup_depth, hit, eb in rows:
            table_rows.append([name, lookup_depth, hit, eb])
    rendered = render_table(
        ["bench", "lookup depth", "hit %", "EB %"],
        table_rows,
        title="Ablation: quasi-associative stream lookup (depth-4 streams)",
    )
    publish(results_dir, "ablation_lookup_depth", rendered)

    for name, rows in data.items():
        hits = [hit for _, hit, _ in rows]
        # Deeper lookup never hurts and helps the gappy-stream codes.
        assert hits[1] >= hits[0] - 0.5, name
        assert hits[2] >= hits[0] - 0.5, name
    assert data["mgrid"][2][1] > data["mgrid"][0][1] + 1.5


def test_min_delta_vs_czone(benchmark, miss_cache, results_dir):
    """Section 7: the minimum-delta scheme performs similarly to czone."""

    def run():
        out = {}
        for name in NON_UNIT_STRIDE_BENCHMARKS:
            unit = run_streams(name, StreamConfig.filtered(), cache=miss_cache)
            czone = run_streams(
                name, StreamConfig.non_unit(czone_bits=19), cache=miss_cache
            )
            min_delta = run_streams(
                name,
                StreamConfig(
                    n_streams=10,
                    unit_filter_entries=16,
                    stride_detector=StrideDetector.MIN_DELTA,
                ),
                cache=miss_cache,
            )
            out[name] = (
                unit.hit_rate_percent,
                czone.hit_rate_percent,
                min_delta.hit_rate_percent,
            )
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    rendered = render_table(
        ["bench", "unit only %", "czone %", "min-delta %"],
        [[name, *vals] for name, vals in data.items()],
        title="Ablation: czone vs minimum-delta stride detection",
    )
    publish(results_dir, "ablation_min_delta", rendered)

    for name, (unit, czone, min_delta) in data.items():
        # Both schemes must beat unit-only on the strided benchmarks...
        assert czone > unit + 5, name
        assert min_delta > unit + 5, name


def test_min_lead_latency_model(benchmark, miss_cache, results_dir):
    """Section 8 caveat: counting in-flight matches as hits flatters
    streams; the min_lead model bounds how much."""
    names = ("mgrid", "buk", "spec77")

    def run():
        out = {}
        for name in names:
            rows = []
            for lead in (0, 1, 2, 4):
                stats = run_streams(
                    name,
                    StreamConfig.filtered().with_(min_lead=lead),
                    cache=miss_cache,
                )
                rows.append((lead, stats.hit_rate_percent, stats.in_flight_matches))
            out[name] = rows
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    table_rows = []
    for name, rows in data.items():
        for lead, hit, in_flight in rows:
            table_rows.append([name, lead, hit, in_flight])
    rendered = render_table(
        ["bench", "min lead", "hit %", "in-flight matches"],
        table_rows,
        title="Ablation: prefetch-latency (min_lead) model of the Section 8 caveat",
    )
    publish(results_dir, "ablation_min_lead", rendered)

    for name, rows in data.items():
        hits = [hit for _, hit, _ in rows]
        assert hits == sorted(hits, reverse=True), name  # monotone decline
        # Depth-2 streams cover a lead of 1-2 well: the drop is modest.
        assert hits[0] - hits[1] < 15, name


def test_partitioned_streams(benchmark, miss_cache, results_dir):
    """Section 5: partitioning I/D streams was not beneficial (the
    I-cache leaves too few instruction misses to matter)."""
    names = ("mgrid", "buk")

    def run():
        out = {}
        for name in names:
            workload = get_workload(name)
            from repro.workloads.instructions import with_instructions

            workload._trace = with_instructions(workload.trace(), per_access=1)
            miss_trace, _ = simulate_l1(workload)
            unified = StreamPrefetcher(StreamConfig.filtered()).run(miss_trace)
            partitioned = StreamPrefetcher(
                StreamConfig.filtered().with_(partitioned=True, i_streams=2)
            ).run(miss_trace)
            out[name] = (
                unified.hit_rate_percent,
                partitioned.hit_rate_percent,
                unified.ifetch_misses,
                unified.demand_misses,
            )
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    rendered = render_table(
        ["bench", "unified %", "partitioned %", "I-misses", "all misses"],
        [[name, *vals] for name, vals in data.items()],
        title="Ablation: unified vs partitioned I/D streams (MacroTek variant)",
    )
    publish(results_dir, "ablation_partitioned", rendered)

    for name, (unified, partitioned, i_misses, demand) in data.items():
        # Instruction misses are a negligible share (the paper's reason).
        assert i_misses / demand < 0.02, name
        assert abs(unified - partitioned) < 3, name


def test_time_sampling_validation(benchmark, miss_cache, results_dir):
    """The paper's 10k-on/90k-off sampling barely moves stream metrics."""
    names = ("buk", "trfd")

    def run():
        out = {}
        for name in names:
            workload = get_workload(name)
            full_mt, _ = simulate_l1(workload)
            full = StreamPrefetcher(StreamConfig.filtered()).run(full_mt)

            sampled_workload = get_workload(name)
            sampled_workload._trace = time_sample(workload.trace())
            sampled_mt, _ = simulate_l1(sampled_workload)
            sampled = StreamPrefetcher(StreamConfig.filtered()).run(sampled_mt)
            out[name] = (full.hit_rate_percent, sampled.hit_rate_percent)
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    rendered = render_table(
        ["bench", "full-trace hit %", "10%-sampled hit %"],
        [[name, *vals] for name, vals in data.items()],
        title="Ablation: time sampling (Section 4.1) vs full traces",
    )
    publish(results_dir, "ablation_sampling", rendered)

    for name, (full, sampled) in data.items():
        assert abs(full - sampled) < 12, name
