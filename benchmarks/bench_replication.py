"""Seed-stability check: the reproduced shapes are not one-seed flukes.

Replicates the headline Figure 3 / Table 2 metrics across five workload
seeds for a representative subset and asserts the spread is small
relative to the effects the paper reports (tens of points between
benchmarks; a few points of seed noise).
"""

from conftest import publish, sweep_jobs, trace_store

from repro.core.config import StreamConfig
from repro.reporting.tables import render_table
from repro.sim.replication import replicate
from repro.sim.runner import MissTraceCache

BENCHES = ("buk", "appbt", "mdg", "trfd")
SEEDS = (0, 1, 2, 3, 4)


def test_seed_stability(benchmark, results_dir):
    cache = MissTraceCache(store=trace_store())

    def run():
        out = {}
        for name in BENCHES:
            _, summaries = replicate(
                name,
                StreamConfig.jouppi(n_streams=10),
                seeds=SEEDS,
                cache=cache,
                jobs=sweep_jobs(),
            )
            out[name] = summaries
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = []
    for name, summaries in data.items():
        hit = summaries["hit_pct"]
        eb = summaries["eb_pct"]
        rows.append([name, hit.mean, hit.std, hit.spread, eb.mean, eb.std])
    rendered = render_table(
        ["bench", "hit mean %", "hit std", "hit spread", "EB mean %", "EB std"],
        rows,
        title=f"Seed stability over seeds {SEEDS}",
    )
    publish(results_dir, "replication", rendered)

    for name, summaries in data.items():
        assert summaries["hit_pct"].spread < 6.0, name
        assert summaries["eb_pct"].std < 8.0, name
