"""Analytic model vs simulator across the full benchmark suite.

Two closed-form predictions per benchmark:

* **Unbounded buffers** — runs may pause indefinitely and resume; an
  upper bound on any stream engine.
* **Ten open runs (LRU)** — runs beyond ten are closed least-recently-
  extended first: the arithmetic shadow of the ten-buffer bank.

The bounded prediction should match the simulator almost exactly (it
encodes the same structure with none of the simulator's machinery), and
the gap between the two predictions *is* the stream-count pressure that
Figure 3's saturation argument is about.
"""

from conftest import publish

from repro.analysis import (
    decompose_runs,
    predict_no_filter,
    predict_with_filter,
    profile_block_stream,
)
from repro.caches.cache import CacheConfig
from repro.caches.secondary import simulate_secondary
from repro.core.config import StreamConfig
from repro.core.prefetcher import StreamPrefetcher
from repro.reporting.tables import render_table
from repro.workloads import PAPER_BENCHMARKS


def test_analysis_vs_simulation(benchmark, miss_cache, results_dir):
    def run():
        out = {}
        for name in PAPER_BENCHMARKS:
            mt, _ = miss_cache.get(name)
            unbounded = decompose_runs(mt)
            bounded = decompose_runs(mt, max_open=10)
            plain_sim = StreamPrefetcher(StreamConfig.jouppi()).run(mt)
            filt_sim = StreamPrefetcher(StreamConfig.filtered()).run(mt)
            out[name] = {
                "bound": predict_no_filter(unbounded).hit_rate_percent,
                "pred10": predict_no_filter(bounded).hit_rate_percent,
                "sim": plain_sim.hit_rate_percent,
                "pred10_filter": predict_with_filter(bounded).hit_rate_percent,
                "sim_filter": filt_sim.hit_rate_percent,
            }
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        [
            name,
            round(vals["bound"], 1),
            round(vals["pred10"], 1),
            round(vals["sim"], 1),
            round(vals["pred10_filter"], 1),
            round(vals["sim_filter"], 1),
        ]
        for name, vals in data.items()
    ]
    rendered = render_table(
        ["bench", "bound %", "pred(10) %", "sim %", "pred+filt %", "sim+filt %"],
        rows,
        title="Analytic predictions vs 10-stream simulation",
    )
    publish(results_dir, "analysis_vs_sim", rendered)

    for name, vals in data.items():
        # The unbounded decomposition upper-bounds everything.
        assert vals["sim"] <= vals["bound"] + 4.0, name
        # The ten-open-run arithmetic reproduces the simulator.
        assert abs(vals["pred10"] - vals["sim"]) < 3.0, name
        # The filtered arithmetic tracks too (allocation-start details
        # differ slightly, so the band is wider).
        assert abs(vals["pred10_filter"] - vals["sim_filter"]) < 8.0, name


def test_stack_distance_vs_l2_simulation(benchmark, miss_cache, results_dir):
    """Mattson curve vs simulated L2: the fully-associative LRU miss
    curve of the L2-visible stream (demand misses *and* write-backs —
    both install blocks) tracks the same-capacity 4-way simulation
    closely — Table 4's capacity story from one analysis pass."""
    names = ("mdg", "cgm", "buk")
    capacities = (256 * 1024, 1 << 20)

    def run():
        out = {}
        for name in names:
            mt, _ = miss_cache.get(name)
            profile = profile_block_stream(mt, demand_only=False)
            rows = []
            for capacity in capacities:
                analytic_hit = profile.reuse_fraction_within(capacity // 64)
                simulated = simulate_secondary(
                    mt,
                    CacheConfig(capacity=capacity, assoc=4, block_size=64, policy="lru"),
                    sample_every=1,
                )
                rows.append((capacity, analytic_hit, simulated.local_hit_rate))
            out[name] = rows
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    table_rows = []
    for name, rows in data.items():
        for capacity, analytic, simulated in rows:
            table_rows.append(
                [name, capacity // 1024, 100 * analytic, 100 * simulated]
            )
    rendered = render_table(
        ["bench", "L2 KB", "Mattson hit %", "4-way sim hit %"],
        table_rows,
        title="Stack-distance curve vs simulated L2 (fully-assoc LRU bound)",
    )
    publish(results_dir, "analysis_stack_vs_l2", rendered)

    for name, rows in data.items():
        # The analytic curve tracks the simulation per capacity...
        for capacity, analytic, simulated in rows:
            assert abs(analytic - simulated) < 0.15, (name, capacity)
        # ...and both agree on the *direction* capacity growth takes.
        deltas = [(rows[1][1] - rows[0][1]), (rows[1][2] - rows[0][2])]
        assert (deltas[0] >= -0.02) == (deltas[1] >= -0.02), name
