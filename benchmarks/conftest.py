"""Shared state for the exhibit benchmarks.

All benches share one session-scoped miss-trace cache, so each
(workload, scale) pair pays its L1 simulation exactly once regardless of
how many stream/L2 configurations replay it — the paper's methodology.

Rendered exhibits are printed (run with ``-s`` to see them) and written
to ``benchmarks/results/<exhibit>.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sim.runner import MissTraceCache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def miss_cache() -> MissTraceCache:
    return MissTraceCache()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, rendered: str) -> None:
    """Print an exhibit and persist it under benchmarks/results/."""
    print()
    print(rendered)
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
