"""Shared state for the exhibit benchmarks.

All benches share one session-scoped miss-trace cache, so each
(workload, scale) pair pays its L1 simulation exactly once regardless of
how many stream/L2 configurations replay it — the paper's methodology.

The cache is additionally layered on a persistent
:class:`~repro.trace.store.TraceStore` (default:
``benchmarks/.trace-store``), so repeated ``make bench`` invocations —
separate processes, separate sessions — never recompute an L1
simulation either.  Control it with the ``REPRO_TRACE_STORE``
environment variable: a path relocates the store, and ``0``/``off``
disables persistence entirely (every run starts cold).

Rendered exhibits are printed (run with ``-s`` to see them) and written
to ``benchmarks/results/<exhibit>.txt``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_STORE_DIR = pathlib.Path(__file__).parent / ".trace-store"


def trace_store() -> TraceStore | None:
    """The benchmarks' persistent trace store, or None if disabled."""
    setting = os.environ.get("REPRO_TRACE_STORE", "")
    if setting.lower() in ("0", "off", "none"):
        return None
    return TraceStore(setting or DEFAULT_STORE_DIR)


def sweep_jobs() -> int:
    """Worker processes for sweep-based benches (``REPRO_BENCH_JOBS``)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def miss_cache() -> MissTraceCache:
    return MissTraceCache(store=trace_store())


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, rendered: str) -> None:
    """Print an exhibit and persist it under benchmarks/results/."""
    print()
    print(rendered)
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
