"""Regenerate Table 2: extra bandwidth of ordinary streams.

Paper reference: EB ranges from 8% (embar) to 158% (fftpde); the
benchmarks with poor hit rates waste the most bandwidth because every
stream miss reallocates a stream and flushes its outstanding prefetches.
"""

from conftest import publish

from repro.reporting import experiments
from repro.reporting.paper_data import FIGURE3_HIT_AT_10, TABLE2_EB


def test_table2(benchmark, miss_cache, results_dir):
    rows = benchmark.pedantic(
        lambda: experiments.table2(cache=miss_cache), iterations=1, rounds=1
    )
    rendered = experiments.render_table2(rows)
    publish(results_dir, "table2", rendered)

    measured = {r.name: r.eb_measured_pct for r in rows}

    # Shape 1: embar wastes almost nothing; the worst offenders waste
    # more than 100%.
    assert measured["embar"] < 15
    assert max(measured.values()) > 100

    # Shape 2: EB anti-correlates with hit rate (Spearman-style check on
    # the paper's own grouping).
    low_hit = [n for n, h in FIGURE3_HIT_AT_10.items() if h <= 35]
    high_hit = [n for n, h in FIGURE3_HIT_AT_10.items() if h >= 70]
    avg = lambda names: sum(measured[n] for n in names) / len(names)
    assert avg(low_hit) > 2 * avg(high_hit)

    # Shape 3: within 2x-ish of the paper's magnitudes for most rows.
    close = sum(
        1
        for name, paper in TABLE2_EB.items()
        if 0.4 * paper <= max(measured[name], 4) <= 2.5 * paper
    )
    assert close >= 11, f"only {close}/15 within band"
    benchmark.extra_info["eb"] = {k: round(v, 1) for k, v in measured.items()}
