"""Memory substrate: address arithmetic, allocation and array layout."""

from repro.mem.address import AddressSpace, is_power_of_two, log2_int
from repro.mem.allocator import Allocation, Arena
from repro.mem.layout import ArrayLayout

__all__ = [
    "AddressSpace",
    "Allocation",
    "Arena",
    "ArrayLayout",
    "is_power_of_two",
    "log2_int",
]
