"""N-dimensional array layouts mapping element indices to byte addresses.

Workload kernels describe accesses in terms of array *elements* (e.g.
``u[i, j, k]`` in a stencil sweep); :class:`ArrayLayout` turns those into
byte addresses given the array's base address, element size and dimension
order.  Fortran arrays are column-major; since the benchmarks were Fortran
codes run through f2c, the models use column-major order by default, which
is what makes "sweep the first index" a unit-stride stream and "sweep a
later index" a large constant stride — the distinction the paper's Section
7 is all about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["ArrayLayout"]


@dataclass(frozen=True)
class ArrayLayout:
    """Maps an N-D element index to a byte address.

    Attributes:
        base: byte address of element (0, 0, ..., 0).
        shape: extent of each dimension.
        element_size: bytes per element (8 for double precision).
        order: ``"F"`` for column-major (Fortran, default) or ``"C"`` for
            row-major.
    """

    base: int
    shape: Tuple[int, ...]
    element_size: int = 8
    order: str = "F"

    def __post_init__(self) -> None:
        if self.element_size <= 0:
            raise ValueError(f"element_size must be positive, got {self.element_size}")
        if not self.shape:
            raise ValueError("shape must have at least one dimension")
        if any(extent <= 0 for extent in self.shape):
            raise ValueError(f"all extents must be positive, got {self.shape}")
        if self.order not in ("F", "C"):
            raise ValueError(f"order must be 'F' or 'C', got {self.order!r}")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_elements(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count

    @property
    def size_bytes(self) -> int:
        return self.n_elements * self.element_size

    @property
    def strides(self) -> Tuple[int, ...]:
        """Byte stride of each dimension."""
        strides = [0] * self.ndim
        acc = self.element_size
        dims = range(self.ndim) if self.order == "F" else range(self.ndim - 1, -1, -1)
        for dim in dims:
            strides[dim] = acc
            acc *= self.shape[dim]
        return tuple(strides)

    def addr(self, *index: int) -> int:
        """Byte address of the element at ``index``.

        Raises:
            IndexError: if the index has the wrong arity or is out of range.
        """
        if len(index) != self.ndim:
            raise IndexError(
                f"expected {self.ndim} indices for shape {self.shape}, got {len(index)}"
            )
        addr = self.base
        for i, extent, stride in zip(index, self.shape, self.strides):
            if not 0 <= i < extent:
                raise IndexError(f"index {index} out of range for shape {self.shape}")
            addr += i * stride
        return addr

    def flat_addr(self, flat_index: int) -> int:
        """Byte address of the ``flat_index``-th element in layout order."""
        if not 0 <= flat_index < self.n_elements:
            raise IndexError(
                f"flat index {flat_index} out of range for {self.n_elements} elements"
            )
        return self.base + flat_index * self.element_size

    @classmethod
    def vector(cls, base: int, n: int, element_size: int = 8) -> "ArrayLayout":
        """Convenience constructor for a 1-D array."""
        return cls(base=base, shape=(n,), element_size=element_size)

    @classmethod
    def from_allocation(
        cls,
        allocation,
        shape: Sequence[int],
        element_size: int = 8,
        order: str = "F",
    ) -> "ArrayLayout":
        """Build a layout over an :class:`~repro.mem.allocator.Allocation`.

        Raises:
            ValueError: if the array does not fit in the allocation.
        """
        layout = cls(
            base=allocation.base,
            shape=tuple(shape),
            element_size=element_size,
            order=order,
        )
        if layout.size_bytes > allocation.size:
            raise ValueError(
                f"array of {layout.size_bytes} bytes does not fit allocation "
                f"{allocation.name!r} of {allocation.size} bytes"
            )
        return layout
