"""A bump allocator for laying out workload data structures in memory.

Workload models allocate their arrays from an :class:`Arena` so that each
array gets a stable, non-overlapping base address.  The allocator mimics how
a Fortran runtime lays out COMMON blocks and heap arrays: consecutive
allocations are placed one after another, aligned to a configurable
boundary, with an optional guard gap so that distinct arrays never share a
cache block (which would create artificial streams across array ends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Arena", "Allocation"]


@dataclass(frozen=True)
class Allocation:
    """A region of memory handed out by :class:`Arena`.

    Attributes:
        name: human-readable label (the array name in the workload model).
        base: byte address of the first byte.
        size: size in bytes.
    """

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte address of the allocation."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """Return ``True`` if ``addr`` falls inside this allocation."""
        return self.base <= addr < self.end


@dataclass
class Arena:
    """Bump allocator over a simulated physical address space.

    Args:
        base: starting byte address of the arena (default 1 MiB, leaving
            low memory for the "code" segment used by instruction fetch
            modelling).
        alignment: every allocation is aligned to this many bytes
            (default 64, one cache block).
        guard: bytes of unused padding inserted after every allocation so
            that arrays never abut within a block (default one block).
    """

    base: int = 1 << 20
    alignment: int = 64
    guard: int = 64
    _cursor: int = field(init=False)
    _allocations: List[Allocation] = field(init=False, default_factory=list)
    _by_name: Dict[str, Allocation] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.alignment <= 0:
            raise ValueError(f"alignment must be positive, got {self.alignment}")
        if self.guard < 0:
            raise ValueError(f"guard must be non-negative, got {self.guard}")
        if self.base < 0:
            raise ValueError(f"base must be non-negative, got {self.base}")
        self._cursor = self._align(self.base)

    def _align(self, addr: int) -> int:
        rem = addr % self.alignment
        if rem:
            addr += self.alignment - rem
        return addr

    def alloc(self, name: str, size: int) -> Allocation:
        """Allocate ``size`` bytes and return the :class:`Allocation`.

        Raises:
            ValueError: if ``size`` is not positive or ``name`` was already
                allocated.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if name in self._by_name:
            raise ValueError(f"array {name!r} already allocated")
        allocation = Allocation(name=name, base=self._cursor, size=size)
        self._cursor = self._align(allocation.end + self.guard)
        self._allocations.append(allocation)
        self._by_name[name] = allocation
        return allocation

    def alloc_words(self, name: str, n_words: int, word_size: int = 8) -> Allocation:
        """Allocate ``n_words`` machine words."""
        return self.alloc(name, n_words * word_size)

    def __getitem__(self, name: str) -> Allocation:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def allocations(self) -> List[Allocation]:
        """All allocations in allocation order (a copy)."""
        return list(self._allocations)

    @property
    def total_bytes(self) -> int:
        """Total bytes handed out (excluding guards and padding)."""
        return sum(a.size for a in self._allocations)

    @property
    def footprint_bytes(self) -> int:
        """Span from arena base to the current cursor (including padding)."""
        return self._cursor - self.base

    def find(self, addr: int) -> Allocation:
        """Return the allocation containing ``addr``.

        Raises:
            KeyError: if no allocation contains the address.
        """
        for allocation in self._allocations:
            if allocation.contains(addr):
                return allocation
        raise KeyError(f"address {addr:#x} is not inside any allocation")
