"""Address arithmetic shared by every simulator component.

All addresses in the library are plain Python integers denoting *byte*
addresses.  Cache simulators and stream buffers reason about *block*
addresses (byte address divided by the cache block size); the non-unit
stride filter reasons about *czone tags* (high-order bits of the byte
address).  This module centralises those conversions so that every
component agrees on the same geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AddressSpace",
    "is_power_of_two",
    "log2_int",
]


def is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressSpace:
    """Geometry of the simulated physical address space.

    Attributes:
        word_size: bytes per machine word (default 8, a 64-bit word).
        block_size: bytes per cache block (default 64, the paper's primary
            cache block size; the L2 comparison also uses 128).
    """

    word_size: int = 8
    block_size: int = 64

    def __post_init__(self) -> None:
        if not is_power_of_two(self.word_size):
            raise ValueError(f"word_size must be a power of two, got {self.word_size}")
        if not is_power_of_two(self.block_size):
            raise ValueError(f"block_size must be a power of two, got {self.block_size}")
        if self.block_size < self.word_size:
            raise ValueError(
                f"block_size ({self.block_size}) must be >= word_size ({self.word_size})"
            )

    @property
    def block_bits(self) -> int:
        """Number of byte-offset bits within a block."""
        return log2_int(self.block_size)

    @property
    def word_bits(self) -> int:
        """Number of byte-offset bits within a word."""
        return log2_int(self.word_size)

    @property
    def words_per_block(self) -> int:
        return self.block_size // self.word_size

    def block_of(self, addr: int) -> int:
        """Block address (block index) containing byte address ``addr``."""
        return addr >> self.block_bits

    def block_base(self, addr: int) -> int:
        """Byte address of the first byte of the block containing ``addr``."""
        return addr & ~(self.block_size - 1)

    def block_offset(self, addr: int) -> int:
        """Byte offset of ``addr`` within its block."""
        return addr & (self.block_size - 1)

    def word_of(self, addr: int) -> int:
        """Word address (word index) containing byte address ``addr``."""
        return addr >> self.word_bits

    def addr_of_block(self, block: int) -> int:
        """Byte address of the first byte of block number ``block``."""
        return block << self.block_bits

    def addr_of_word(self, word: int) -> int:
        """Byte address of the first byte of word number ``word``."""
        return word << self.word_bits

    def czone_tag(self, addr: int, czone_bits: int) -> int:
        """Partition tag for the non-unit stride filter (paper Section 7).

        The paper dynamically partitions the physical address space: two
        references belong to the same partition when their addresses share
        the same high-order (tag) bits.  ``czone_bits`` is the number of
        low-order byte-address bits inside the *concentration zone*.
        """
        if czone_bits < 0:
            raise ValueError(f"czone_bits must be non-negative, got {czone_bits}")
        return addr >> czone_bits

    def block_stride(self, delta_bytes: int) -> int:
        """Convert a byte-address delta into a block-address stride.

        Rounds toward zero so that sub-block deltas map to stride zero,
        which callers treat as "not a non-unit stride".
        """
        if delta_bytes >= 0:
            return delta_bytes >> self.block_bits
        return -((-delta_bytes) >> self.block_bits)
