"""Set-associative cache simulator.

This is the substrate under everything in the paper: the 64K+64K 4-way
random-replacement on-chip caches whose *miss stream* drives the stream
buffers (Section 4.1), and the 64KB–4MB secondary caches of the Section 8
comparison.

The simulator is functional, not timed: it tracks hits, misses and
write-back traffic.  ``simulate`` is the bulk entry point and produces a
:class:`MissTrace` — the ordered stream of fetches and write-backs that the
next level of the hierarchy (stream buffers, L2 or memory) observes.
"""

from __future__ import annotations

import enum
import random
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from itertools import repeat
from typing import List, Optional, Tuple

import numpy as np

from repro.caches.replacement import POLICY_NAMES
from repro.check import invariants as _inv
from repro.mem.address import is_power_of_two, log2_int
from repro.trace.events import AccessKind, Trace

__all__ = ["CacheConfig", "CacheStats", "MissEventKind", "MissTrace", "Cache"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache.

    Attributes:
        capacity: total data bytes.
        assoc: set associativity (1 = direct mapped).
        block_size: block size in bytes.
        policy: replacement policy name (``lru``/``fifo``/``random``).
        write_back: write-back if True (the paper's L1), else write-through.
        write_allocate: allocate on write miss (the paper's L1) if True.
        seed: RNG seed for random replacement (reproducible runs).
    """

    capacity: int
    assoc: int
    block_size: int = 64
    policy: str = "random"
    write_back: bool = True
    write_allocate: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {self.policy!r}; expected one of {POLICY_NAMES}")
        if not is_power_of_two(self.block_size):
            raise ValueError(f"block_size must be a power of two, got {self.block_size}")
        if self.assoc <= 0:
            raise ValueError(f"assoc must be positive, got {self.assoc}")
        if self.capacity <= 0 or self.capacity % (self.assoc * self.block_size):
            raise ValueError(
                f"capacity {self.capacity} must be a positive multiple of "
                f"assoc*block_size = {self.assoc * self.block_size}"
            )
        if not is_power_of_two(self.n_sets):
            raise ValueError(
                f"number of sets must be a power of two, got {self.n_sets} "
                f"(capacity={self.capacity}, assoc={self.assoc}, block={self.block_size})"
            )

    @property
    def n_sets(self) -> int:
        return self.capacity // (self.assoc * self.block_size)

    @property
    def block_bits(self) -> int:
        return log2_int(self.block_size)

    @classmethod
    def paper_l1(cls, seed: int = 0) -> "CacheConfig":
        """The paper's on-chip cache: 64KB, 4-way, random, WB+WA."""
        return cls(capacity=64 * 1024, assoc=4, block_size=64, policy="random", seed=seed)


@dataclass
class CacheStats:
    """Access-level counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / accesses (0.0 when there were no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0.0 when there were no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum with ``other`` (new object)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            read_misses=self.read_misses + other.read_misses,
            write_misses=self.write_misses + other.write_misses,
            writebacks=self.writebacks + other.writebacks,
            invalidations=self.invalidations + other.invalidations,
        )


class MissEventKind(enum.IntEnum):
    """Events a cache presents to the next memory-hierarchy level."""

    READ_MISS = 0
    WRITE_MISS = 1
    WRITEBACK = 2
    IFETCH_MISS = 3  # emitted by SplitL1 so unified/partitioned streams can route


@dataclass(frozen=True)
class MissTrace:
    """Ordered fetch/write-back stream emitted by a cache.

    Attributes:
        addrs: byte addresses — the missing access's address for misses,
            the block base address for write-backs.
        kinds: :class:`MissEventKind` values (uint8).
        block_bits: block-offset bits of the emitting cache, kept so
            consumers agree on block geometry.
        pcs: optional PCs of the missing accesses (zero for write-backs);
            present only when the source trace carried PCs.  Used by
            PC-indexed prefetch baselines, never by the stream buffers.
    """

    addrs: np.ndarray
    kinds: np.ndarray
    block_bits: int
    pcs: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.addrs.shape != self.kinds.shape:
            raise ValueError("addrs and kinds must have the same shape")
        if self.pcs is not None and self.pcs.shape != self.addrs.shape:
            raise ValueError("pcs must match addrs shape")

    def pcs_or_zeros(self) -> np.ndarray:
        """The PC array, or zeros when the trace carried no PCs."""
        if self.pcs is not None:
            return self.pcs
        return np.zeros(self.addrs.shape, dtype=np.int64)

    def __len__(self) -> int:
        return int(self.addrs.shape[0])

    @property
    def n_misses(self) -> int:
        """Demand fetches (read + write misses)."""
        return int(np.count_nonzero(self.kinds != int(MissEventKind.WRITEBACK)))

    @property
    def n_writebacks(self) -> int:
        return int(np.count_nonzero(self.kinds == int(MissEventKind.WRITEBACK)))

    @cached_property
    def _kind_flags(self) -> Tuple[bool, bool]:
        """(has write-backs, has instruction-fetch misses), one scan.

        Cached on the instance so a miss trace replayed across a whole
        stream-configuration sweep scans its kind array once, not per
        replay (``cached_property`` writes into ``__dict__`` directly,
        so it works on this frozen dataclass).
        """
        kinds = self.kinds
        return (
            bool(np.any(kinds == int(MissEventKind.WRITEBACK))),
            bool(np.any(kinds == int(MissEventKind.IFETCH_MISS))),
        )

    @property
    def has_writebacks(self) -> bool:
        """Whether any event is a write-back (cached after first scan)."""
        return self._kind_flags[0]

    @property
    def has_ifetch_misses(self) -> bool:
        """Whether any event is an instruction fetch (cached)."""
        return self._kind_flags[1]

    def misses_only(self) -> "MissTrace":
        """The demand-fetch sub-stream (write-backs removed)."""
        mask = self.kinds != int(MissEventKind.WRITEBACK)
        pcs = self.pcs[mask] if self.pcs is not None else None
        return MissTrace(self.addrs[mask], self.kinds[mask], self.block_bits, pcs)

    @classmethod
    def concat(cls, parts: List["MissTrace"]) -> "MissTrace":
        """Concatenate miss traces (all must share ``block_bits``)."""
        parts = [p for p in parts if len(p)]
        if not parts:
            raise ValueError("cannot concat zero non-empty miss traces")
        bits = parts[0].block_bits
        if any(p.block_bits != bits for p in parts):
            raise ValueError("cannot concat miss traces with different block_bits")
        return cls(
            np.concatenate([p.addrs for p in parts]),
            np.concatenate([p.kinds for p in parts]),
            bits,
        )


class Cache:
    """A single set-associative cache.

    Use :meth:`access` for per-access stepping (tests, composition) and
    :meth:`simulate` to run a whole :class:`~repro.trace.events.Trace`.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._block_bits = config.block_bits
        self._set_mask = config.n_sets - 1
        self._assoc = config.assoc
        self._write_back = config.write_back
        self._write_allocate = config.write_allocate
        self._rng = random.Random(config.seed)
        # One dict per set mapping block address -> dirty flag.  For random
        # replacement a parallel slot list supports O(1) victim choice.
        self._sets: List = [OrderedDict() for _ in range(config.n_sets)]
        if config.policy == "random":
            self._sets = [dict() for _ in range(config.n_sets)]
            self._slots: List[List[int]] = [[] for _ in range(config.n_sets)]
        self._policy = config.policy

    # -- single-access API --------------------------------------------------

    def access(self, addr: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access byte address ``addr``.

        Returns:
            ``(hit, writeback_block)`` — ``writeback_block`` is the evicted
            dirty block's block address, or ``None``.
        """
        return self.access_block(addr >> self._block_bits, is_write)

    def access_block(self, block: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access a block address directly (see :meth:`access`)."""
        self.stats.accesses += 1
        set_index = block & self._set_mask
        entries = self._sets[set_index]
        if block in entries:
            self.stats.hits += 1
            if self._policy == "lru":
                entries.move_to_end(block)
            if is_write:
                if self._write_back:
                    entries[block] = True
                    return True, None
                return True, block  # write-through store travels to memory
            return True, None
        # Miss.
        self.stats.misses += 1
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        if is_write and not self._write_allocate:
            return False, block  # no fetch; store goes straight to memory
        writeback = self._install(set_index, block, dirty=is_write and self._write_back)
        if not self._write_back and is_write:
            return False, block
        return False, writeback

    def access_block_ex(
        self, block: int, is_write: bool = False
    ) -> Tuple[bool, Optional[int], bool]:
        """Like :meth:`access_block` but reports *all* evictions.

        Returns:
            ``(hit, evicted_block, evicted_dirty)`` — ``evicted_block`` is
            the block displaced by this access (clean or dirty), or None.
            Needed by composites (victim caches) that capture clean
            evictions too.  Write-through modes are not supported here.
        """
        if not (self._write_back and self._write_allocate):
            raise ValueError("access_block_ex requires a write-back, write-allocate cache")
        self.stats.accesses += 1
        set_index = block & self._set_mask
        entries = self._sets[set_index]
        if block in entries:
            self.stats.hits += 1
            if self._policy == "lru":
                entries.move_to_end(block)
            if is_write:
                entries[block] = True
            return True, None, False
        self.stats.misses += 1
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        evicted, evicted_dirty = self._install_ex(set_index, block, dirty=is_write)
        return False, evicted, evicted_dirty

    def fill_block(self, block: int, dirty: bool = False) -> Tuple[Optional[int], bool]:
        """Install ``block`` without counting an access (victim swap-in).

        Returns the displaced ``(block, dirty)`` pair (``(None, False)`` if
        no eviction, or if the block was already resident, in which case
        its dirty bit is OR-ed with ``dirty``).
        """
        set_index = block & self._set_mask
        entries = self._sets[set_index]
        if block in entries:
            if dirty:
                entries[block] = True
            return None, False
        return self._install_ex(set_index, block, dirty=dirty)

    def _install_ex(
        self, set_index: int, block: int, dirty: bool
    ) -> Tuple[Optional[int], bool]:
        """Insert ``block``; return (evicted block or None, evicted dirty)."""
        entries = self._sets[set_index]
        evicted = None
        evicted_dirty = False
        if self._policy == "random":
            slots = self._slots[set_index]
            if len(slots) >= self._assoc:
                slot = self._rng.randrange(self._assoc)
                evicted = slots[slot]
                evicted_dirty = entries.pop(evicted)
                if evicted_dirty:
                    self.stats.writebacks += 1
                slots[slot] = block
            else:
                slots.append(block)
            entries[block] = dirty
        else:
            if len(entries) >= self._assoc:
                evicted, evicted_dirty = entries.popitem(last=False)
                if evicted_dirty:
                    self.stats.writebacks += 1
            entries[block] = dirty
        return evicted, evicted_dirty

    def _install(self, set_index: int, block: int, dirty: bool) -> Optional[int]:
        """Insert ``block``; return evicted dirty block address or None."""
        evicted, evicted_dirty = self._install_ex(set_index, block, dirty)
        return evicted if evicted_dirty else None

    def mark_dirty(self, block: int) -> bool:
        """Mark a resident block dirty without counting an access.

        Used to apply a compressed run's collapsed write hits (see
        :class:`~repro.trace.compress.CompressedTrace`).  Returns True if
        the block was resident.
        """
        entries = self._sets[block & self._set_mask]
        if block in entries:
            entries[block] = True
            return True
        return False

    def probe(self, addr: int) -> bool:
        """Non-mutating lookup: is the block containing ``addr`` resident?"""
        block = addr >> self._block_bits
        return block in self._sets[block & self._set_mask]

    def invalidate_block(self, block: int) -> bool:
        """Drop ``block`` if resident (dirty data is discarded).

        Returns True if the block was resident.
        """
        set_index = block & self._set_mask
        entries = self._sets[set_index]
        if block not in entries:
            return False
        del entries[block]
        if self._policy == "random":
            slots = self._slots[set_index]
            slots.remove(block)
        self.stats.invalidations += 1
        return True

    def flush(self) -> List[int]:
        """Empty the cache; return dirty block addresses in set order."""
        dirty_blocks = []
        for set_index, entries in enumerate(self._sets):
            for block, dirty in entries.items():
                if dirty:
                    dirty_blocks.append(block)
            entries.clear()
            if self._policy == "random":
                self._slots[set_index].clear()
        self.stats.writebacks += len(dirty_blocks)
        return dirty_blocks

    def resident_blocks(self) -> List[int]:
        """All resident block addresses (for tests/inspection)."""
        blocks: List[int] = []
        for entries in self._sets:
            blocks.extend(entries)
        return blocks

    def check_set_invariants(self, set_index: int) -> None:
        """Structural self-checks for one set (cheap enough per access)."""
        entries = self._sets[set_index]
        _inv.invariant(
            len(entries) <= self._assoc,
            "cache set %d holds %d blocks > assoc %d",
            set_index,
            len(entries),
            self._assoc,
        )
        for block in entries:
            _inv.invariant(
                (block & self._set_mask) == set_index,
                "block %#x filed in wrong set %d",
                block,
                set_index,
            )
        if self._policy == "random":
            slots = self._slots[set_index]
            _inv.invariant(
                sorted(slots) == sorted(entries),
                "random-policy slot list disagrees with set contents in set %d",
                set_index,
            )

    def check_invariants(self) -> None:
        """Whole-cache self-checks (``REPRO_CHECK=1`` runs these per simulate)."""
        for set_index in range(len(self._sets)):
            self.check_set_invariants(set_index)
        stats = self.stats
        _inv.invariant(
            stats.hits + stats.misses == stats.accesses,
            "cache stats do not conserve: hits %d + misses %d != accesses %d",
            stats.hits,
            stats.misses,
            stats.accesses,
        )
        _inv.invariant(
            stats.read_misses + stats.write_misses == stats.misses,
            "miss breakdown does not conserve: %d + %d != %d",
            stats.read_misses,
            stats.write_misses,
            stats.misses,
        )

    # -- bulk API -------------------------------------------------------------

    def simulate(
        self,
        trace: Trace,
        weights: Optional[np.ndarray] = None,
        dirty: Optional[np.ndarray] = None,
    ) -> MissTrace:
        """Run a whole trace through the cache, returning its miss trace.

        Args:
            trace: accesses to run (instruction fetches are treated as
                reads; callers route I/D split upstream).
            weights: optional per-access run weights from
                :func:`~repro.trace.compress.compress_consecutive`.  When
                given, ``stats.accesses``/``stats.hits`` are corrected to
                original-trace counts (misses are exact either way).
            dirty: optional per-access flags from the same compression —
                an access with ``dirty[i]`` leaves its block dirty even if
                it is a read (the run it stands for contained a write
                hit).  Only meaningful for write-back write-allocate
                caches; other policies must simulate the raw trace.

        Statistics accumulate into :attr:`stats`.
        """
        if dirty is not None:
            if not (self._write_back and self._write_allocate):
                raise ValueError(
                    "dirty-carrying compressed traces require a write-back, "
                    "write-allocate cache; simulate the raw trace instead"
                )
            if dirty.shape[0] != len(trace):
                raise ValueError(
                    f"dirty length {dirty.shape[0]} != trace length {len(trace)}"
                )
        out_addrs: List[int] = []
        out_kinds: List[int] = []
        out_pcs: List[int] = []
        carry_pcs = trace.has_pcs

        if (
            self._policy == "random"
            and self._write_back
            and self._write_allocate
            and not carry_pcs
            and not _inv.ENABLED
        ):
            self._simulate_fast_random(trace, out_addrs, out_kinds, dirty)
        else:
            write_kind = int(AccessKind.WRITE)
            block_bits = self._block_bits
            wb_kind = int(MissEventKind.WRITEBACK)
            read_miss_kind = int(MissEventKind.READ_MISS)
            write_miss_kind = int(MissEventKind.WRITE_MISS)
            access_block = self.access_block
            pcs_list = trace.pcs_or_zeros().tolist()
            dirty_iter = dirty.tolist() if dirty is not None else repeat(False)
            checking = _inv.ENABLED
            for addr, kind, pc, drt in zip(
                trace.addrs.tolist(), trace.kinds.tolist(), pcs_list, dirty_iter
            ):
                is_write = kind == write_kind
                block = addr >> block_bits
                hit, writeback = access_block(block, is_write)
                if drt and not is_write:
                    self.mark_dirty(block)
                if not hit:
                    out_addrs.append(addr)
                    out_kinds.append(write_miss_kind if is_write else read_miss_kind)
                    if carry_pcs:
                        out_pcs.append(pc)
                if writeback is not None:
                    out_addrs.append(writeback << block_bits)
                    out_kinds.append(wb_kind)
                    if carry_pcs:
                        out_pcs.append(0)
                if checking:
                    self.check_set_invariants(block & self._set_mask)
            if checking:
                self.check_invariants()

        if weights is not None:
            if weights.shape[0] != len(trace):
                raise ValueError(
                    f"weights length {weights.shape[0]} != trace length {len(trace)}"
                )
            true_accesses = int(weights.sum())
            # Per-access counters counted compressed accesses; correct them.
            self.stats.accesses += true_accesses - len(trace)
            self.stats.hits += true_accesses - len(trace)

        return MissTrace(
            np.asarray(out_addrs, dtype=np.int64),
            np.asarray(out_kinds, dtype=np.uint8),
            self._block_bits,
            np.asarray(out_pcs, dtype=np.int64) if carry_pcs else None,
        )

    def _simulate_fast_random(
        self,
        trace: Trace,
        out_addrs: List[int],
        out_kinds: List[int],
        dirty: Optional[np.ndarray] = None,
    ) -> None:
        """Inlined hot loop for the paper's L1 (random, WB+WA)."""
        block_bits = self._block_bits
        set_mask = self._set_mask
        assoc = self._assoc
        sets = self._sets
        slots_by_set = self._slots
        randrange = self._rng.randrange
        write_kind = int(AccessKind.WRITE)
        wb_kind = int(MissEventKind.WRITEBACK)
        read_miss_kind = int(MissEventKind.READ_MISS)
        write_miss_kind = int(MissEventKind.WRITE_MISS)
        append_addr = out_addrs.append
        append_kind = out_kinds.append

        accesses = 0
        hits = 0
        read_misses = 0
        write_misses = 0
        writebacks = 0

        dirty_iter = dirty.tolist() if dirty is not None else repeat(False)
        for addr, kind, drt in zip(trace.addrs.tolist(), trace.kinds.tolist(), dirty_iter):
            accesses += 1
            block = addr >> block_bits
            set_index = block & set_mask
            entries = sets[set_index]
            is_write = kind == write_kind
            make_dirty = is_write or drt
            if block in entries:
                hits += 1
                if make_dirty:
                    entries[block] = True
                continue
            if is_write:
                write_misses += 1
                append_kind(write_miss_kind)
            else:
                read_misses += 1
                append_kind(read_miss_kind)
            append_addr(addr)
            slots = slots_by_set[set_index]
            if len(slots) >= assoc:
                slot = randrange(assoc)
                victim = slots[slot]
                if entries.pop(victim):
                    writebacks += 1
                    append_addr(victim << block_bits)
                    append_kind(wb_kind)
                slots[slot] = block
            else:
                slots.append(block)
            entries[block] = make_dirty

        stats = self.stats
        stats.accesses += accesses
        stats.hits += hits
        stats.misses += read_misses + write_misses
        stats.read_misses += read_misses
        stats.write_misses += write_misses
        stats.writebacks += writebacks
