"""Set sampling (Kessler, Hill & Wood), used by the paper for Table 4.

Simulating a multi-megabyte L2 over a long miss trace is expensive; set
sampling simulates only a deterministic subset of the cache's sets and
estimates the hit rate from the accesses that map to those sets.  Because
set mapping is a pure function of the block address, the sampled sets see
exactly the accesses the full cache's same sets would see, so per-set
behaviour is exact and only the cross-set mix is estimated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.caches.cache import CacheConfig, MissTrace
from repro.caches.secondary import SecondaryResult, simulate_secondary

__all__ = [
    "SamplingPlan",
    "sampled_hit_rate",
    "sampling_error_bound",
    "sampling_halfwidth",
]


@dataclass(frozen=True)
class SamplingPlan:
    """How to sample sets of a cache.

    Attributes:
        sample_every: keep sets whose index is a multiple of this.
    """

    sample_every: int = 16

    def __post_init__(self) -> None:
        if self.sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {self.sample_every}")

    def sets_sampled(self, n_sets: int) -> int:
        """Number of sets simulated for a cache with ``n_sets`` sets."""
        return (n_sets + self.sample_every - 1) // self.sample_every


def sampled_hit_rate(
    miss_trace: MissTrace,
    config: CacheConfig,
    plan: SamplingPlan = SamplingPlan(),
) -> SecondaryResult:
    """Estimate an L2's local hit rate via set sampling.

    Falls back to full simulation when the cache has fewer sets than the
    sampling factor would leave meaningful (at least 4 sampled sets).

    The probe dispatches through the engine selector: with the default
    ``vector`` engine (see :mod:`repro.sim.vector`) the sampling mask and
    the guaranteed-hit collapse run vectorized, bit-identical to the
    scalar :func:`~repro.caches.secondary.simulate_secondary`.
    """
    from repro.sim.vector import (
        ENGINE_VECTOR,
        resolve_engine,
        vector_simulate_secondary,
    )

    sample_every = plan.sample_every
    while sample_every > 1 and config.n_sets // sample_every < 4:
        sample_every //= 2
    if resolve_engine() == ENGINE_VECTOR:
        result = vector_simulate_secondary(miss_trace, config, sample_every=sample_every)
        if result is not None:
            return result
    return simulate_secondary(miss_trace, config, sample_every=sample_every)


def sampling_halfwidth(
    sampled_demand_accesses: int,
    hit_rate: float = 0.5,
    z: float = 3.0,
    population: int = None,
) -> float:
    """A-priori confidence half-width of a set-sampled hit-rate estimate.

    The forward-looking companion of
    :meth:`~repro.caches.secondary.SecondaryResult.hit_rate_halfwidth`:
    given how many demand accesses a sampling plan would leave (roughly
    ``total demand / sample_every``), bound how far the sampled estimate
    can sit from the full-cache value *before* running any simulation.
    The analytic screen widens its pruning margin by this amount so
    sampling noise cannot flip a match decision it skipped simulating.

    Degenerate cases are pinned rather than extrapolated: a sample that
    covers the whole population is an exact measurement (half-width 0.0,
    not a positive band that would loosen the screen), and an empty
    *population* has nothing to mis-estimate (0.0 again, matching the
    PR 3 convention of pinning empty-trace hit rates to 0.0).  Only an
    empty sample drawn from a non-empty population is genuinely
    uninformative and returns the vacuous band 1.0.

    Args:
        sampled_demand_accesses: demand accesses the sampled sets see.
        hit_rate: anticipated hit rate; the default 0.5 maximises
            ``p*(1-p)`` and therefore the band (a safe worst case).
        z: sigma multiplier (3 by default, matching the screen).
        population: total demand accesses the full cache would see, when
            known.  Enables the exact-measurement and empty-population
            pins above; ``None`` preserves the bare binomial band.

    Returns:
        The half-width: 0.0 for exact or vacuously-exact measurements,
        1.0 when a non-empty population is entirely unsampled, else the
        ``z * sqrt(p(1-p)/n)`` binomial band.
    """
    if population is not None and population <= 0:
        return 0.0
    if sampled_demand_accesses <= 0:
        return 1.0
    if population is not None and sampled_demand_accesses >= population:
        return 0.0
    return z * float(np.sqrt(hit_rate * (1.0 - hit_rate) / sampled_demand_accesses))


def sampling_error_bound(
    full: Sequence[float],
    sampled: Sequence[float],
) -> float:
    """Maximum absolute hit-rate discrepancy between paired estimates.

    A validation helper for tests and EXPERIMENTS.md: given hit rates from
    full and sampled simulation of the same (trace, config) pairs, return
    the worst-case absolute difference.
    """
    if len(full) != len(sampled):
        raise ValueError("full and sampled sequences must pair up")
    if not full:
        return 0.0
    return float(np.max(np.abs(np.asarray(full) - np.asarray(sampled))))
