"""Jouppi victim cache.

The paper sidesteps conflict misses by using a 4-way L1 ("In a
direct-mapped cache, Jouppi's victim buffers may also be needed", Section
4.1).  This module implements the victim buffer so that the direct-mapped
configuration can be studied as an ablation: a small fully-associative LRU
buffer holding blocks evicted from the main cache (clean or dirty).  On a
main-cache miss that hits the victim buffer, the block (and its dirty bit)
is swapped back into the main cache without any memory traffic; dirty
blocks are written back to memory only when they age out of the victim
buffer itself.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.caches.cache import Cache, CacheConfig, MissEventKind, MissTrace
from repro.trace.events import AccessKind, Trace

__all__ = ["VictimCacheConfig", "CacheWithVictim"]


@dataclass(frozen=True)
class VictimCacheConfig:
    """Victim buffer parameters.

    Attributes:
        entries: number of victim lines (Jouppi evaluated 1-16).
    """

    entries: int = 4

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(f"entries must be positive, got {self.entries}")


class CacheWithVictim:
    """A write-back cache backed by a fully-associative victim buffer."""

    def __init__(
        self,
        cache_config: CacheConfig,
        victim_config: VictimCacheConfig = VictimCacheConfig(),
    ):
        if not (cache_config.write_back and cache_config.write_allocate):
            raise ValueError("CacheWithVictim requires a write-back, write-allocate cache")
        self.cache = Cache(cache_config)
        self.victim_config = victim_config
        # block -> dirty, LRU order (oldest first).
        self._victims: "OrderedDict[int, bool]" = OrderedDict()
        self.victim_hits = 0
        self.victim_probes = 0

    @property
    def accesses(self) -> int:
        return self.cache.stats.accesses

    @property
    def combined_hits(self) -> int:
        """Accesses serviced on-chip (main cache or victim buffer)."""
        return self.cache.stats.hits + self.victim_hits

    @property
    def combined_hit_rate(self) -> float:
        accesses = self.accesses
        return self.combined_hits / accesses if accesses else 0.0

    def access(self, addr: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access ``addr``.

        Returns:
            ``(serviced_on_chip, writeback_block)`` — the write-back, if
            any, is a dirty block aged out of the victim buffer.
        """
        block = addr >> self.cache.config.block_bits
        hit, evicted, evicted_dirty = self.cache.access_block_ex(block, is_write)
        if hit:
            return True, None
        self.victim_probes += 1
        recovered_dirty = None
        if block in self._victims:
            self.victim_hits += 1
            recovered_dirty = self._victims.pop(block)
        writeback = self._stash(evicted, evicted_dirty)
        if recovered_dirty is None:
            return False, writeback
        if recovered_dirty:
            # access_block_ex installed the block clean (read) or dirty
            # (write); restore the recovered dirty bit either way.
            self.cache.fill_block(block, dirty=True)
        return True, writeback

    def _stash(self, evicted: Optional[int], dirty: bool) -> Optional[int]:
        """Insert an evicted block; return a dirty block aged out, if any."""
        if evicted is None:
            return None
        self._victims[evicted] = dirty
        self._victims.move_to_end(evicted)
        if len(self._victims) <= self.victim_config.entries:
            return None
        old_block, old_dirty = self._victims.popitem(last=False)
        return old_block if old_dirty else None

    def drain(self) -> List[int]:
        """Empty the victim buffer, returning dirty blocks needing write-back."""
        dirty = [block for block, is_dirty in self._victims.items() if is_dirty]
        self._victims.clear()
        return dirty

    def resident_victims(self) -> List[int]:
        """Blocks currently in the victim buffer, oldest first."""
        return list(self._victims)

    def simulate(self, trace: Trace) -> MissTrace:
        """Run a trace; the miss trace contains only off-chip events."""
        out_addrs = []
        out_kinds = []
        write_kind = int(AccessKind.WRITE)
        block_bits = self.cache.config.block_bits
        for addr, kind in zip(trace.addrs.tolist(), trace.kinds.tolist()):
            is_write = kind == write_kind
            serviced, writeback = self.access(addr, is_write)
            if not serviced:
                out_addrs.append(addr)
                out_kinds.append(
                    int(MissEventKind.WRITE_MISS) if is_write else int(MissEventKind.READ_MISS)
                )
            if writeback is not None:
                out_addrs.append(writeback << block_bits)
                out_kinds.append(int(MissEventKind.WRITEBACK))
        return MissTrace(
            np.asarray(out_addrs, dtype=np.int64),
            np.asarray(out_kinds, dtype=np.uint8),
            block_bits,
        )
