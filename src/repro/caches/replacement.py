"""Replacement policies.

The paper's on-chip caches use random replacement ("The caches use a
random replacement policy", Section 4.1); the secondary-cache comparison
and the stream-buffer bank use LRU.  FIFO is included for completeness and
ablations.

Each policy manages the contents of a single cache set: which keys are
resident and which key to evict when the set is full.  The cache hot path
in :mod:`repro.caches.cache` inlines equivalent logic for speed; these
classes are the reference implementations, used directly by the
lower-traffic components (victim cache, stream-bank LRU) and by the
property tests that check the inlined logic against them.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Hashable, List, Optional

__all__ = ["ReplacementPolicy", "LRUPolicy", "FIFOPolicy", "RandomPolicy", "make_policy", "POLICY_NAMES"]


class ReplacementPolicy:
    """Tracks residents of one set and picks eviction victims.

    Subclasses implement the policy-specific bookkeeping.  Capacity is the
    set associativity.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity

    def touch(self, key: Hashable) -> None:
        """Record a hit on ``key`` (must be resident)."""
        raise NotImplementedError

    def insert(self, key: Hashable) -> Optional[Hashable]:
        """Insert ``key``; return the evicted key if the set was full."""
        raise NotImplementedError

    def remove(self, key: Hashable) -> None:
        """Remove ``key`` if resident (invalidation)."""
        raise NotImplementedError

    def __contains__(self, key: Hashable) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> List[Hashable]:
        """Resident keys (order is policy-specific)."""
        raise NotImplementedError


class _OrderedPolicy(ReplacementPolicy):
    """Shared machinery for recency/insertion ordered policies."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def insert(self, key: Hashable) -> Optional[Hashable]:
        if key in self._entries:
            raise ValueError(f"key {key!r} already resident")
        victim = None
        if len(self._entries) >= self.capacity:
            victim, _ = self._entries.popitem(last=False)
        self._entries[key] = None
        return victim

    def remove(self, key: Hashable) -> None:
        self._entries.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[Hashable]:
        return list(self._entries)


class LRUPolicy(_OrderedPolicy):
    """Least recently used: hits refresh recency."""

    def touch(self, key: Hashable) -> None:
        self._entries.move_to_end(key)


class FIFOPolicy(_OrderedPolicy):
    """First in, first out: hits do not affect eviction order."""

    def touch(self, key: Hashable) -> None:
        if key not in self._entries:
            raise KeyError(key)


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection (the paper's L1 policy)."""

    def __init__(self, capacity: int, rng: Optional[random.Random] = None):
        super().__init__(capacity)
        self._rng = rng if rng is not None else random.Random(0)
        self._slots: List[Hashable] = []
        self._index = {}

    def touch(self, key: Hashable) -> None:
        if key not in self._index:
            raise KeyError(key)

    def insert(self, key: Hashable) -> Optional[Hashable]:
        if key in self._index:
            raise ValueError(f"key {key!r} already resident")
        if len(self._slots) < self.capacity:
            self._index[key] = len(self._slots)
            self._slots.append(key)
            return None
        slot = self._rng.randrange(self.capacity)
        victim = self._slots[slot]
        del self._index[victim]
        self._slots[slot] = key
        self._index[key] = slot
        return victim

    def remove(self, key: Hashable) -> None:
        slot = self._index.pop(key, None)
        if slot is None:
            return
        last = self._slots.pop()
        if last is not key:
            self._slots[slot] = last
            self._index[last] = slot

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._slots)

    def keys(self) -> List[Hashable]:
        return list(self._slots)


POLICY_NAMES = ("lru", "fifo", "random")


def make_policy(name: str, capacity: int, rng: Optional[random.Random] = None) -> ReplacementPolicy:
    """Construct a policy by name (one of :data:`POLICY_NAMES`).

    Raises:
        ValueError: for an unknown policy name.
    """
    if name == "lru":
        return LRUPolicy(capacity)
    if name == "fifo":
        return FIFOPolicy(capacity)
    if name == "random":
        return RandomPolicy(capacity, rng=rng)
    raise ValueError(f"unknown replacement policy {name!r}; expected one of {POLICY_NAMES}")
