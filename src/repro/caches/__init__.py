"""Cache simulators: the substrate beneath the stream buffers."""

from repro.caches.cache import Cache, CacheConfig, CacheStats, MissEventKind, MissTrace
from repro.caches.replacement import (
    FIFOPolicy,
    LRUPolicy,
    POLICY_NAMES,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.caches.sampling import SamplingPlan, sampled_hit_rate, sampling_error_bound
from repro.caches.secondary import (
    PAPER_L2_ASSOCS,
    PAPER_L2_BLOCKS,
    PAPER_L2_SIZES,
    SecondaryResult,
    best_hit_rate_at_size,
    candidate_configs,
    simulate_secondary,
)
from repro.caches.split import SplitL1, SplitL1Config
from repro.caches.victim import CacheWithVictim, VictimCacheConfig

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "CacheWithVictim",
    "FIFOPolicy",
    "LRUPolicy",
    "MissEventKind",
    "MissTrace",
    "PAPER_L2_ASSOCS",
    "PAPER_L2_BLOCKS",
    "PAPER_L2_SIZES",
    "POLICY_NAMES",
    "RandomPolicy",
    "ReplacementPolicy",
    "SamplingPlan",
    "SecondaryResult",
    "SplitL1",
    "SplitL1Config",
    "VictimCacheConfig",
    "best_hit_rate_at_size",
    "candidate_configs",
    "make_policy",
    "sampled_hit_rate",
    "sampling_error_bound",
    "simulate_secondary",
]
