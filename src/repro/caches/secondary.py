"""Secondary (L2) cache evaluation over an L1 miss stream (paper Section 8).

The paper asks: what is the minimum secondary cache size whose *local* hit
rate (fraction of on-chip misses that hit in the L2) matches the stream
buffer hit rate?  It considers associativities one to four and block sizes
of 64 and 128 bytes, i.e. the best configuration at each size.

The L2 consumes the L1's :class:`~repro.caches.cache.MissTrace`: demand
fetches look up (and on miss allocate in) the L2 and count toward the local
hit rate; L1 write-backs update the L2 (write-allocate) but do not count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.caches.cache import Cache, CacheConfig, MissEventKind, MissTrace

__all__ = [
    "SecondaryResult",
    "simulate_secondary",
    "candidate_configs",
    "best_hit_rate_at_size",
    "PAPER_L2_SIZES",
    "PAPER_L2_ASSOCS",
    "PAPER_L2_BLOCKS",
]

# The size ladder of Table 4 (64 KB ... 4 MB).
PAPER_L2_SIZES: Tuple[int, ...] = tuple(64 * 1024 * (1 << i) for i in range(7))
PAPER_L2_ASSOCS: Tuple[int, ...] = (1, 2, 4)
PAPER_L2_BLOCKS: Tuple[int, ...] = (64, 128)


@dataclass(frozen=True)
class SecondaryResult:
    """Outcome of simulating one L2 configuration.

    Attributes:
        config: the simulated configuration.
        demand_accesses: L1 demand misses presented to the L2.
        demand_hits: those that hit in the L2.
        writebacks_received: L1 write-backs absorbed.
        sampled_sets: number of sets actually simulated (< config.n_sets
            when set sampling was used).
    """

    config: CacheConfig
    demand_accesses: int
    demand_hits: int
    writebacks_received: int
    sampled_sets: int

    @property
    def local_hit_rate(self) -> float:
        """Demand hits / demand accesses (0.0 with no demand accesses)."""
        if not self.demand_accesses:
            return 0.0
        return self.demand_hits / self.demand_accesses

    @property
    def sampled_fraction(self) -> float:
        """Fraction of the cache's sets actually simulated."""
        return self.sampled_sets / self.config.n_sets

    def hit_rate_halfwidth(self, z: float = 3.0) -> float:
        """Sampling-induced confidence half-width of the hit rate.

        A binomial normal-approximation band: the sampled sets see an
        unbiased subset of the demand stream, so the estimate's standard
        error is ``sqrt(p * (1-p) / n)`` over the ``n`` demand accesses
        that mapped to sampled sets.  ``z`` widens it to the desired
        confidence (the default 3 sigma is what the analytic screen uses
        to decide when sampling noise could flip a match decision).

        0.0 when every set was simulated — the measurement is exact; 1.0
        when sampling left no demand accesses at all (no information).
        """
        if self.sampled_sets >= self.config.n_sets:
            return 0.0
        if not self.demand_accesses:
            return 1.0
        p = self.local_hit_rate
        return z * math.sqrt(p * (1.0 - p) / self.demand_accesses)


def simulate_secondary(
    miss_trace: MissTrace,
    config: CacheConfig,
    sample_every: int = 1,
) -> SecondaryResult:
    """Simulate an L2 over ``miss_trace``.

    Args:
        miss_trace: the L1's fetch/write-back stream.
        config: L2 geometry/policy.
        sample_every: set-sampling factor — only accesses mapping to sets
            whose index is a multiple of ``sample_every`` are simulated
            (paper's Table 4 cites Kessler/Hill/Wood set sampling).  1
            simulates every set.

    Returns:
        A :class:`SecondaryResult` whose hit rate estimates the full
        cache's local hit rate.
    """
    if sample_every <= 0:
        raise ValueError(f"sample_every must be positive, got {sample_every}")
    cache = Cache(config)
    block_bits = config.block_bits
    set_mask = config.n_sets - 1
    wb_kind = int(MissEventKind.WRITEBACK)
    write_miss_kind = int(MissEventKind.WRITE_MISS)
    demand = 0
    hits = 0
    writebacks = 0
    access_block = cache.access_block
    sampling = sample_every > 1
    for addr, kind in zip(miss_trace.addrs.tolist(), miss_trace.kinds.tolist()):
        block = addr >> block_bits
        if sampling and (block & set_mask) % sample_every:
            continue
        if kind == wb_kind:
            writebacks += 1
            access_block(block, True)
            continue
        demand += 1
        hit, _ = access_block(block, kind == write_miss_kind)
        if hit:
            hits += 1
    n_sets = config.n_sets
    sampled_sets = (n_sets + sample_every - 1) // sample_every if sampling else n_sets
    return SecondaryResult(
        config=config,
        demand_accesses=demand,
        demand_hits=hits,
        writebacks_received=writebacks,
        sampled_sets=sampled_sets,
    )


def candidate_configs(
    size: int,
    assocs: Sequence[int] = PAPER_L2_ASSOCS,
    block_sizes: Sequence[int] = PAPER_L2_BLOCKS,
    policy: str = "lru",
) -> List[CacheConfig]:
    """All L2 configurations the paper considers at one capacity."""
    configs = []
    for assoc in assocs:
        for block_size in block_sizes:
            configs.append(
                CacheConfig(
                    capacity=size,
                    assoc=assoc,
                    block_size=block_size,
                    policy=policy,
                    write_back=True,
                    write_allocate=True,
                )
            )
    return configs


def best_hit_rate_at_size(
    miss_trace: MissTrace,
    size: int,
    assocs: Sequence[int] = PAPER_L2_ASSOCS,
    block_sizes: Sequence[int] = PAPER_L2_BLOCKS,
    sample_every: int = 1,
) -> SecondaryResult:
    """Best local hit rate over the paper's configuration grid at ``size``."""
    best: Optional[SecondaryResult] = None
    for config in candidate_configs(size, assocs=assocs, block_sizes=block_sizes):
        result = simulate_secondary(miss_trace, config, sample_every=sample_every)
        if best is None or result.local_hit_rate > best.local_hit_rate:
            best = result
    assert best is not None  # candidate_configs never returns an empty grid
    return best
