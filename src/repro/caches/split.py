"""The paper's on-chip cache: split 64K I + 64K D, 4-way, random.

``SplitL1`` routes instruction fetches to the I-cache and data accesses to
the D-cache while preserving global order in the produced
:class:`~repro.caches.cache.MissTrace` — order matters because the unified
stream buffers downstream see the interleaved miss stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.caches.cache import Cache, CacheConfig, CacheStats, MissEventKind, MissTrace
from repro.trace.events import AccessKind, Trace

__all__ = ["SplitL1Config", "SplitL1"]


@dataclass(frozen=True)
class SplitL1Config:
    """Configuration of the split primary cache.

    Defaults are the paper's: 64KB 4-way each side, random replacement,
    write-back write-allocate data cache.
    """

    icache: CacheConfig = CacheConfig.paper_l1(seed=1)
    dcache: CacheConfig = CacheConfig.paper_l1(seed=2)

    def __post_init__(self) -> None:
        if self.icache.block_size != self.dcache.block_size:
            raise ValueError(
                "icache and dcache must share a block size, got "
                f"{self.icache.block_size} vs {self.dcache.block_size}"
            )

    @property
    def block_bits(self) -> int:
        return self.dcache.block_bits


class SplitL1:
    """Split primary cache producing a unified, ordered miss stream."""

    def __init__(self, config: Optional[SplitL1Config] = None):
        self.config = config if config is not None else SplitL1Config()
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)

    @property
    def stats(self) -> CacheStats:
        """Combined I+D statistics."""
        return self.icache.stats.merge(self.dcache.stats)

    def simulate(
        self,
        trace: Trace,
        weights: Optional[np.ndarray] = None,
        dirty: Optional[np.ndarray] = None,
    ) -> MissTrace:
        """Run ``trace``, returning the interleaved I+D miss stream.

        When the trace contains no instruction fetches this delegates to
        the D-cache's fast path; otherwise accesses are stepped one by one
        to keep miss ordering exact across the two caches.  ``weights``
        and ``dirty`` come from compression and are only accepted on the
        data-only delegation path.
        """
        ifetch_kind = int(AccessKind.IFETCH)
        if not trace.has_ifetch:
            return self.dcache.simulate(trace, weights=weights, dirty=dirty)

        if dirty is not None:
            raise ValueError(
                "dirty-carrying compressed traces with instruction fetches are "
                "not supported; simulate raw"
            )
        if weights is not None:
            raise ValueError(
                "weighted (compressed) traces with instruction fetches are not "
                "supported; compress I and D separately or simulate raw"
            )

        out_addrs = []
        out_kinds = []
        write_kind = int(AccessKind.WRITE)
        wb_kind = int(MissEventKind.WRITEBACK)
        read_miss_kind = int(MissEventKind.READ_MISS)
        write_miss_kind = int(MissEventKind.WRITE_MISS)
        ifetch_miss_kind = int(MissEventKind.IFETCH_MISS)
        block_bits = self.config.block_bits
        i_access = self.icache.access_block
        d_access = self.dcache.access_block
        for addr, kind in zip(trace.addrs.tolist(), trace.kinds.tolist()):
            block = addr >> block_bits
            if kind == ifetch_kind:
                hit, writeback = i_access(block, False)
                if not hit:
                    out_addrs.append(addr)
                    out_kinds.append(ifetch_miss_kind)
                if writeback is not None:  # pragma: no cover - I-cache never dirties
                    out_addrs.append(writeback << block_bits)
                    out_kinds.append(wb_kind)
                continue
            is_write = kind == write_kind
            hit, writeback = d_access(block, is_write)
            if not hit:
                out_addrs.append(addr)
                out_kinds.append(write_miss_kind if is_write else read_miss_kind)
            if writeback is not None:
                out_addrs.append(writeback << block_bits)
                out_kinds.append(wb_kind)
        return MissTrace(
            np.asarray(out_addrs, dtype=np.int64),
            np.asarray(out_kinds, dtype=np.uint8),
            block_bits,
        )
