"""``repro.service`` — the always-on simulation serving layer.

Turns the sweep substrate (``repro.sim.parallel`` + the persistent
``TraceStore``) into an asyncio JSON-over-HTTP service with request
coalescing, micro-batching, bounded admission with backpressure,
per-request deadlines and a ``/metrics`` registry.  See
``docs/service.md`` for the wire format and deployment knobs, and
``repro serve --help`` for the CLI entry point.
"""

from repro.service.api import (
    MAX_CELLS_PER_REQUEST,
    WIRE_VERSION,
    ValidationError,
)
from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceClient, arequest
from repro.service.coalesce import Coalescer
from repro.service.metrics import MetricsRegistry
from repro.service.queue import (
    AdmissionQueue,
    DeadlineExceeded,
    QueueFullError,
    with_deadline,
)
from repro.service.server import (
    ServiceConfig,
    ServiceServer,
    SimulationService,
    run_server,
)

__all__ = [
    "AdmissionQueue",
    "Coalescer",
    "DeadlineExceeded",
    "MAX_CELLS_PER_REQUEST",
    "MetricsRegistry",
    "MicroBatcher",
    "QueueFullError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "SimulationService",
    "ValidationError",
    "WIRE_VERSION",
    "arequest",
    "run_server",
    "with_deadline",
]
