"""Clients for the simulation service — blocking and asyncio.

Two thin stdlib clients over the v1 wire format:

* :class:`ServiceClient` — blocking ``http.client`` wrapper for
  scripts, benchmarks and the smoke test;
* :func:`arequest` — a coroutine speaking just enough HTTP/1.1 for the
  concurrency tests to open hundreds of simultaneous requests from one
  event loop.

Both return ``(status_code, decoded_body)``; JSON responses decode to
dicts, everything else to text.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Optional, Tuple

import asyncio

__all__ = ["ServiceClient", "arequest"]


def _decode(content_type: str, raw: bytes):
    text = raw.decode("utf-8", errors="replace")
    if "json" in content_type:
        return json.loads(text)
    return text


class ServiceClient:
    """Blocking client for one service instance."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return response.status, _decode(response.getheader("Content-Type", ""), raw)
        finally:
            conn.close()

    # -- the verbs ---------------------------------------------------------

    def run(self, workload: str, **payload) -> Tuple[int, Any]:
        return self.request("POST", "/v1/run", {"workload": workload, **payload})

    def sweep(self, workloads, **payload) -> Tuple[int, Any]:
        return self.request("POST", "/v1/sweep", {"workloads": list(workloads), **payload})

    def exhibit(self, name: str, **payload) -> Tuple[int, Any]:
        return self.request("POST", "/v1/exhibit", {"name": name, **payload})

    def health(self) -> Tuple[int, Any]:
        return self.request("GET", "/healthz")

    def metrics_text(self) -> str:
        status, body = self.request("GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"GET /metrics returned {status}")
        return body

    def metrics(self) -> dict:
        status, body = self.request("GET", "/metrics.json")
        if status != 200:
            raise RuntimeError(f"GET /metrics.json returned {status}")
        return body


async def arequest(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 60.0,
) -> Tuple[int, Any]:
    """One async HTTP request against the service (Connection: close)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        body = b""
        extra = ""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            extra = "Content-Type: application/json\r\n"
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    header_lines = head.decode("latin-1").split("\r\n")
    status = int(header_lines[0].split()[1])
    content_type = ""
    for line in header_lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-type":
            content_type = value.strip()
    return status, _decode(content_type, rest)
