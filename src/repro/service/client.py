"""Clients for the simulation service — blocking and asyncio.

Two thin stdlib clients over the v1 wire format:

* :class:`ServiceClient` — blocking ``http.client`` wrapper for
  scripts, benchmarks, the smoke tests and worker-side blob fetches.
  It **reuses one persistent connection** (the server speaks HTTP/1.1
  keep-alive) and **retries with exponential backoff** on transport
  errors and retriable statuses (429/503), with attempts capped and the
  whole retry loop bounded by an optional deadline so retries can never
  exceed a caller's request budget.
* :func:`arequest` — a coroutine speaking just enough HTTP/1.1 for the
  concurrency tests to open hundreds of simultaneous requests from one
  event loop (one connection per request, ``Connection: close``).

Both return ``(status_code, decoded_body)``; JSON responses decode to
dicts, ``application/octet-stream`` to bytes, everything else to text.

Retry safety: every POST this service accepts is idempotent by
construction — cells are pure content-addressed computations, and
registration is a set-insert — so replaying a request whose response
was lost can only repeat work the store/coalescer absorbs, never
corrupt state.  Non-retriable client errors (4xx other than 429) are
returned immediately.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Optional, Tuple

import asyncio

__all__ = ["ServiceClient", "RequestFailed", "arequest"]


#: Transport-level failures worth a retry: the request may never have
#: reached the server, or the reused connection went stale between
#: requests (server restart, idle timeout).
_TRANSPORT_ERRORS = (
    ConnectionError,
    http.client.NotConnected,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
    http.client.ImproperConnectionState,
    socket.timeout,
    TimeoutError,
    OSError,
)

#: HTTP statuses that invite a retry (overload / not-ready, not a bug).
_RETRIABLE_STATUSES = (429, 503)


class RequestFailed(RuntimeError):
    """Every attempt failed (attempts capped or deadline exhausted)."""

    def __init__(self, method: str, path: str, attempts: int, cause: str):
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"{method} {path} failed after {attempts} attempt(s): {cause}"
        )


def _decode(content_type: str, raw: bytes):
    if "octet-stream" in content_type:
        return raw
    text = raw.decode("utf-8", errors="replace")
    if "json" in content_type:
        return json.loads(text)
    return text


class ServiceClient:
    """Blocking client for one service instance.

    Args:
        host/port: the service address.
        timeout: per-attempt socket timeout (seconds).
        retries: extra attempts after the first (``0`` disables retry).
        backoff_s: initial sleep before the first retry; doubles per
            attempt, capped at ``backoff_cap_s``.

    Not thread safe — one client per thread (each holds one persistent
    connection).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- connection management ---------------------------------------------

    def _connection(self, attempt_timeout: float) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=attempt_timeout
            )
        elif self._conn.sock is not None:
            self._conn.sock.settimeout(attempt_timeout)
        else:
            self._conn.timeout = attempt_timeout
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def close(self) -> None:
        """Close the persistent connection (the client stays usable)."""
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request loop --------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        deadline_s: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> Tuple[int, Any]:
        """One logical request, transparently retried.

        Args:
            deadline_s: total budget (seconds) across *all* attempts,
                including backoff sleeps; attempts stop — and per-attempt
                socket timeouts shrink — so the budget is never exceeded.
            retries: override the client-level retry cap for this call.

        Returns:
            ``(status, decoded_body)`` of the first conclusive response.

        Raises:
            RequestFailed: when every allowed attempt failed on
                transport or came back retriable and the caps ran out.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        max_attempts = 1 + (self.retries if retries is None else retries)
        deadline = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        backoff = self.backoff_s
        last_cause = "no attempts made"
        attempt = 0
        while attempt < max_attempts:
            attempt += 1
            attempt_timeout = self.timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                attempt_timeout = min(attempt_timeout, remaining)
            try:
                conn = self._connection(attempt_timeout)
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                if response.will_close:
                    self._drop_connection()
                status = response.status
                decoded = _decode(response.getheader("Content-Type", "") or "", raw)
                if status in _RETRIABLE_STATUSES and attempt < max_attempts:
                    last_cause = f"retriable status {status}"
                else:
                    return status, decoded
            except _TRANSPORT_ERRORS as exc:
                self._drop_connection()
                last_cause = f"{type(exc).__name__}: {exc}"
                if attempt >= max_attempts:
                    break
            # Back off before the next attempt, never past the deadline.
            sleep = min(backoff, self.backoff_cap_s)
            if deadline is not None:
                sleep = min(sleep, max(0.0, deadline - time.monotonic()))
                if time.monotonic() + sleep >= deadline:
                    time.sleep(max(0.0, sleep))
                    break
            time.sleep(sleep)
            backoff *= 2
        raise RequestFailed(method, path, attempt, last_cause)

    # -- the verbs ---------------------------------------------------------

    def run(self, workload: str, **payload) -> Tuple[int, Any]:
        return self.request("POST", "/v1/run", {"workload": workload, **payload})

    def sweep(self, workloads, **payload) -> Tuple[int, Any]:
        return self.request("POST", "/v1/sweep", {"workloads": list(workloads), **payload})

    def exhibit(self, name: str, **payload) -> Tuple[int, Any]:
        return self.request("POST", "/v1/exhibit", {"name": name, **payload})

    def chunk(self, cells, **payload) -> Tuple[int, Any]:
        return self.request("POST", "/v1/chunk", {"cells": list(cells), **payload})

    def register(self, url: str) -> Tuple[int, Any]:
        return self.request("POST", "/v1/fleet/register", {"url": url})

    def fleet_status(self) -> Tuple[int, Any]:
        return self.request("GET", "/v1/fleet/status")

    def blob(self, kind: str, digest: str, **kwargs) -> Tuple[int, Any]:
        """Fetch one store entry's raw bytes (``404`` when absent)."""
        return self.request("GET", f"/v1/blob/{kind}/{digest}", **kwargs)

    def health(self) -> Tuple[int, Any]:
        return self.request("GET", "/healthz")

    def debug(self) -> dict:
        """Fetch the live introspection snapshot (``GET /v1/debug``)."""
        status, body = self.request("GET", "/v1/debug")
        if status != 200:
            raise RuntimeError(f"GET /v1/debug returned {status}")
        return body

    def metrics_text(self) -> str:
        status, body = self.request("GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"GET /metrics returned {status}")
        return body

    def metrics(self) -> dict:
        status, body = self.request("GET", "/metrics.json")
        if status != 200:
            raise RuntimeError(f"GET /metrics.json returned {status}")
        return body


async def arequest(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 60.0,
) -> Tuple[int, Any]:
    """One async HTTP request against the service (Connection: close)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        body = b""
        extra = ""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            extra = "Content-Type: application/json\r\n"
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if not raw:
        raise ConnectionError("connection closed before any response")
    head, _, rest = raw.partition(b"\r\n\r\n")
    header_lines = head.decode("latin-1").split("\r\n")
    status_parts = header_lines[0].split()
    if len(status_parts) < 2:
        raise ValueError(f"malformed status line {header_lines[0]!r}")
    status = int(status_parts[1])
    content_type = ""
    for line in header_lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-type":
            content_type = value.strip()
    return status, _decode(content_type, rest)
