"""Bounded admission with backpressure, deadlines and cancellation.

A serving layer that accepts every request melts the moment offered load
exceeds capacity; the standard answer (and ours) is to bound the number
of requests admitted past the front door and *reject* the excess
immediately with a retriable 429 rather than queueing it into timeout
oblivion.  Two pieces:

* :class:`AdmissionQueue` — a counting gate.  ``slot()`` admits or
  raises :class:`QueueFullError` synchronously (no await: rejection
  under overload must be cheap), and releases on exit even when the
  request is cancelled mid-flight.
* :func:`with_deadline` — per-request deadline enforcement.  On expiry
  the *waiter* is cancelled and :class:`DeadlineExceeded` raised; shared
  work the waiter was coalesced onto keeps running for the other
  waiters (see ``repro.service.coalesce`` — waiters shield the shared
  future).
"""

from __future__ import annotations

import time
from contextlib import asynccontextmanager
from typing import Awaitable, Callable, Optional, TypeVar

import asyncio

__all__ = [
    "QueueFullError",
    "DeadlineExceeded",
    "AdmissionQueue",
    "with_deadline",
]

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """Admission queue at capacity — reject with 429, client may retry."""

    def __init__(self, depth: int, limit: int):
        self.depth = depth
        self.limit = limit
        super().__init__(f"admission queue full ({depth}/{limit} slots in use)")


class DeadlineExceeded(asyncio.TimeoutError):
    """The request's deadline expired before its result was ready."""

    def __init__(self, timeout_s: float):
        self.timeout_s = timeout_s
        super().__init__(f"deadline of {timeout_s:g}s exceeded")


class AdmissionQueue:
    """Counting admission gate with an optional depth observer.

    Single-event-loop discipline: ``acquire``/``release`` only run on
    the loop thread, so a plain counter is race-free without locking.

    Args:
        limit: maximum concurrently admitted requests.
        on_depth: called with the new depth after every change (the
            service wires the queue-depth gauge here).
        on_wait: called with the seconds a request spent waiting for
            admission inside :meth:`slot` (the service wires the
            admission-wait histogram here).  Admission is currently
            synchronous — reject, never queue — so the observed wait is
            ~0; the hook keeps the percentile honest if admission ever
            learns to wait.
    """

    def __init__(
        self,
        limit: int,
        on_depth: Optional[Callable[[int], None]] = None,
        on_wait: Optional[Callable[[float], None]] = None,
    ):
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = limit
        self._depth = 0
        self._on_depth = on_depth
        self._on_wait = on_wait

    @property
    def depth(self) -> int:
        return self._depth

    def acquire(self) -> None:
        """Take a slot or raise :class:`QueueFullError` immediately."""
        if self._depth >= self.limit:
            raise QueueFullError(self._depth, self.limit)
        self._depth += 1
        if self._on_depth is not None:
            self._on_depth(self._depth)

    def release(self) -> None:
        assert self._depth > 0, "release without acquire"
        self._depth -= 1
        if self._on_depth is not None:
            self._on_depth(self._depth)

    @asynccontextmanager
    async def slot(self):
        """``async with queue.slot():`` — admission for one request."""
        if self._on_wait is not None:
            started = time.perf_counter()
            self.acquire()
            self._on_wait(time.perf_counter() - started)
        else:
            self.acquire()
        try:
            yield self
        finally:
            self.release()


async def with_deadline(awaitable: Awaitable[T], timeout_s: Optional[float]) -> T:
    """Await ``awaitable``, bounding the wait to ``timeout_s`` seconds.

    ``None`` means no deadline.  Expiry cancels the awaitable (coalesced
    waiters pass a shielded future, so shared work survives) and raises
    :class:`DeadlineExceeded`.
    """
    if timeout_s is None:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, timeout_s)
    except asyncio.TimeoutError:
        raise DeadlineExceeded(timeout_s) from None
