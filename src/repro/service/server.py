"""The asyncio simulation service: orchestrator + HTTP frontend.

Request path (the shape every later scaling PR plugs into)::

    HTTP POST ──► validate (api) ──► admission queue (backpressure)
        ──► per-cell: result LRU ──► warm-store fast path
            ──► coalescer (join in-flight digest)
                ──► micro-batcher ──► run_grid on the shared pool
        ──► encode + metrics

* The **admission queue** bounds concurrently admitted requests; beyond
  ``max_queue`` the service answers 429 immediately (retriable).
* The **result LRU** and the **warm-store fast path** serve repeats
  without touching the pool: once any request has materialised a cell,
  its digest is either in memory or a single JSON read away.
* The **coalescer** keys in-flight work by the trace store's
  ``result_digest``, so N concurrent identical cells run once and the
  result fans out to every waiter.
* The **micro-batcher** merges cells from concurrent requests into
  single :func:`~repro.sim.parallel.run_grid` calls against one
  long-lived worker pool (:func:`~repro.sim.parallel.make_pool`),
  amortising pool IPC across requests.
* **Metrics** for all of the above are exposed at ``GET /metrics``
  (Prometheus text) and ``GET /metrics.json``.

The HTTP layer is deliberately minimal stdlib asyncio — one request per
connection, ``Connection: close`` — because the interesting machinery
is behind it, not in it.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple, Union

import asyncio

from repro.caches.cache import CacheConfig
from repro.reporting.experiments import EXHIBITS, SWEEP_EXHIBITS
from repro.service import api
from repro.obs.metrics import (
    MetricsRegistry,
    engine_registry,
    merge_snapshots,
    render_snapshot_text,
    strip_samples,
)
from repro.service.batcher import MicroBatcher
from repro.service.coalesce import Coalescer
from repro.service.queue import (
    AdmissionQueue,
    DeadlineExceeded,
    QueueFullError,
    with_deadline,
)
from repro.sim.parallel import SweepTask, TaskError, make_pool, run_grid
from repro.sim.results import L1Summary, RunResult
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore, result_digest, trace_digest

__all__ = ["ServiceConfig", "SimulationService", "ServiceServer", "run_server"]

#: Maximum accepted request body (bytes) — sweeps are tiny; anything
#: bigger is a client bug or abuse.
MAX_BODY_BYTES = 2 << 20

#: Maximum accepted header block (bytes).
MAX_HEADER_BYTES = 64 << 10


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs of one service instance.

    Attributes:
        jobs: worker processes in the shared pool (1 = in-process serial
            execution on a thread; still batched and coalesced).
        store_root: persistent :class:`TraceStore` directory; None runs
            storeless (no cross-restart warmth, fast path disabled).
        max_queue: admitted-request bound; beyond it requests get 429.
        max_batch: micro-batcher flush threshold (cells).
        batch_window_s: micro-batcher linger before flushing a partial
            batch.
        default_timeout_s: deadline applied when a request names none.
        max_timeout_s: hard ceiling a request's own ``timeout_s`` is
            clamped to.
        result_cache_entries: in-memory LRU of materialised cells.
        keep_pcs: propagate PCs into miss traces (PC-indexed baselines).
        l1_config: primary cache geometry (None = the paper L1).
    """

    jobs: int = 1
    store_root: Optional[str] = None
    max_queue: int = 64
    max_batch: int = 64
    batch_window_s: float = 0.002
    default_timeout_s: float = 300.0
    max_timeout_s: float = 3600.0
    result_cache_entries: int = 1024
    keep_pcs: bool = False
    l1_config: Optional[CacheConfig] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {self.max_queue}")
        if self.default_timeout_s <= 0 or self.max_timeout_s <= 0:
            raise ValueError("timeouts must be positive")


class _LRU:
    """Tiny insertion-ordered LRU map (single event loop, no locking)."""

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self._entries: Dict[str, object] = {}

    def get(self, key: str):
        value = self._entries.get(key)
        if value is not None:
            # Re-insert to refresh recency (dicts preserve order).
            del self._entries[key]
            self._entries[key] = value
        return value

    def put(self, key: str, value) -> None:
        if self.max_entries <= 0:
            return
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            del self._entries[next(iter(self._entries))]

    def __len__(self) -> int:
        return len(self._entries)


class SimulationService:
    """The orchestrator: queue → coalesce → batch → pool → encode."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._c_requests = m.counter("requests_total", "requests accepted for processing")
        self._c_rejected = m.counter("requests_rejected_total", "429 backpressure rejections")
        self._c_timeouts = m.counter("requests_timeout_total", "requests past their deadline")
        self._c_failures = m.counter("requests_failed_total", "requests failed internally")
        self._c_cells_requested = m.counter("cells_requested_total", "grid cells asked for")
        self._c_cells_executed = m.counter(
            "cells_executed_total", "grid cells actually dispatched to run_grid"
        )
        self._c_cell_errors = m.counter("cell_errors_total", "cells that came back as TaskError")
        self._c_batches = m.counter("batches_total", "run_grid batches flushed")
        self._c_coalesce = m.counter("coalesce_hits_total", "cells joined to in-flight work")
        self._c_result_cache = m.counter("result_cache_hits_total", "cells served from the LRU")
        self._c_store_fast = m.counter(
            "store_fastpath_hits_total", "cells served from the warm store without the pool"
        )
        self._g_queue_depth = m.gauge("queue_depth", "admitted requests in flight")
        self._h_latency = m.histogram("request_latency_ms", "request wall time, ms")
        self._h_batch = m.histogram("batch_cells", "cells per flushed batch")
        # Store/runner hook events surface as counters named after them.
        self._hook_counters = {
            event: m.counter(f"store_{event}_total", f"TraceStore {event} events")
            for event in (
                "trace_hit", "trace_miss", "trace_saved",
                "result_hit", "result_miss", "result_saved",
            )
        }
        self._hook_counters.update({
            event: m.counter(f"runner_{event}_total", f"MissTraceCache {event} events")
            for event in ("trace_mem_hit", "trace_store_hit", "trace_computed")
        })

        self.l1_config = config.l1_config or CacheConfig.paper_l1()
        self.store: Optional[TraceStore] = None
        if config.store_root is not None:
            self.store = TraceStore(config.store_root, hooks=self._on_cache_event)
        self._cache = MissTraceCache(
            self.l1_config,
            keep_pcs=config.keep_pcs,
            store=self.store,
            hooks=self._on_cache_event,
        )
        self.queue = AdmissionQueue(config.max_queue, on_depth=self._g_queue_depth.set)
        self.coalescer = Coalescer()
        self._results = _LRU(config.result_cache_entries)
        self._summaries = _LRU(4096)  # trace digest -> L1Summary
        self._pool = None
        self._batcher = MicroBatcher(
            self._run_batch,
            max_batch=config.max_batch,
            window_s=config.batch_window_s,
            on_flush=self._on_flush,
        )
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        if self.config.jobs > 1:
            self._pool = make_pool(
                self.config.jobs,
                l1_config=self.l1_config,
                keep_pcs=self.config.keep_pcs,
                store=self.store,
            )
        await self._batcher.start()
        self._started = True

    async def close(self) -> None:
        if not self._started:
            return
        await self._batcher.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._started = False

    # -- hooks -------------------------------------------------------------

    def _on_cache_event(self, event: str) -> None:
        counter = self._hook_counters.get(event)
        if counter is not None:
            counter.inc()

    def _on_flush(self, size: int) -> None:
        self._c_batches.inc()
        self._h_batch.observe(size)

    # -- execution ---------------------------------------------------------

    async def _run_batch(
        self, tasks: List[SweepTask]
    ) -> Sequence[Union[RunResult, TaskError]]:
        """Execute one flushed batch (called by the micro-batcher)."""
        self._c_cells_executed.inc(len(tasks))
        if self._pool is not None:
            fn = partial(
                run_grid,
                tasks,
                jobs=self.config.jobs,
                executor=self._pool,
                store=self.store,
                l1_config=self.l1_config,
                keep_pcs=self.config.keep_pcs,
            )
        else:
            # Serial mode: the single-flight batcher serialises access to
            # the shared in-process cache, so no pool and no pickling.
            fn = partial(run_grid, tasks, jobs=1, cache=self._cache)
        return await asyncio.to_thread(fn)

    def _digests(self, cell: api.CellSpec) -> Tuple[str, str]:
        tkey = trace_digest(
            cell.workload, cell.scale, cell.seed, self.l1_config, self.config.keep_pcs
        )
        return tkey, result_digest(tkey, cell.config)

    async def _compute_cell(
        self, cell: api.CellSpec, tkey: str, digest: str
    ) -> Union[RunResult, TaskError]:
        """Materialise one cell: warm store, else batch to the pool."""
        if self.store is not None:
            summary = self._summaries.get(tkey)
            if summary is not None:
                stats = await asyncio.to_thread(self.store.load_result, digest)
                if stats is not None:
                    self._c_store_fast.inc()
                    result = RunResult(
                        workload=cell.workload,
                        scale=cell.scale,
                        seed=cell.seed,
                        l1=summary,
                        streams=stats,
                        source="store",
                    )
                    self._results.put(digest, result)
                    return result
        result = await self._batcher.submit(cell.task())
        if isinstance(result, RunResult):
            self._summaries.put(tkey, result.l1)
            self._results.put(digest, result)
        return result

    async def _one_cell(
        self, cell: api.CellSpec
    ) -> Tuple[api.CellSpec, Union[RunResult, TaskError]]:
        tkey, digest = self._digests(cell)
        cached = self._results.get(digest)
        if cached is not None:
            self._c_result_cache.inc()
            return cell, cached
        future, coalesced = self.coalescer.admit(
            digest,
            lambda: asyncio.ensure_future(self._compute_cell(cell, tkey, digest)),
        )
        if coalesced:
            self._c_coalesce.inc()
        # Shield: this waiter's deadline/cancellation must not kill the
        # shared computation other waiters are attached to.
        result = await asyncio.shield(future)
        return cell, result

    # -- request handlers --------------------------------------------------

    def _clamp_timeout(self, requested: Optional[float]) -> float:
        timeout = requested if requested is not None else self.config.default_timeout_s
        return min(timeout, self.config.max_timeout_s)

    async def handle_cells(self, request: api.CellsRequest) -> dict:
        """Serve a validated run/sweep request; returns the response body."""
        self._c_requests.inc()
        self._c_cells_requested.inc(len(request.cells))
        timeout = self._clamp_timeout(request.timeout_s)
        started = time.perf_counter()
        try:
            async with self.queue.slot():
                pairs = await with_deadline(
                    asyncio.gather(*(self._one_cell(cell) for cell in request.cells)),
                    timeout,
                )
        except QueueFullError:
            self._c_rejected.inc()
            raise
        except DeadlineExceeded:
            self._c_timeouts.inc()
            raise
        finally:
            self._h_latency.observe(1000 * (time.perf_counter() - started))
        results = [
            api.encode_cell_result(cell, result)
            for cell, result in pairs
            if isinstance(result, RunResult)
        ]
        errors = [
            api.encode_task_error(result)
            for _, result in pairs
            if isinstance(result, TaskError)
        ]
        if errors:
            self._c_cell_errors.inc(len(errors))
        return api.ok_envelope(
            request.kind,
            results=results,
            errors=errors,
            meta={
                "cells": len(request.cells),
                "failed": len(errors),
                "elapsed_ms": round(1000 * (time.perf_counter() - started), 3),
            },
        )

    async def handle_exhibit(self, request: api.ExhibitRequest) -> dict:
        """Serve a validated exhibit request; returns the response body."""
        self._c_requests.inc()
        timeout = self._clamp_timeout(request.timeout_s)
        started = time.perf_counter()
        try:
            async with self.queue.slot():
                rendered = await with_deadline(
                    asyncio.to_thread(self._run_exhibit, request), timeout
                )
        except QueueFullError:
            self._c_rejected.inc()
            raise
        except DeadlineExceeded:
            self._c_timeouts.inc()
            raise
        finally:
            self._h_latency.observe(1000 * (time.perf_counter() - started))
        return api.ok_envelope(
            "exhibit",
            name=request.name,
            rendered=rendered,
            meta={"elapsed_ms": round(1000 * (time.perf_counter() - started), 3)},
        )

    def _run_exhibit(self, request: api.ExhibitRequest) -> str:
        """Run one exhibit driver+renderer (in a worker thread).

        Each request gets its own :class:`MissTraceCache` over the shared
        store — drivers mutate their cache, and requests may overlap.
        """
        driver, renderer = EXHIBITS[request.name]
        cache = MissTraceCache(
            self.l1_config, keep_pcs=self.config.keep_pcs, store=self.store
        )
        kwargs: dict = {"cache": cache}
        if request.name in SWEEP_EXHIBITS:
            kwargs.update(jobs=self.config.jobs, store=self.store)
        if request.benchmarks:
            if request.name == "table4":
                from repro.workloads import TABLE4_SCALES

                scales = {
                    k: v for k, v in TABLE4_SCALES.items() if k in request.benchmarks
                }
                data = driver(scales=scales, **kwargs)
            else:
                data = driver(names=list(request.benchmarks), **kwargs)
        else:
            data = driver(**kwargs)
        return renderer(data)

    def health(self) -> dict:
        return {
            "ok": True,
            "v": api.WIRE_VERSION,
            "queue_depth": self.queue.depth,
            "inflight_cells": len(self.coalescer),
            "store": str(self.store.root) if self.store is not None else None,
            "jobs": self.config.jobs,
        }


# -- HTTP frontend ----------------------------------------------------------


class _HttpError(Exception):
    def __init__(self, status: int, code: str, message: str, **extra):
        self.status = status
        self.body = api.error_envelope(code, message, **extra)
        super().__init__(message)


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class ServiceServer:
    """Binds a :class:`SimulationService` to a TCP port."""

    def __init__(self, service: SimulationService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Start the service and listener; returns the bound address."""
        await self.service.start()
        self._server = await asyncio.start_server(self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    # -- connection handling ----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._respond_json(writer, exc.status, exc.body)
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away mid-request
            await self._dispatch(writer, method, path, body)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            header_block = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers_too_large", "header block too large")
        if len(header_block) > MAX_HEADER_BYTES:
            raise _HttpError(413, "headers_too_large", "header block too large")
        head, *header_lines = header_block.decode("latin-1").split("\r\n")
        parts = head.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "bad_request_line", f"malformed request line {head!r}")
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            length = int(length)
        except ValueError:
            raise _HttpError(400, "bad_content_length", f"bad Content-Length {length!r}")
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, "body_too_large", f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    def _merged_snapshot(self) -> dict:
        """Service instruments plus the process-global engine registry.

        The engine registry (``repro.obs``) collects what the simulation
        layers record — store IO, cell outcomes, L1 sim time — in this
        process *and*, merged back by ``run_grid``, in the pool workers.
        All its names carry an ``engine_`` prefix, so the union with the
        service's ``service_``/cache instruments is collision-free.
        """
        return merge_snapshots(
            self.service.metrics.snapshot(include_samples=True),
            engine_registry().snapshot(include_samples=True),
        )

    def _merged_metrics_text(self) -> str:
        return render_snapshot_text(self._merged_snapshot())

    def _merged_metrics_json(self) -> dict:
        return strip_samples(self._merged_snapshot())

    async def _dispatch(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        path = path.split("?", 1)[0]
        try:
            if method == "GET":
                if path in ("/healthz", "/health"):
                    await self._respond_json(writer, 200, self.service.health())
                elif path == "/metrics":
                    await self._respond_text(writer, 200, self._merged_metrics_text())
                elif path == "/metrics.json":
                    await self._respond_json(writer, 200, self._merged_metrics_json())
                else:
                    raise _HttpError(404, "not_found", f"no such path {path!r}")
                return
            if method != "POST":
                raise _HttpError(405, "method_not_allowed", f"{method} not supported")
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, "bad_json", f"request body is not JSON: {exc}")
            if path == "/v1/run":
                request = api.parse_run_request(payload)
                response = await self.service.handle_cells(request)
            elif path == "/v1/sweep":
                request = api.parse_sweep_request(payload)
                response = await self.service.handle_cells(request)
            elif path == "/v1/exhibit":
                request = api.parse_exhibit_request(payload)
                response = await self.service.handle_exhibit(request)
            else:
                raise _HttpError(404, "not_found", f"no such path {path!r}")
            await self._respond_json(writer, 200, response)
        except _HttpError as exc:
            await self._respond_json(writer, exc.status, exc.body)
        except api.ValidationError as exc:
            await self._respond_json(
                writer, 400, api.error_envelope("bad_request", str(exc))
            )
        except QueueFullError as exc:
            await self._respond_json(
                writer,
                429,
                api.error_envelope(
                    "over_capacity", str(exc), retry_after_s=1.0
                ),
                extra_headers={"Retry-After": "1"},
            )
        except DeadlineExceeded as exc:
            await self._respond_json(
                writer, 504, api.error_envelope("deadline_exceeded", str(exc))
            )
        except Exception as exc:  # the server must answer, not die
            self.service._c_failures.inc()
            await self._respond_json(
                writer,
                500,
                api.error_envelope(
                    "internal", f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                ),
            )

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + payload)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client gone; nothing to deliver the response to

    @classmethod
    async def _respond_json(
        cls,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        await cls._respond(
            writer, status, payload, "application/json", extra_headers
        )

    @classmethod
    async def _respond_text(
        cls, writer: asyncio.StreamWriter, status: int, body: str
    ) -> None:
        await cls._respond(
            writer, status, body.encode("utf-8"), "text/plain; version=0.0.4"
        )


async def run_server(
    config: ServiceConfig, host: str = "127.0.0.1", port: int = 8077
) -> None:
    """Start a server and serve until cancelled (the CLI entry point).

    Prints a ``listening on host:port`` line once bound — the smoke test
    and scripts parse it, so keep the format stable.
    """
    server = ServiceServer(SimulationService(config), host=host, port=port)
    bound_host, bound_port = await server.start()
    print(f"repro-service listening on {bound_host}:{bound_port}", flush=True)
    try:
        await asyncio.Event().wait()  # serve until cancelled
    finally:
        await server.close()
