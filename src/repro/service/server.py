"""The asyncio simulation service: orchestrator + HTTP frontend.

Request path (the shape every later scaling PR plugs into)::

    HTTP POST ──► validate (api) ──► admission queue (backpressure)
        ──► per-cell: result LRU ──► warm-store fast path
            ──► coalescer (join in-flight digest)
                ──► micro-batcher ──► run_grid on the shared pool
        ──► encode + metrics

* The **admission queue** bounds concurrently admitted requests; beyond
  ``max_queue`` the service answers 429 immediately (retriable).
* The **result LRU** and the **warm-store fast path** serve repeats
  without touching the pool: once any request has materialised a cell,
  its digest is either in memory or a single JSON read away.
* The **coalescer** keys in-flight work by the trace store's
  ``result_digest``, so N concurrent identical cells run once and the
  result fans out to every waiter.
* The **micro-batcher** merges cells from concurrent requests into
  single :func:`~repro.sim.parallel.run_grid` calls against one
  long-lived worker pool (:func:`~repro.sim.parallel.make_pool`),
  amortising pool IPC across requests.
* **Metrics** for all of the above are exposed at ``GET /metrics``
  (Prometheus text) and ``GET /metrics.json``.

Behind the micro-batcher sits the optional **fleet tier**
(:mod:`repro.fleet`): when workers are registered, flushed batches are
sharded across them by trace digest instead of running on the local
pool; with zero workers the single-host pool path is the fallback and
results are bit-identical either way.  The same server binary is the
worker: ``repro serve --worker`` exposes ``POST /v1/chunk`` (execute a
shard, ship drained telemetry back) and every server exposes
``GET /v1/blob/...`` (raw content-addressed store bytes) so workers can
replicate traces they miss.

The HTTP layer is deliberately minimal stdlib asyncio — HTTP/1.1 with
keep-alive, one request at a time per connection — because the
interesting machinery is behind it, not in it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import traceback
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple, Union

import asyncio

from repro.caches.cache import CacheConfig
from repro.reporting.experiments import EXHIBITS, SWEEP_EXHIBITS
from repro.service import api
from repro.obs.context import bind_trace, current_trace_id, new_trace_id, trace_scope
from repro.obs.log import get_logger, log_ring
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    engine_registry,
    merge_snapshots,
    render_snapshot_text,
    strip_samples,
)
from repro.obs.spans import chrome_trace, get_tracer
from repro.service.batcher import MicroBatcher
from repro.service.coalesce import Coalescer
from repro.service.queue import (
    AdmissionQueue,
    DeadlineExceeded,
    QueueFullError,
    with_deadline,
)
from repro.sim.parallel import SweepTask, TaskError, make_pool, run_grid
from repro.sim.results import L1Summary, RunResult
from repro.sim.runner import MissTraceCache
from repro.trace.store import TraceStore, result_digest, trace_digest

__all__ = ["ServiceConfig", "SimulationService", "ServiceServer", "run_server"]

#: Maximum accepted request body (bytes) — sweeps are tiny; anything
#: bigger is a client bug or abuse.
MAX_BODY_BYTES = 2 << 20

#: Maximum accepted header block (bytes).
MAX_HEADER_BYTES = 64 << 10


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs of one service instance.

    Attributes:
        jobs: worker processes in the shared pool (1 = in-process serial
            execution on a thread; still batched and coalesced).
        store_root: persistent :class:`TraceStore` directory; None runs
            storeless (no cross-restart warmth, fast path disabled).
        max_queue: admitted-request bound; beyond it requests get 429.
        max_batch: micro-batcher flush threshold (cells).
        batch_window_s: micro-batcher linger before flushing a partial
            batch.
        default_timeout_s: deadline applied when a request names none.
        max_timeout_s: hard ceiling a request's own ``timeout_s`` is
            clamped to.
        result_cache_entries: in-memory LRU of materialised cells.
        keep_pcs: propagate PCs into miss traces (PC-indexed baselines).
        l1_config: primary cache geometry (None = the paper L1).
        worker: run as a fleet worker (reported by ``/healthz``; workers
            execute chunks and never dispatch to other workers).
        workers: worker base URLs known at startup; more may join via
            ``POST /v1/fleet/register``.
        register_url: frontend base URL to self-register with on start
            (the worker side of ``--register``).
        advertise_url: base URL this server registers itself as (when it
            differs from the bound address, e.g. behind NAT).
        fetch_policy: chunk fetch policy the frontend dispatches with
            (see :class:`repro.service.api.ChunkRequest`).
        fleet_max_inflight: chunk requests in flight per worker.
        fleet_chunk_timeout_s: per-attempt deadline of one chunk.
        fleet_max_attempts: attempts per worker before failing over.
        fleet_heartbeat_s: worker liveness poll period (0 disables).
    """

    jobs: int = 1
    store_root: Optional[str] = None
    max_queue: int = 64
    max_batch: int = 64
    batch_window_s: float = 0.002
    default_timeout_s: float = 300.0
    max_timeout_s: float = 3600.0
    result_cache_entries: int = 1024
    keep_pcs: bool = False
    l1_config: Optional[CacheConfig] = None
    worker: bool = False
    workers: Tuple[str, ...] = ()
    register_url: Optional[str] = None
    advertise_url: Optional[str] = None
    fetch_policy: str = "fallback"
    fleet_max_inflight: int = 4
    fleet_chunk_timeout_s: float = 120.0
    fleet_max_attempts: int = 3
    fleet_heartbeat_s: float = 2.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {self.max_queue}")
        if self.default_timeout_s <= 0 or self.max_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.fetch_policy not in api.FETCH_POLICIES:
            raise ValueError(
                f"fetch_policy must be one of {api.FETCH_POLICIES}, "
                f"got {self.fetch_policy!r}"
            )
        if self.worker and self.workers:
            raise ValueError("a worker cannot itself dispatch to workers")


class _LRU:
    """Tiny insertion-ordered LRU map (single event loop, no locking)."""

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self._entries: Dict[str, object] = {}

    def get(self, key: str):
        value = self._entries.get(key)
        if value is not None:
            # Re-insert to refresh recency (dicts preserve order).
            del self._entries[key]
            self._entries[key] = value
        return value

    def put(self, key: str, value) -> None:
        if self.max_entries <= 0:
            return
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            del self._entries[next(iter(self._entries))]

    def __len__(self) -> int:
        return len(self._entries)


class SimulationService:
    """The orchestrator: queue → coalesce → batch → pool → encode."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._c_requests = m.counter("requests_total", "requests accepted for processing")
        self._c_rejected = m.counter("requests_rejected_total", "429 backpressure rejections")
        self._c_timeouts = m.counter("requests_timeout_total", "requests past their deadline")
        self._c_failures = m.counter("requests_failed_total", "requests failed internally")
        self._c_cells_requested = m.counter("cells_requested_total", "grid cells asked for")
        self._c_cells_executed = m.counter(
            "cells_executed_total", "grid cells actually dispatched to run_grid"
        )
        self._c_cell_errors = m.counter("cell_errors_total", "cells that came back as TaskError")
        self._c_batches = m.counter("batches_total", "run_grid batches flushed")
        self._c_coalesce = m.counter("coalesce_hits_total", "cells joined to in-flight work")
        self._c_result_cache = m.counter("result_cache_hits_total", "cells served from the LRU")
        self._c_store_fast = m.counter(
            "store_fastpath_hits_total", "cells served from the warm store without the pool"
        )
        self._g_queue_depth = m.gauge("queue_depth", "admitted requests in flight")
        self._h_latency = m.histogram("request_latency_ms", "request wall time, ms")
        self._h_batch = m.histogram("batch_cells", "cells per flushed batch")
        self._h_queue_wait = m.histogram(
            "queue_wait_ms", "cell wait from batcher submit to flush, ms"
        )
        self._h_admission_wait = m.histogram(
            "admission_wait_ms", "request wait for an admission slot, ms"
        )
        self._h_endpoints: Dict[str, Histogram] = {}
        # Store/runner hook events surface as counters named after them.
        self._hook_counters = {
            event: m.counter(f"store_{event}_total", f"TraceStore {event} events")
            for event in (
                "trace_hit", "trace_miss", "trace_saved",
                "result_hit", "result_miss", "result_saved",
            )
        }
        self._hook_counters.update({
            event: m.counter(f"runner_{event}_total", f"MissTraceCache {event} events")
            for event in ("trace_mem_hit", "trace_store_hit", "trace_computed")
        })
        self._c_chunks = m.counter("chunk_requests_total", "fleet chunks accepted")
        self._c_chunk_cells = m.counter("chunk_cells_total", "cells arrived in chunks")
        self._c_chunk_unavailable = m.counter(
            "chunk_cells_unavailable_total",
            "require-policy cells failed for want of a trace blob",
        )

        self.l1_config = config.l1_config or CacheConfig.paper_l1()
        self.store: Optional[TraceStore] = None
        if config.store_root is not None:
            self.store = TraceStore(config.store_root, hooks=self._on_cache_event)
        self._cache = MissTraceCache(
            self.l1_config,
            keep_pcs=config.keep_pcs,
            store=self.store,
            hooks=self._on_cache_event,
        )
        self.queue = AdmissionQueue(
            config.max_queue,
            on_depth=self._g_queue_depth.set,
            on_wait=lambda s: self._h_admission_wait.observe(1000 * s),
        )
        self.coalescer = Coalescer()
        self._results = _LRU(config.result_cache_entries)
        self._summaries = _LRU(4096)  # trace digest -> L1Summary
        self._pool = None
        self._batcher = MicroBatcher(
            self._run_batch,
            max_batch=config.max_batch,
            window_s=config.batch_window_s,
            on_flush=self._on_flush,
            on_wait=lambda s: self._h_queue_wait.observe(1000 * s),
        )
        self._log = get_logger("service")
        self._started_unix = time.time()
        # The fleet tier: workers execute chunks themselves and never
        # re-dispatch, so only non-workers get a dispatcher.  Imported
        # here, not at module top: repro.fleet speaks the service wire
        # format, so the module dependency runs the other way.
        from repro.fleet.dispatch import FleetDispatcher

        self.fleet: Optional[FleetDispatcher] = None
        if not config.worker:
            self.fleet = FleetDispatcher(
                self._run_batch_local,
                l1_config=self.l1_config,
                keep_pcs=config.keep_pcs,
                workers=config.workers,
                fetch_policy=config.fetch_policy,
                max_inflight=config.fleet_max_inflight,
                chunk_timeout_s=config.fleet_chunk_timeout_s,
                max_attempts=config.fleet_max_attempts,
                heartbeat_s=config.fleet_heartbeat_s,
            )
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        if self.config.jobs > 1:
            self._pool = make_pool(
                self.config.jobs,
                l1_config=self.l1_config,
                keep_pcs=self.config.keep_pcs,
                store=self.store,
            )
        await self._batcher.start()
        if self.fleet is not None:
            await self.fleet.start()
        self._started = True

    async def close(self) -> None:
        if not self._started:
            return
        if self.fleet is not None:
            await self.fleet.close()
        await self._batcher.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._started = False

    # -- hooks -------------------------------------------------------------

    def _on_cache_event(self, event: str) -> None:
        counter = self._hook_counters.get(event)
        if counter is not None:
            counter.inc()

    def _on_flush(self, size: int) -> None:
        self._c_batches.inc()
        self._h_batch.observe(size)

    # -- execution ---------------------------------------------------------

    async def _run_batch(
        self, tasks: List[SweepTask]
    ) -> Sequence[Union[RunResult, TaskError]]:
        """Execute one flushed batch (called by the micro-batcher).

        With live workers registered the batch is sharded across the
        fleet; otherwise (or for any cells the fleet fails over) it runs
        on the local pool.  Replays are deterministic, so both paths
        produce bit-identical results.
        """
        self._c_cells_executed.inc(len(tasks))
        if self.fleet is not None and self.fleet.alive_workers():
            return await self.fleet.run_batch(tasks)
        return await self._run_batch_local(tasks)

    async def _run_batch_local(
        self, tasks: List[SweepTask]
    ) -> Sequence[Union[RunResult, TaskError]]:
        """The single-host path: run_grid on this process's pool."""
        if self._pool is not None:
            fn = partial(
                run_grid,
                tasks,
                jobs=self.config.jobs,
                executor=self._pool,
                store=self.store,
                l1_config=self.l1_config,
                keep_pcs=self.config.keep_pcs,
            )
        else:
            # Serial mode: the single-flight batcher serialises access to
            # the shared in-process cache, so no pool and no pickling.
            fn = partial(run_grid, tasks, jobs=1, cache=self._cache)
        return await asyncio.to_thread(fn)

    def _digests(self, cell: api.CellSpec) -> Tuple[str, str]:
        tkey = trace_digest(
            cell.workload, cell.scale, cell.seed, self.l1_config, self.config.keep_pcs
        )
        return tkey, result_digest(tkey, cell.config)

    async def _compute_cell(
        self, cell: api.CellSpec, tkey: str, digest: str
    ) -> Union[RunResult, TaskError]:
        """Materialise one cell: warm store, else batch to the pool."""
        if self.store is not None:
            summary = self._summaries.get(tkey)
            if summary is not None:
                stats = await asyncio.to_thread(self.store.load_result, digest)
                if stats is not None:
                    self._c_store_fast.inc()
                    result = RunResult(
                        workload=cell.workload,
                        scale=cell.scale,
                        seed=cell.seed,
                        l1=summary,
                        streams=stats,
                        source="store",
                    )
                    self._results.put(digest, result)
                    return result
        result = await self._batcher.submit(cell.task())
        if isinstance(result, RunResult):
            self._summaries.put(tkey, result.l1)
            self._results.put(digest, result)
        return result

    async def _one_cell(
        self, cell: api.CellSpec
    ) -> Tuple[api.CellSpec, Union[RunResult, TaskError]]:
        tkey, digest = self._digests(cell)
        cached = self._results.get(digest)
        if cached is not None:
            self._c_result_cache.inc()
            return cell, cached
        future, coalesced = self.coalescer.admit(
            digest,
            lambda: asyncio.ensure_future(self._compute_cell(cell, tkey, digest)),
            trace_id=cell.trace_id or current_trace_id(),
        )
        if coalesced:
            self._c_coalesce.inc()
            self._record_join(cell, digest)
        # Shield: this waiter's deadline/cancellation must not kill the
        # shared computation other waiters are attached to.
        result = await asyncio.shield(future)
        return cell, result

    def _record_join(self, cell: api.CellSpec, digest: str) -> None:
        """Record a coalesced follower onto the owning request's trace.

        The join is written as a zero-duration ``coalesce.join`` span on
        the *owner's* trace (plus a debug log record), carrying the
        follower's trace id — so the owner's timeline shows exactly who
        piggybacked on its computation, and a coalesced request's
        latency is explicable from the owner's spans.
        """
        owner = self.coalescer.owner_trace(digest)
        follower = cell.trace_id or current_trace_id()
        tracer = get_tracer()
        if tracer.enabled and owner is not None:
            with bind_trace(owner):
                with tracer.span(
                    "coalesce.join",
                    key=str(cell.key),
                    follower_trace=follower or "",
                ):
                    pass
        self._log.debug(
            "coalesce.join",
            key=api._json_key(cell.key),
            owner_trace=owner,
            follower_trace=follower,
        )

    # -- request handlers --------------------------------------------------

    def _clamp_timeout(self, requested: Optional[float]) -> float:
        timeout = requested if requested is not None else self.config.default_timeout_s
        return min(timeout, self.config.max_timeout_s)

    def _endpoint_latency(self, kind: str) -> "Histogram":
        histogram = self._h_endpoints.get(kind)
        if histogram is None:
            histogram = self.metrics.histogram(
                f"endpoint_{kind}_latency_ms", f"{kind} request wall time, ms"
            )
            self._h_endpoints[kind] = histogram
        return histogram

    async def handle_cells(self, request: api.CellsRequest) -> dict:
        """Serve a validated run/sweep request; returns the response body.

        A fresh ``trace_id`` is minted here — admission is where a
        request becomes work — bound for the whole handling extent and
        stamped onto every cell, so frontend spans, coalescer joins,
        chunk dispatches and worker replays all tag the same trace.
        """
        self._c_requests.inc()
        self._c_cells_requested.inc(len(request.cells))
        timeout = self._clamp_timeout(request.timeout_s)
        started = time.perf_counter()
        with trace_scope(new_trace_id()) as trace_id:
            cells = tuple(
                dataclasses.replace(cell, trace_id=trace_id)
                for cell in request.cells
            )
            self._log.info(
                "request.admit", endpoint=request.kind, cells=len(cells)
            )
            try:
                with get_tracer().span(
                    "request.admit", endpoint=request.kind, cells=len(cells)
                ):
                    async with self.queue.slot():
                        pairs = await with_deadline(
                            asyncio.gather(*(self._one_cell(cell) for cell in cells)),
                            timeout,
                        )
            except QueueFullError:
                self._c_rejected.inc()
                self._log.warning("request.reject", endpoint=request.kind)
                raise
            except DeadlineExceeded:
                self._c_timeouts.inc()
                self._log.warning(
                    "request.timeout", endpoint=request.kind, timeout_s=timeout
                )
                raise
            finally:
                elapsed_ms = 1000 * (time.perf_counter() - started)
                self._h_latency.observe(elapsed_ms)
                self._endpoint_latency(request.kind).observe(elapsed_ms)
        results = [
            api.encode_cell_result(cell, result)
            for cell, result in pairs
            if isinstance(result, RunResult)
        ]
        errors = [
            api.encode_task_error(result)
            for _, result in pairs
            if isinstance(result, TaskError)
        ]
        if errors:
            self._c_cell_errors.inc(len(errors))
        self._log.info(
            "request.done",
            endpoint=request.kind,
            trace_id=trace_id,
            cells=len(cells),
            failed=len(errors),
            elapsed_ms=round(1000 * (time.perf_counter() - started), 3),
        )
        return api.ok_envelope(
            request.kind,
            results=results,
            errors=errors,
            meta={
                "cells": len(request.cells),
                "failed": len(errors),
                "trace_id": trace_id,
                "elapsed_ms": round(1000 * (time.perf_counter() - started), 3),
            },
        )

    async def handle_exhibit(self, request: api.ExhibitRequest) -> dict:
        """Serve a validated exhibit request; returns the response body."""
        self._c_requests.inc()
        timeout = self._clamp_timeout(request.timeout_s)
        started = time.perf_counter()
        with trace_scope(new_trace_id()) as trace_id:
            self._log.info("request.admit", endpoint="exhibit", name=request.name)
            try:
                with get_tracer().span("request.admit", endpoint="exhibit"):
                    async with self.queue.slot():
                        rendered = await with_deadline(
                            asyncio.to_thread(self._run_exhibit, request), timeout
                        )
            except QueueFullError:
                self._c_rejected.inc()
                self._log.warning("request.reject", endpoint="exhibit")
                raise
            except DeadlineExceeded:
                self._c_timeouts.inc()
                self._log.warning(
                    "request.timeout", endpoint="exhibit", timeout_s=timeout
                )
                raise
            finally:
                elapsed_ms = 1000 * (time.perf_counter() - started)
                self._h_latency.observe(elapsed_ms)
                self._endpoint_latency("exhibit").observe(elapsed_ms)
        return api.ok_envelope(
            "exhibit",
            name=request.name,
            rendered=rendered,
            meta={
                "trace_id": trace_id,
                "elapsed_ms": round(1000 * (time.perf_counter() - started), 3),
            },
        )

    def _run_exhibit(self, request: api.ExhibitRequest) -> str:
        """Run one exhibit driver+renderer (in a worker thread).

        Each request gets its own :class:`MissTraceCache` over the shared
        store — drivers mutate their cache, and requests may overlap.
        """
        driver, renderer = EXHIBITS[request.name]
        cache = MissTraceCache(
            self.l1_config, keep_pcs=self.config.keep_pcs, store=self.store
        )
        kwargs: dict = {"cache": cache}
        if request.name in SWEEP_EXHIBITS:
            kwargs.update(jobs=self.config.jobs, store=self.store)
        if request.benchmarks:
            if request.name == "table4":
                from repro.workloads import TABLE4_SCALES

                scales = {
                    k: v for k, v in TABLE4_SCALES.items() if k in request.benchmarks
                }
                data = driver(scales=scales, **kwargs)
            else:
                data = driver(names=list(request.benchmarks), **kwargs)
        else:
            data = driver(**kwargs)
        return renderer(data)

    # -- fleet handlers ----------------------------------------------------

    async def handle_chunk(self, request: api.ChunkRequest) -> dict:
        """Execute one dispatched shard (the worker side of the fleet).

        Cells run through the same per-cell machinery as a sweep (result
        LRU, warm-store fast path, coalescer, micro-batcher), so a
        worker is just a service whose traffic happens to be chunks.
        Before executing, missing trace blobs are replicated from the
        chunk's ``blob_origin``; under the ``"require"`` policy, cells
        whose trace is available nowhere fail with a tagged TaskError
        instead of being recomputed.

        The response ships this process's drained telemetry (engine
        metrics delta + spans) so the frontend's ``/metrics``, manifests
        and traces cover the whole fleet.
        """
        self._c_requests.inc()
        self._c_chunks.inc()
        self._c_chunk_cells.inc(len(request.cells))
        timeout = self._clamp_timeout(request.timeout_s)
        started = time.perf_counter()
        digests = [self._digests(cell) for cell in request.cells]
        unavailable: set = set()
        if request.blob_origin is not None or request.fetch_policy == "require":
            from repro.fleet.remote import replicate_traces

            wanted = {tkey for tkey, _ in digests}
            unavailable = await asyncio.to_thread(
                replicate_traces, self.store, request.blob_origin, wanted
            )
        try:
            async with self.queue.slot():

                async def one(cell: api.CellSpec, tkey: str):
                    if request.fetch_policy == "require" and tkey in unavailable:
                        self._c_chunk_unavailable.inc()
                        return TaskError(
                            key=cell.key,
                            workload=cell.workload,
                            error="trace_unavailable",
                            details=(
                                f"trace {tkey} is neither local nor at "
                                f"{request.blob_origin!r} and fetch_policy="
                                "'require' forbids recomputing it"
                            ),
                            worker=os.getpid(),
                        )
                    _, result = await self._one_cell(cell)
                    return result

                results = await with_deadline(
                    asyncio.gather(
                        *(
                            one(cell, tkey)
                            for cell, (tkey, _) in zip(request.cells, digests)
                        )
                    ),
                    timeout,
                )
        except QueueFullError:
            self._c_rejected.inc()
            self._log.warning("chunk.reject", cells=len(request.cells))
            raise
        except DeadlineExceeded:
            self._c_timeouts.inc()
            self._log.warning("chunk.timeout", timeout_s=timeout)
            raise
        finally:
            elapsed_ms = 1000 * (time.perf_counter() - started)
            self._h_latency.observe(elapsed_ms)
            self._endpoint_latency("chunk").observe(elapsed_ms)
        encoded = []
        failed = 0
        for cell, result in zip(request.cells, results):
            if isinstance(result, RunResult):
                encoded.append({"ok": True, **api.encode_cell_result(cell, result)})
            else:
                failed += 1
                encoded.append({"ok": False, "error": api.encode_task_error(result)})
        if failed:
            self._c_cell_errors.inc(failed)
        self._log.info(
            "chunk.done",
            cells=len(request.cells),
            failed=failed,
            traces=len({c.trace_id for c in request.cells if c.trace_id}),
            elapsed_ms=round(1000 * (time.perf_counter() - started), 3),
        )
        tracer = get_tracer()
        return api.ok_envelope(
            "chunk",
            cells=encoded,
            telemetry={
                "metrics": engine_registry().drain(),
                "spans": tracer.drain() if tracer.enabled else [],
            },
            meta={
                "pid": os.getpid(),
                "cells": len(request.cells),
                "failed": failed,
                "elapsed_ms": round(1000 * (time.perf_counter() - started), 3),
            },
        )

    def handle_register(self, url: str) -> dict:
        """Admit a worker into the fleet (``POST /v1/fleet/register``)."""
        if self.fleet is None:
            raise api.ValidationError("this server is a worker; it has no fleet")
        self.fleet.register(url)
        self._log.info("fleet.register", url=url, workers=len(self.fleet))
        return api.ok_envelope(
            "register", url=url, workers=len(self.fleet)
        )

    def fleet_status(self) -> dict:
        """Fleet topology + bounded per-cell dispatch log (JSON-safe)."""
        if self.fleet is None:
            return api.ok_envelope("fleet_status", role="worker", workers=[], cells=[])
        return api.ok_envelope("fleet_status", role="frontend", **self.fleet.status())

    def health(self) -> dict:
        from repro import __version__

        return {
            "ok": True,
            "v": api.WIRE_VERSION,
            "version": __version__,
            "role": "worker" if self.config.worker else "frontend",
            "pid": os.getpid(),
            "queue_depth": self.queue.depth,
            "inflight_cells": len(self.coalescer),
            "store": str(self.store.root) if self.store is not None else None,
            "jobs": self.config.jobs,
            "fleet_workers": len(self.fleet) if self.fleet is not None else 0,
            "fleet_alive": (
                len(self.fleet.alive_workers()) if self.fleet is not None else 0
            ),
        }

    @staticmethod
    def _percentiles(histogram: "Histogram") -> dict:
        return {
            "p50": round(histogram.percentile(50.0), 3),
            "p95": round(histogram.percentile(95.0), 3),
            "p99": round(histogram.percentile(99.0), 3),
            "count": histogram.count,
        }

    def debug(self, log_tail: int = 50) -> dict:
        """Live introspection state behind ``GET /v1/debug``.

        One JSON object that answers "what is this server doing right
        now": queue depth against its limit, coalescer in-flight count
        and cumulative hit rate, p50/p95/p99 of request latency and
        queue waits (overall and per endpoint), per-worker in-flight
        windows and heartbeat ages, and the tail of the structured log
        ring.  ``repro top`` polls exactly this.
        """
        requested = self._c_cells_requested.value
        coalesced = self._c_coalesce.value
        endpoints = {
            kind: self._percentiles(histogram)
            for kind, histogram in sorted(self._h_endpoints.items())
        }
        fleet: dict = {"role": "worker" if self.config.worker else "frontend"}
        if self.fleet is not None:
            status = self.fleet.status()
            fleet["workers"] = status["workers"]
            fleet["alive"] = len(self.fleet.alive_workers())
            fleet["chunk_ms"] = self._percentiles(self.fleet.chunk_latency)
        return api.ok_envelope(
            "debug",
            pid=os.getpid(),
            uptime_s=round(time.time() - self._started_unix, 3),
            queue={
                "depth": self.queue.depth,
                "limit": self.queue.limit,
                "batcher_pending": self._batcher.pending,
            },
            coalescer={
                "inflight": len(self.coalescer),
                "hits": coalesced,
                "hit_rate": round(coalesced / requested, 4) if requested else 0.0,
            },
            latency_ms=self._percentiles(self._h_latency),
            queue_wait_ms=self._percentiles(self._h_queue_wait),
            admission_wait_ms=self._percentiles(self._h_admission_wait),
            endpoints=endpoints,
            counters={
                "requests": self._c_requests.value,
                "rejected": self._c_rejected.value,
                "timeouts": self._c_timeouts.value,
                "failures": self._c_failures.value,
                "cells_requested": requested,
                "cells_executed": self._c_cells_executed.value,
                "cell_errors": self._c_cell_errors.value,
                "result_cache_hits": self._c_result_cache.value,
                "store_fastpath_hits": self._c_store_fast.value,
            },
            fleet=fleet,
            log=log_ring().tail(log_tail),
        )


# -- HTTP frontend ----------------------------------------------------------


class _HttpError(Exception):
    def __init__(self, status: int, code: str, message: str, **extra):
        self.status = status
        self.body = api.error_envelope(code, message, **extra)
        super().__init__(message)


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class ServiceServer:
    """Binds a :class:`SimulationService` to a TCP port."""

    def __init__(self, service: SimulationService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Start the service and listener; returns the bound address."""
        await self.service.start()
        self._server = await asyncio.start_server(self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.service.fleet is not None and self.service.fleet.blob_origin is None:
            # Workers fetch missing trace blobs from this frontend.
            self.service.fleet.blob_origin = (
                self.service.config.advertise_url
                or f"http://{self.host}:{self.port}"
            )
        return self.host, self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    # -- connection handling ----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests on one connection until either side closes.

        HTTP/1.1 keep-alive: the connection is reused for subsequent
        requests unless the client sent ``Connection: close`` (the
        blocking client leans on reuse; :func:`arequest` opts out).
        """
        try:
            while True:
                try:
                    method, path, body, headers = await self._read_request(reader)
                except _HttpError as exc:
                    await self._respond_json(writer, exc.status, exc.body, close=True)
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client went away (EOF between requests is normal)
                close = headers.get("connection", "").lower() == "close"
                await self._dispatch(writer, method, path, body, close=close)
                if close:
                    return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes, Dict[str, str]]:
        try:
            header_block = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers_too_large", "header block too large")
        if len(header_block) > MAX_HEADER_BYTES:
            raise _HttpError(413, "headers_too_large", "header block too large")
        head, *header_lines = header_block.decode("latin-1").split("\r\n")
        parts = head.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "bad_request_line", f"malformed request line {head!r}")
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            length = int(length)
        except ValueError:
            raise _HttpError(400, "bad_content_length", f"bad Content-Length {length!r}")
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, "body_too_large", f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, body, headers

    def _merged_snapshot(self) -> dict:
        """Service instruments plus the process-global engine registry.

        The engine registry (``repro.obs``) collects what the simulation
        layers record — store IO, cell outcomes, L1 sim time — in this
        process *and*, merged back by ``run_grid``, in the pool workers.
        All its names carry an ``engine_`` prefix, so the union with the
        service's ``service_``/cache instruments is collision-free.
        """
        return merge_snapshots(
            self.service.metrics.snapshot(include_samples=True),
            engine_registry().snapshot(include_samples=True),
        )

    def _merged_metrics_text(self) -> str:
        return render_snapshot_text(self._merged_snapshot())

    def _merged_metrics_json(self) -> dict:
        return strip_samples(self._merged_snapshot())

    async def _serve_blob(
        self, writer: asyncio.StreamWriter, path: str, close: bool
    ) -> None:
        """``GET /v1/blob/<kind>/<digest>`` — raw store bytes or 404."""
        parts = path.split("/")
        if len(parts) != 5 or not parts[4]:
            raise _HttpError(404, "not_found", f"no such path {path!r}")
        kind, digest = parts[3], parts[4]
        store = self.service.store
        if store is None:
            raise _HttpError(404, "blob_not_found", "this server runs storeless")
        try:
            data = (
                await asyncio.to_thread(store.read_blob, kind, digest)
                if store.has_blob(kind, digest)
                else None
            )
        except ValueError as exc:  # unknown blob kind
            raise _HttpError(404, "blob_not_found", str(exc))
        if data is None:
            raise _HttpError(
                404, "blob_not_found", f"no {kind} blob {digest} in this store"
            )
        await self._respond(
            writer, 200, data, "application/octet-stream", close=close
        )

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
        close: bool = True,
    ) -> None:
        path = path.split("?", 1)[0]
        try:
            if method == "GET":
                if path in ("/healthz", "/health"):
                    await self._respond_json(
                        writer, 200, self.service.health(), close=close
                    )
                elif path == "/metrics":
                    await self._respond_text(
                        writer, 200, self._merged_metrics_text(), close=close
                    )
                elif path == "/metrics.json":
                    await self._respond_json(
                        writer, 200, self._merged_metrics_json(), close=close
                    )
                elif path == "/v1/fleet/status":
                    await self._respond_json(
                        writer, 200, self.service.fleet_status(), close=close
                    )
                elif path == "/v1/debug":
                    await self._respond_json(
                        writer, 200, self.service.debug(), close=close
                    )
                elif path == "/v1/trace":
                    # The merged span buffer (local + worker-shipped) as a
                    # Perfetto-loadable document, flow arrows included.
                    await self._respond_json(
                        writer,
                        200,
                        chrome_trace(get_tracer().events()),
                        close=close,
                    )
                elif path.startswith("/v1/blob/"):
                    await self._serve_blob(writer, path, close)
                else:
                    raise _HttpError(404, "not_found", f"no such path {path!r}")
                return
            if method != "POST":
                raise _HttpError(405, "method_not_allowed", f"{method} not supported")
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, "bad_json", f"request body is not JSON: {exc}")
            if path == "/v1/run":
                request = api.parse_run_request(payload)
                response = await self.service.handle_cells(request)
            elif path == "/v1/sweep":
                request = api.parse_sweep_request(payload)
                response = await self.service.handle_cells(request)
            elif path == "/v1/exhibit":
                request = api.parse_exhibit_request(payload)
                response = await self.service.handle_exhibit(request)
            elif path == "/v1/chunk":
                request = api.parse_chunk_request(payload)
                response = await self.service.handle_chunk(request)
            elif path == "/v1/fleet/register":
                url = api.parse_register_request(payload)
                response = self.service.handle_register(url)
            else:
                raise _HttpError(404, "not_found", f"no such path {path!r}")
            await self._respond_json(writer, 200, response, close=close)
        except _HttpError as exc:
            await self._respond_json(writer, exc.status, exc.body, close=close)
        except api.ValidationError as exc:
            await self._respond_json(
                writer, 400, api.error_envelope("bad_request", str(exc)), close=close
            )
        except QueueFullError as exc:
            await self._respond_json(
                writer,
                429,
                api.error_envelope(
                    "over_capacity", str(exc), retry_after_s=1.0
                ),
                extra_headers={"Retry-After": "1"},
                close=close,
            )
        except DeadlineExceeded as exc:
            await self._respond_json(
                writer,
                504,
                api.error_envelope("deadline_exceeded", str(exc)),
                close=close,
            )
        except Exception as exc:  # the server must answer, not die
            self.service._c_failures.inc()
            await self._respond_json(
                writer,
                500,
                api.error_envelope(
                    "internal", f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                ),
                close=close,
            )

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
        close: bool = True,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + payload)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client gone; nothing to deliver the response to

    @classmethod
    async def _respond_json(
        cls,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict,
        extra_headers: Optional[Dict[str, str]] = None,
        close: bool = True,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        await cls._respond(
            writer, status, payload, "application/json", extra_headers, close=close
        )

    @classmethod
    async def _respond_text(
        cls,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        close: bool = True,
    ) -> None:
        await cls._respond(
            writer,
            status,
            body.encode("utf-8"),
            "text/plain; version=0.0.4",
            close=close,
        )


async def _register_with_frontend(
    register_url: str, advertise_url: str, attempts: int = 60, delay_s: float = 1.0
) -> None:
    """Announce this worker to its frontend, retrying until it is up."""
    from urllib.parse import urlsplit

    from repro.service.client import arequest

    parts = urlsplit(register_url)
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    for attempt in range(attempts):
        try:
            status, body = await arequest(
                host,
                port,
                "POST",
                "/v1/fleet/register",
                {"v": api.WIRE_VERSION, "url": advertise_url},
                timeout=5.0,
            )
            if status == 200 and isinstance(body, dict) and body.get("ok"):
                print(f"repro-service registered with {register_url}", flush=True)
                return
        except (OSError, asyncio.TimeoutError, ValueError):
            pass
        await asyncio.sleep(delay_s)
    print(f"repro-service failed to register with {register_url}", flush=True)


async def run_server(
    config: ServiceConfig, host: str = "127.0.0.1", port: int = 8077
) -> None:
    """Start a server and serve until cancelled (the CLI entry point).

    Prints a ``listening on host:port`` line once bound — the smoke test
    and scripts parse it, so keep the format stable.
    """
    server = ServiceServer(SimulationService(config), host=host, port=port)
    bound_host, bound_port = await server.start()
    print(f"repro-service listening on {bound_host}:{bound_port}", flush=True)
    register_task: Optional[asyncio.Task] = None
    if config.register_url:
        advertise = config.advertise_url or f"http://{bound_host}:{bound_port}"
        register_task = asyncio.ensure_future(
            _register_with_frontend(config.register_url, advertise)
        )
    try:
        await asyncio.Event().wait()  # serve until cancelled
    finally:
        if register_task is not None:
            register_task.cancel()
        await server.close()
