"""Micro-batching of sweep cells into single ``run_grid`` calls.

Dispatching one cell at a time to the process pool pays pickling and
IPC overhead per cell; the sweep engine already amortises that *within*
one ``run_grid`` call by chunking.  The batcher extends the same
amortisation *across* concurrent requests: cells submitted within a
short linger window (or until the batch fills) are flushed together as
one grid, so a burst of N single-cell requests costs one pool round
trip instead of N.

Shape: an ``asyncio.Queue`` feeding a single consumer task.  One flush
runs at a time — which both maximises batch fill under load (cells
arriving during a flush form the next batch) and serialises access to
the serial path's shared ``MissTraceCache`` (not thread safe) because
the executor callable runs in one worker thread at a time.

Every submitted cell resolves its own future with a ``RunResult`` or a
``TaskError`` value; a failure of the *batch machinery* (not a cell)
rejects all futures of that batch.
"""

from __future__ import annotations

from typing import Awaitable, Callable, List, Optional, Sequence, Tuple, Union

import asyncio

from repro.sim.parallel import SweepTask, TaskError
from repro.sim.results import RunResult

__all__ = ["MicroBatcher"]

CellResult = Union[RunResult, TaskError]
BatchRunner = Callable[[List[SweepTask]], Awaitable[Sequence[CellResult]]]


class MicroBatcher:
    """Collect cells briefly, run them as one grid, fan results out.

    Args:
        run_batch: coroutine function executing a list of tasks and
            returning one result per task, in order (the service wraps
            ``run_grid`` in ``asyncio.to_thread`` here).
        max_batch: flush as soon as this many cells are pending.
        window_s: flush at latest this long after the first cell of a
            batch arrived (the "linger"); 0 flushes whatever a single
            loop iteration can drain without sleeping.
        on_flush: called with the batch size at every flush (metrics).
        on_wait: called with each flushed cell's queue wait in seconds
            (submit → flush start); this is the real "time spent queued"
            a request sees, dominated by the linger window plus any
            flush already in progress.
    """

    def __init__(
        self,
        run_batch: BatchRunner,
        max_batch: int = 32,
        window_s: float = 0.002,
        on_flush: Optional[Callable[[int], None]] = None,
        on_wait: Optional[Callable[[float], None]] = None,
    ):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s must be non-negative, got {window_s}")
        self._run_batch = run_batch
        self.max_batch = max_batch
        self.window_s = window_s
        self._on_flush = on_flush
        self._on_wait = on_wait
        self._queue: "asyncio.Queue[Tuple[SweepTask, asyncio.Future, float]]" = (
            asyncio.Queue()
        )
        self._consumer: Optional[asyncio.Task] = None
        self._closed = False

    @property
    def pending(self) -> int:
        """Cells submitted but not yet flushed (live queue depth)."""
        return self._queue.qsize()

    async def start(self) -> None:
        if self._consumer is None:
            self._closed = False
            self._consumer = asyncio.ensure_future(self._consume())

    async def close(self) -> None:
        """Stop the consumer; pending futures are cancelled."""
        self._closed = True
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
            self._consumer = None
        while not self._queue.empty():
            _, future, _ = self._queue.get_nowait()
            if not future.done():
                future.cancel()

    def submit(self, task: SweepTask) -> "asyncio.Future[CellResult]":
        """Enqueue one cell; the returned future resolves at flush."""
        if self._closed or self._consumer is None:
            raise RuntimeError("batcher is not running (call start() first)")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[CellResult]" = loop.create_future()
        self._queue.put_nowait((task, future, loop.time()))
        return future

    async def _consume(self) -> None:
        while True:
            batch = [await self._queue.get()]
            deadline = asyncio.get_running_loop().time() + self.window_s
            while len(batch) < self.max_batch:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    # Window over — but drain anything already queued.
                    while len(batch) < self.max_batch and not self._queue.empty():
                        batch.append(self._queue.get_nowait())
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            await self._flush(batch)

    async def _flush(
        self, batch: List[Tuple[SweepTask, "asyncio.Future[CellResult]", float]]
    ) -> None:
        live = [(task, fut) for task, fut, _ in batch if not fut.done()]
        if not live:
            return
        if self._on_flush is not None:
            self._on_flush(len(live))
        if self._on_wait is not None:
            now = asyncio.get_running_loop().time()
            for _, fut, submitted in batch:
                if not fut.done():
                    self._on_wait(max(0.0, now - submitted))
        tasks = [task for task, _ in live]
        try:
            results = await self._run_batch(tasks)
        except asyncio.CancelledError:
            for _, future in live:
                if not future.done():
                    future.cancel()
            raise
        except Exception as exc:
            # Machinery failure (pool died, store unreachable): every
            # cell of the batch fails with the same cause.
            for _, future in live:
                if not future.done():
                    future.set_exception(exc)
            return
        if len(results) != len(tasks):
            mismatch = RuntimeError(
                f"batch runner returned {len(results)} results for {len(tasks)} tasks"
            )
            for _, future in live:
                if not future.done():
                    future.set_exception(mismatch)
            return
        for (_, future), result in zip(live, results):
            if not future.done():
                future.set_result(result)
