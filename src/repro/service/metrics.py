"""Lightweight counter/gauge/histogram registry for the service.

The serving layer wants exactly three instrument shapes — monotonic
counters (requests, coalesce hits, store hits), point-in-time gauges
(queue depth) and latency histograms with quantiles — and it wants them
dependency-free and cheap enough to bump on every request.  This module
provides those, plus two renderings:

* :meth:`MetricsRegistry.snapshot` — a plain dict for ``/metrics.json``
  and for assertions in tests/benchmarks;
* :meth:`MetricsRegistry.render_text` — a Prometheus-style text
  exposition for ``/metrics``, so the standard scrape tooling works
  against a dev deployment unchanged.

All instruments are thread safe: the asyncio loop, the batcher's worker
threads and the store/runner hook callbacks may all bump them
concurrently.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, in-flight cells)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Observations with cumulative count/sum and sampled quantiles.

    Quantiles come from a bounded ring of the most recent
    ``max_samples`` observations — a deliberate trade: exact for any
    test-sized series, sliding-window-recent for a long-lived server,
    and O(1) memory either way.  ``count``/``sum`` stay exact forever.
    """

    def __init__(self, name: str, help: str = "", max_samples: int = 2048):
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.name = name
        self.help = help
        self._max_samples = max_samples
        self._samples: List[float] = []
        self._next = 0
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % self._max_samples

    def percentile(self, pct: float) -> float:
        """The ``pct``-th percentile of the sampled window (0 if empty)."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return 0.0
        rank = max(0, min(len(data) - 1, round(pct / 100 * (len(data) - 1))))
        return data[rank]


class MetricsRegistry:
    """Named instruments, created on first use and rendered on demand.

    ``counter``/``gauge``/``histogram`` are get-or-create and idempotent,
    so independent components (queue, coalescer, batcher, store hooks)
    can each grab the instruments they bump without wiring order
    mattering.  Re-registering a name as a different instrument type is
    a bug and raises.
    """

    #: Quantiles rendered in the text exposition and JSON snapshot.
    QUANTILES = (50.0, 95.0, 99.0)

    def __init__(self, prefix: str = "repro"):
        self.prefix = prefix
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", max_samples: int = 2048
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, max_samples=max_samples)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._instruments.get(name)

    # -- renderings --------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as one JSON-safe dict."""
        with self._lock:
            instruments = dict(self._instruments)
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[name] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    **{
                        f"p{pct:g}": instrument.percentile(pct)
                        for pct in self.QUANTILES
                    },
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_text(self) -> str:
        """Prometheus-style text exposition (for ``GET /metrics``)."""
        with self._lock:
            instruments = dict(self._instruments)
        lines: List[str] = []
        for name, instrument in sorted(instruments.items()):
            full = f"{self.prefix}_{name}"
            if instrument.help:
                lines.append(f"# HELP {full} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full} {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {instrument.value:g}")
            elif isinstance(instrument, Histogram):
                lines.append(f"# TYPE {full} summary")
                for pct in self.QUANTILES:
                    lines.append(
                        f'{full}{{quantile="{pct / 100:g}"}} '
                        f"{instrument.percentile(pct):g}"
                    )
                lines.append(f"{full}_count {instrument.count}")
                lines.append(f"{full}_sum {instrument.sum:g}")
        return "\n".join(lines) + "\n"
