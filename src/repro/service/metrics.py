"""Compatibility shim: the metrics registry moved to :mod:`repro.obs`.

PR 5 promoted the service's Counter/Gauge/Histogram/MetricsRegistry
into :mod:`repro.obs.metrics` so the sweep engine, trace store and
analytic screen can share one instrument substrate (and one mergeable
snapshot format) with the service.  This module re-exports the public
names unchanged; new code should import from ``repro.obs.metrics``.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
