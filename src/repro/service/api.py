"""Request/response schemas for the simulation service wire format.

The service speaks **wire version 1**: JSON bodies over HTTP.  Every
request may carry ``"v": 1`` (absent means "current") and an optional
``"timeout_s"``; every response is an envelope with ``"v"``, ``"ok"``
and either the result body or an ``"error"`` object.

Three request kinds map onto the three CLI verbs:

``POST /v1/run``
    ``{"workload": "mgrid", "scale": 1.0, "seed": 0, "config": {...}}``
    — one cell; internally a one-cell sweep.

``POST /v1/sweep``
    ``{"workloads": [...], "n_streams": [...], "scale": ..., "seed":
    ..., "config": {...}}`` — the (workload x n_streams) grid, exactly
    the ``repro sweep`` shape.

``POST /v1/exhibit``
    ``{"name": "figure3", "benchmarks": [...]}`` — regenerate a paper
    exhibit, returning its rendered text.

``config`` objects take any :class:`~repro.core.config.StreamConfig`
field plus an optional ``"preset"`` (``jouppi``/``filtered``/
``non_unit``) the remaining fields override.  ``run`` bodies and fleet
chunk cells may instead carry a ``"mechanism"`` — a CLI spec string
(``"victim:16+streams"``) or a
:func:`~repro.mechanisms.mechanism_to_dict` object — and ``sweep``
bodies a ``"mechanisms"`` list, selecting the mechanism-zoo path
(mutually exclusive with ``config``).  All names are validated
against the workload and exhibit registries *before* anything is
queued, so a bad request costs nothing and fails with a precise 400.

Result cells are encoded losslessly: ``stats`` round-trips through
:func:`repro.trace.store.stats_to_dict`, so a client can rebuild the
exact :class:`~repro.core.prefetcher.StreamStats` the simulator
produced (the e2e tests assert bit-identical equality).  Failed cells
become error objects carrying the task key **and the full worker
traceback** (see :meth:`repro.sim.parallel.TaskError.to_payload`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import StreamConfig
from repro.mechanisms import (
    MechanismConfig,
    MechStats,
    mechanism_from_dict,
    mechanism_label,
    parse_mechanism_spec,
)
from repro.reporting.experiments import EXHIBITS
from repro.sim.parallel import SweepTask, TaskError, _json_key
from repro.sim.results import RunResult
from repro.trace.store import mech_stats_to_dict, stats_to_dict
from repro.workloads import workload_names

__all__ = [
    "WIRE_VERSION",
    "MAX_CELLS_PER_REQUEST",
    "ValidationError",
    "CellSpec",
    "CellsRequest",
    "ExhibitRequest",
    "ChunkRequest",
    "config_from_payload",
    "mechanism_from_payload",
    "parse_run_request",
    "parse_sweep_request",
    "parse_exhibit_request",
    "parse_chunk_request",
    "parse_register_request",
    "encode_cell_result",
    "encode_task_error",
    "decode_cell_result",
    "decode_task_error",
    "key_from_json",
    "ok_envelope",
    "error_envelope",
]

#: Version of the JSON wire format; bump on incompatible changes.
WIRE_VERSION = 1

#: Per-request grid-size cap — a single request cannot enqueue an
#: unbounded amount of work past the admission queue's accounting.
MAX_CELLS_PER_REQUEST = 1024

_CONFIG_PRESETS = {
    "jouppi": StreamConfig.jouppi,
    "filtered": StreamConfig.filtered,
    "non_unit": StreamConfig.non_unit,
}

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(StreamConfig))


class ValidationError(ValueError):
    """A request failed schema validation (maps to HTTP 400)."""


# -- request parsing --------------------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One validated grid cell of a run/sweep request.

    ``config`` is a :class:`StreamConfig` for stream cells or a
    :class:`~repro.mechanisms.MechanismConfig` for mechanism-zoo cells;
    the sweep engine dispatches on the type (see repro.sim.parallel).

    ``trace_id`` is the request trace the cell executes under.  The
    frontend stamps it at admission; over the fleet chunk wire it rides
    as an **optional** per-cell field, so old workers (which build cells
    with ``raw.get``) and old clients are unaffected.
    """

    key: Tuple
    workload: str
    config: "StreamConfig | MechanismConfig"
    scale: float = 1.0
    seed: int = 0
    trace_id: Optional[str] = None

    def task(self) -> SweepTask:
        return SweepTask(
            key=self.key,
            workload=self.workload,
            config=self.config,
            scale=self.scale,
            seed=self.seed,
            trace_id=self.trace_id,
        )


@dataclass(frozen=True)
class CellsRequest:
    """A validated ``run`` or ``sweep`` request."""

    kind: str  # "run" | "sweep"
    cells: Tuple[CellSpec, ...]
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class ExhibitRequest:
    """A validated ``exhibit`` request."""

    name: str
    benchmarks: Optional[Tuple[str, ...]] = None
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class ChunkRequest:
    """A validated fleet ``chunk`` request (frontend -> worker).

    Unlike a sweep, every cell carries its *full* stream configuration:
    the dispatcher shards arbitrary batches, so cells in one chunk need
    not share anything but their target worker.

    Attributes:
        cells: the grid cells to execute, in result order.
        blob_origin: base URL (``http://host:port``) the worker may
            fetch missing trace blobs from, or None.
        fetch_policy: ``"fallback"`` (compute locally on a remote miss,
            the default) or ``"require"`` (a cell whose trace is neither
            local nor fetchable fails with a tagged TaskError instead of
            being recomputed — used when trace generation is pinned to
            the frontend).
        timeout_s: worker-side deadline for the whole chunk.
    """

    cells: Tuple[CellSpec, ...]
    blob_origin: Optional[str] = None
    fetch_policy: str = "fallback"
    timeout_s: Optional[float] = None


def _require_dict(payload) -> dict:
    if not isinstance(payload, dict):
        raise ValidationError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_version(payload: dict) -> None:
    version = payload.get("v", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise ValidationError(
            f"unsupported wire version {version!r} (this server speaks v{WIRE_VERSION})"
        )


def _parse_timeout(payload: dict) -> Optional[float]:
    timeout = payload.get("timeout_s")
    if timeout is None:
        return None
    if not isinstance(timeout, (int, float)) or isinstance(timeout, bool):
        raise ValidationError(f"timeout_s must be a number, got {timeout!r}")
    if timeout <= 0:
        raise ValidationError(f"timeout_s must be positive, got {timeout}")
    return float(timeout)


def _parse_workload(name, known: Sequence[str]) -> str:
    if not isinstance(name, str):
        raise ValidationError(f"workload name must be a string, got {name!r}")
    if name not in known:
        raise ValidationError(
            f"unknown workload {name!r}; known: {', '.join(sorted(known))}"
        )
    return name


def _parse_scale(payload: dict) -> float:
    scale = payload.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise ValidationError(f"scale must be a positive number, got {scale!r}")
    return float(scale)


def _parse_seed(payload: dict) -> int:
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValidationError(f"seed must be an integer, got {seed!r}")
    return seed


def config_from_payload(payload: Optional[dict]) -> StreamConfig:
    """Build a validated :class:`StreamConfig` from its JSON form.

    ``None`` yields the paper's unfiltered default.  Unknown fields are
    rejected by name (misspelled knobs must not silently sweep the
    default), and every :class:`StreamConfig` invariant violation is
    re-raised as a :class:`ValidationError`.
    """
    if payload is None:
        return StreamConfig.jouppi()
    if not isinstance(payload, dict):
        raise ValidationError(f"config must be a JSON object, got {payload!r}")
    fields = dict(payload)
    preset_name = fields.pop("preset", None)
    unknown = set(fields) - _CONFIG_FIELDS
    if unknown:
        raise ValidationError(
            f"unknown config field(s) {sorted(unknown)}; "
            f"valid: {sorted(_CONFIG_FIELDS)} (+ 'preset')"
        )
    try:
        if preset_name is not None:
            preset = _CONFIG_PRESETS.get(preset_name)
            if preset is None:
                raise ValidationError(
                    f"unknown config preset {preset_name!r}; "
                    f"valid: {sorted(_CONFIG_PRESETS)}"
                )
            return preset().with_(**fields)
        return StreamConfig(**fields)
    except ValidationError:
        raise
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"invalid config: {exc}") from exc


def mechanism_from_payload(payload) -> MechanismConfig:
    """Build a validated :class:`MechanismConfig` from its wire form.

    Accepts either a CLI spec string (``"victim:16+streams"`` — see
    :func:`~repro.mechanisms.parse_mechanism_spec`) or the JSON object
    produced by :func:`~repro.mechanisms.mechanism_to_dict`.  Every
    mechanism invariant violation is re-raised as a
    :class:`ValidationError`.
    """
    try:
        if isinstance(payload, str):
            return parse_mechanism_spec(payload)
        if isinstance(payload, dict):
            return mechanism_from_dict(payload)
    except (TypeError, ValueError, KeyError) as exc:
        raise ValidationError(f"invalid mechanism: {exc}") from exc
    raise ValidationError(
        f"mechanism must be a spec string or a JSON object, got {payload!r}"
    )


def parse_run_request(payload) -> CellsRequest:
    """Validate a ``run`` body into a one-cell :class:`CellsRequest`."""
    payload = _require_dict(payload)
    _check_version(payload)
    known = workload_names()
    workload = _parse_workload(payload.get("workload"), known)
    scale = _parse_scale(payload)
    seed = _parse_seed(payload)
    if payload.get("mechanism") is not None:
        if payload.get("config") is not None:
            raise ValidationError("pass either config or mechanism, not both")
        mechanism = mechanism_from_payload(payload["mechanism"])
        cell = CellSpec(
            key=(workload, mechanism_label(mechanism)),
            workload=workload,
            config=mechanism,
            scale=scale,
            seed=seed,
        )
        return CellsRequest(kind="run", cells=(cell,), timeout_s=_parse_timeout(payload))
    config = config_from_payload(payload.get("config"))
    cell = CellSpec(
        key=(workload, config.n_streams),
        workload=workload,
        config=config,
        scale=scale,
        seed=seed,
    )
    return CellsRequest(kind="run", cells=(cell,), timeout_s=_parse_timeout(payload))


def parse_sweep_request(payload) -> CellsRequest:
    """Validate a ``sweep`` body into its full grid of cells."""
    payload = _require_dict(payload)
    _check_version(payload)
    known = workload_names()
    workloads = payload.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ValidationError("workloads must be a non-empty list of names")
    workloads = [_parse_workload(name, known) for name in workloads]
    if payload.get("mechanisms") is not None:
        if payload.get("config") is not None or payload.get("n_streams") is not None:
            raise ValidationError(
                "mechanisms is mutually exclusive with config/n_streams"
            )
        raw_mechs = payload["mechanisms"]
        if not isinstance(raw_mechs, list) or not raw_mechs:
            raise ValidationError("mechanisms must be a non-empty list")
        mechs = [mechanism_from_payload(raw) for raw in raw_mechs]
        if len(workloads) * len(mechs) > MAX_CELLS_PER_REQUEST:
            raise ValidationError(
                f"grid of {len(workloads) * len(mechs)} cells exceeds the "
                f"per-request cap of {MAX_CELLS_PER_REQUEST}"
            )
        scale = _parse_scale(payload)
        seed = _parse_seed(payload)
        cells = tuple(
            CellSpec(
                key=(name, mechanism_label(mech)),
                workload=name,
                config=mech,
                scale=scale,
                seed=seed,
            )
            for name in workloads
            for mech in mechs
        )
        return CellsRequest(
            kind="sweep", cells=cells, timeout_s=_parse_timeout(payload)
        )
    n_streams = payload.get("n_streams", list(range(1, 11)))
    if not isinstance(n_streams, list) or not n_streams:
        raise ValidationError("n_streams must be a non-empty list of integers")
    for n in n_streams:
        if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
            raise ValidationError(f"n_streams values must be positive integers, got {n!r}")
    n_values = sorted(set(n_streams))
    if len(workloads) * len(n_values) > MAX_CELLS_PER_REQUEST:
        raise ValidationError(
            f"grid of {len(workloads) * len(n_values)} cells exceeds the "
            f"per-request cap of {MAX_CELLS_PER_REQUEST}"
        )
    base = config_from_payload(payload.get("config"))
    scale = _parse_scale(payload)
    seed = _parse_seed(payload)
    cells = tuple(
        CellSpec(
            key=(name, n),
            workload=name,
            config=base.with_(n_streams=n),
            scale=scale,
            seed=seed,
        )
        for name in workloads
        for n in n_values
    )
    return CellsRequest(kind="sweep", cells=cells, timeout_s=_parse_timeout(payload))


#: Fetch policies a chunk request may name (see :class:`ChunkRequest`).
FETCH_POLICIES = ("fallback", "require")


def key_from_json(key):
    """Invert :func:`~repro.sim.parallel._json_key`: lists become tuples.

    Task keys cross the fleet wire as JSON arrays; round-tripping them
    back to tuples keeps worker-side results keyed identically to the
    frontend's tasks (dict lookups and equality both depend on it).
    """
    if isinstance(key, list):
        return tuple(key_from_json(part) for part in key)
    return key


def parse_chunk_request(payload) -> ChunkRequest:
    """Validate a fleet ``chunk`` body (each cell self-contained)."""
    payload = _require_dict(payload)
    _check_version(payload)
    raw_cells = payload.get("cells")
    if not isinstance(raw_cells, list) or not raw_cells:
        raise ValidationError("cells must be a non-empty list")
    if len(raw_cells) > MAX_CELLS_PER_REQUEST:
        raise ValidationError(
            f"chunk of {len(raw_cells)} cells exceeds the per-request "
            f"cap of {MAX_CELLS_PER_REQUEST}"
        )
    known = workload_names()
    cells = []
    for raw in raw_cells:
        raw = _require_dict(raw)
        workload = _parse_workload(raw.get("workload"), known)
        if raw.get("mechanism") is not None:
            if raw.get("config") is not None:
                raise ValidationError("pass either config or mechanism, not both")
            config = mechanism_from_payload(raw["mechanism"])
        else:
            config = config_from_payload(raw.get("config"))
        trace_id = raw.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ValidationError(f"trace_id must be a string, got {trace_id!r}")
        cells.append(
            CellSpec(
                key=key_from_json(raw.get("key", [workload])),
                workload=workload,
                config=config,
                scale=_parse_scale(raw),
                seed=_parse_seed(raw),
                trace_id=trace_id,
            )
        )
    blob_origin = payload.get("blob_origin")
    if blob_origin is not None:
        if not isinstance(blob_origin, str):
            raise ValidationError(
                f"blob_origin must be a string URL, got {blob_origin!r}"
            )
        blob_origin = blob_origin.rstrip("/")
    fetch_policy = payload.get("fetch_policy", "fallback")
    if fetch_policy not in FETCH_POLICIES:
        raise ValidationError(
            f"unknown fetch_policy {fetch_policy!r}; valid: {FETCH_POLICIES}"
        )
    return ChunkRequest(
        cells=tuple(cells),
        blob_origin=blob_origin,
        fetch_policy=fetch_policy,
        timeout_s=_parse_timeout(payload),
    )


def parse_register_request(payload) -> str:
    """Validate a fleet ``register`` body; returns the worker's URL."""
    payload = _require_dict(payload)
    _check_version(payload)
    url = payload.get("url")
    if not isinstance(url, str) or not url.startswith(("http://", "https://")):
        raise ValidationError(f"url must be an http(s) URL, got {url!r}")
    return url.rstrip("/")


def parse_exhibit_request(payload) -> ExhibitRequest:
    """Validate an ``exhibit`` body against the exhibit registry."""
    payload = _require_dict(payload)
    _check_version(payload)
    name = payload.get("name")
    if not isinstance(name, str) or name not in EXHIBITS:
        raise ValidationError(
            f"unknown exhibit {name!r}; known: {', '.join(sorted(EXHIBITS))}"
        )
    benchmarks = payload.get("benchmarks")
    if benchmarks is not None:
        if not isinstance(benchmarks, list) or not benchmarks:
            raise ValidationError("benchmarks must be a non-empty list of names")
        known = workload_names()
        benchmarks = tuple(_parse_workload(b, known) for b in benchmarks)
    return ExhibitRequest(
        name=name, benchmarks=benchmarks, timeout_s=_parse_timeout(payload)
    )


# -- response encoding ------------------------------------------------------


def encode_cell_result(cell: CellSpec, result: RunResult) -> dict:
    """One successful cell as a lossless JSON object.

    Execution provenance (``wall_time_s``/``worker``/``source``) rides
    along so fleet frontends can rebuild the exact :class:`RunResult` a
    remote worker produced — manifests then attribute every cell to the
    process that actually ran it, across hosts.

    Stream cells keep the original ``"stats"`` shape byte-for-byte;
    mechanism-zoo cells carry ``"mech"``
    (:func:`~repro.trace.store.mech_stats_to_dict`) instead, so old
    clients never see an unfamiliar ``stats`` object.
    """
    body = {
        "key": _json_key(cell.key),
        "workload": result.workload,
        "scale": result.scale,
        "seed": result.seed,
        "hit_rate_percent": result.hit_rate_percent,
        "l1": dataclasses.asdict(result.l1),
        "wall_time_s": result.wall_time_s,
        "worker": result.worker,
        "source": result.source,
        "trace_id": result.trace_id,
    }
    if isinstance(result.streams, MechStats):
        body["mech"] = mech_stats_to_dict(result.streams)
    else:
        body["stats"] = stats_to_dict(result.streams)
    return body


def decode_cell_result(payload: dict) -> RunResult:
    """Rebuild the :class:`RunResult` behind :func:`encode_cell_result`.

    Exact inverse up to provenance defaults: ``stats`` round-trips
    bit-identically (the e2e tests assert equality against a direct
    ``run_grid``), and missing provenance fields decode to the
    dataclass defaults.

    Raises:
        KeyError/TypeError/ValueError: on malformed payloads.
    """
    from repro.sim.results import L1Summary
    from repro.trace.store import mech_stats_from_dict, stats_from_dict

    if "mech" in payload:
        streams = mech_stats_from_dict(payload["mech"])
    else:
        streams = stats_from_dict(payload["stats"])
    return RunResult(
        workload=payload["workload"],
        scale=float(payload["scale"]),
        seed=int(payload["seed"]),
        l1=L1Summary(**payload["l1"]),
        streams=streams,
        wall_time_s=float(payload.get("wall_time_s", 0.0)),
        worker=int(payload.get("worker", 0)),
        source=str(payload.get("source", "")),
        trace_id=str(payload.get("trace_id", "")),
    )


def encode_task_error(error: TaskError) -> dict:
    """One failed cell, traceback included."""
    return error.to_payload()


def decode_task_error(payload: dict) -> TaskError:
    """Rebuild a :class:`TaskError` from its wire payload."""
    return TaskError(
        key=key_from_json(payload.get("key")),
        workload=str(payload.get("workload", "")),
        error=str(payload.get("error", "")),
        details=str(payload.get("traceback", "")),
        wall_time_s=float(payload.get("wall_time_s", 0.0)),
        worker=int(payload.get("worker", 0)),
        trace_id=str(payload.get("trace_id", "")),
    )


def ok_envelope(kind: str, **body) -> dict:
    """A success response envelope carrying the wire version."""
    return {"v": WIRE_VERSION, "ok": True, "kind": kind, **body}


def error_envelope(code: str, message: str, **extra) -> dict:
    """A failure response envelope (``code`` is machine-matchable)."""
    return {
        "v": WIRE_VERSION,
        "ok": False,
        "error": {"code": code, "message": message, **extra},
    }
