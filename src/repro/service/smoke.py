"""Service smoke test: boot `repro serve`, one round trip, clean exit.

Exercises the *deployment* path the unit and e2e tests cannot: the real
CLI subprocess, a real TCP port, a real SIGINT shutdown.  CI runs this
as its service-smoke job (``make smoke-service``); it is equally useful
locally after touching the server or CLI wiring.

Exit code 0 on success; any failure prints the reason and exits 1.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.service.client import ServiceClient

_SRC_DIR = Path(__file__).resolve().parents[2]


def _spawn_server(store_root: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",  # ephemeral: the listening line tells us what we got
            "--jobs",
            "1",
            "--trace-store",
            store_root,
            "--max-queue",
            "8",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _read_address(proc: subprocess.Popen, timeout_s: float = 30.0) -> tuple:
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before binding (rc={proc.poll()})"
            )
        if "listening on" in line:
            address = line.rsplit(" ", 1)[-1].strip()
            host, _, port = address.rpartition(":")
            return host, int(port)
    raise RuntimeError("server did not print its listening line in time")


def main() -> int:
    """Boot, round-trip, SIGINT; returns the process exit code."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-smoke-store-") as store_root:
        proc = _spawn_server(store_root)
        try:
            host, port = _read_address(proc)
            client = ServiceClient(host, port, timeout=120.0)

            status, body = client.health()
            if status != 200 or not body.get("ok"):
                raise RuntimeError(f"healthz failed: {status} {body}")

            status, body = client.run(
                "sweep", scale=0.25, config={"n_streams": 4}, timeout_s=90
            )
            if status != 200 or not body.get("ok") or not body.get("results"):
                raise RuntimeError(f"run round-trip failed: {status} {body}")
            hit = body["results"][0]["hit_rate_percent"]

            metrics = client.metrics_text()
            if "repro_requests_total" not in metrics:
                raise RuntimeError("metrics exposition missing requests_total")

            proc.send_signal(signal.SIGINT)
            rc = proc.wait(timeout=30)
            if rc != 0:
                raise RuntimeError(f"server exited {rc} on SIGINT (want 0)")
            print(f"smoke OK: run hit rate {hit:.1f}%, clean shutdown")
            return 0
        except Exception as exc:
            print(f"smoke FAILED: {exc}", file=sys.stderr)
            if proc.poll() is None:
                proc.kill()
            assert proc.stdout is not None
            tail = proc.stdout.read() or ""
            if tail:
                print("--- server output ---\n" + tail[-4000:], file=sys.stderr)
            return 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
