"""In-flight request coalescing keyed by the trace store's digests.

The dominant access pattern for a figure-replication service is *many
clients asking for the same cells at the same time* — a dashboard
refresh fans out, a class all runs the same sweep, a CI matrix replays
the same grid.  The store already dedupes completed work across time;
this dedupes *in-flight* work across concurrent requests: the first
request for a digest starts the computation, every later request for
the same digest (arriving before it finishes) attaches to the same
future, and one result fans out to all of them.

The digest key is exactly :func:`repro.trace.store.result_digest` — the
content address under which the store would cache the cell's result —
so "same digest" is precisely "bit-identical result".

Single-event-loop discipline: all methods run on the loop thread, so a
plain dict is race-free.  Waiters must ``await asyncio.shield(fut)``;
cancelling one waiter (deadline expiry, client gone) must not cancel
the shared computation other waiters still want.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import asyncio

__all__ = ["Coalescer"]


class Coalescer:
    """Registry of in-flight computations keyed by result digest.

    Besides the future itself, each in-flight key remembers the
    ``trace_id`` of the request that *started* the computation (the
    owner).  Followers that join later belong to different traces; the
    service records their join onto the owning trace
    (``coalesce.join`` spans/log records carry both ids), which is what
    makes a coalesced request's latency explicable from the owner's
    timeline.
    """

    def __init__(self):
        self._inflight: Dict[str, asyncio.Future] = {}
        self._owners: Dict[str, Optional[str]] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def peek(self, key: str) -> Optional[asyncio.Future]:
        """The in-flight future for ``key``, if any (a coalesce hit)."""
        return self._inflight.get(key)

    def owner_trace(self, key: str) -> Optional[str]:
        """Trace id of the request that started ``key``'s computation."""
        return self._owners.get(key)

    def admit(
        self,
        key: str,
        factory: Callable[[], "asyncio.Future"],
        trace_id: Optional[str] = None,
    ) -> "tuple[asyncio.Future, bool]":
        """Attach to ``key``'s in-flight future, creating it if absent.

        Args:
            key: result digest of the cell.
            factory: called (synchronously) to start the computation when
                this is the first request for ``key``; must return a
                future/task.
            trace_id: the admitting request's trace; recorded as the
                key's owner when the computation is started here.

        Returns:
            ``(future, coalesced)`` — ``coalesced`` is True when an
            in-flight computation was joined rather than started.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            return existing, True
        future = factory()
        self._inflight[key] = future
        self._owners[key] = trace_id

        def _done(_done_future, _key=key):
            self._inflight.pop(_key, None)
            self._owners.pop(_key, None)

        future.add_done_callback(_done)
        return future, False
