"""Grid traversal helpers for the 3-D solver models.

The NAS codes are dominated by loop nests over 3-D grids.  These helpers
produce *element offset* arrays (flat Fortran-order indices) for the
traversal orders that matter to stream behaviour:

* :func:`sweep_points` — directional sweeps: the chosen axis varies
  fastest, so sweeping axis 0 of a Fortran array is unit stride while
  sweeping axis 1 or 2 produces the constant non-unit strides of
  Section 7;
* :func:`hyperplane_points` — wavefront (i+j+k = const) order, the SSOR
  traversal of applu that fragments streams into short runs;
* :func:`checkerboard_points` — red/black ordering (qcd), which doubles
  the effective stride and misaligns it with block boundaries.

Offsets combine with an array base and element size via :func:`addrs_at`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "flat_index",
    "sweep_points",
    "interior_points",
    "hyperplane_points",
    "checkerboard_points",
    "addrs_at",
    "neighbor_offset",
]


def flat_index(shape: Tuple[int, int, int], i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Fortran-order flat element index of grid point (i, j, k)."""
    nx, ny, _ = shape
    return i + nx * (j + ny * k)


def neighbor_offset(shape: Tuple[int, int, int], di: int = 0, dj: int = 0, dk: int = 0) -> int:
    """Flat-index delta of the (di, dj, dk) neighbour."""
    nx, ny, _ = shape
    return di + nx * (dj + ny * dk)


def _axes_grids(shape: Tuple[int, int, int], fastest_axis: int, lo: int, hi_margin: int):
    """Index grids with ``fastest_axis`` varying fastest."""
    if fastest_axis not in (0, 1, 2):
        raise ValueError(f"fastest_axis must be 0, 1 or 2, got {fastest_axis}")
    ranges = [np.arange(lo, extent - hi_margin, dtype=np.int64) for extent in shape]
    order = {0: (0, 1, 2), 1: (1, 0, 2), 2: (2, 0, 1)}[fastest_axis]
    mesh = np.meshgrid(*(ranges[axis] for axis in order), indexing="ij")
    # meshgrid 'ij' varies the *last* argument fastest under C-ravel; we
    # want the first listed (the chosen axis), so ravel in Fortran order.
    grids = [m.ravel(order="F") for m in mesh]
    out = [None, None, None]
    for position, axis in enumerate(order):
        out[axis] = grids[position]
    return out


def sweep_points(
    shape: Tuple[int, int, int],
    fastest_axis: int = 0,
    halo: int = 0,
) -> np.ndarray:
    """Flat indices of a full-grid sweep with ``fastest_axis`` innermost.

    ``halo`` excludes that many boundary layers on every face (stencil
    interiors).
    """
    i, j, k = _axes_grids(shape, fastest_axis, halo, halo)
    return flat_index(shape, i, j, k)


def interior_points(shape: Tuple[int, int, int], halo: int = 1) -> np.ndarray:
    """Interior points in natural (axis-0 fastest) order."""
    return sweep_points(shape, fastest_axis=0, halo=halo)


def hyperplane_points(shape: Tuple[int, int, int]) -> np.ndarray:
    """All points ordered by wavefront diagonal (i+j+k ascending).

    Within a diagonal, order follows the natural index order — the SSOR
    pipelined traversal.  Consecutive points in a diagonal are far apart
    in memory, which is what breaks streams in the applu model.
    """
    i, j, k = _axes_grids(shape, 0, 0, 0)
    flat = flat_index(shape, i, j, k)
    diag = i + j + k
    order = np.argsort(diag, kind="stable")
    return flat[order]


def checkerboard_points(shape: Tuple[int, int, int]) -> np.ndarray:
    """All points, even-parity sites first, natural order within a colour."""
    i, j, k = _axes_grids(shape, 0, 0, 0)
    flat = flat_index(shape, i, j, k)
    parity = (i + j + k) & 1
    return np.concatenate([flat[parity == 0], flat[parity == 1]])


def addrs_at(
    base: int,
    points: np.ndarray,
    element_size: int,
    offset_elements: int = 0,
    components: int = 1,
    component: int = 0,
) -> np.ndarray:
    """Byte addresses of ``array[component, point + offset]``.

    ``components`` models Fortran arrays like ``u(5, nx, ny, nz)`` whose
    per-point record holds several doubles; the flat point index is then
    scaled by the record size.
    """
    if components <= 0:
        raise ValueError(f"components must be positive, got {components}")
    if not 0 <= component < components:
        raise ValueError(f"component {component} out of range for {components}")
    record = components * element_size
    return base + (points + offset_elements) * record + component * element_size
