"""Models of the seven PERFECT benchmarks used in the paper.

The PERFECT codes in Table 1 have small data sets and tiny miss rates;
the paper compensated with full multi-billion-instruction runs.  We
cannot afford billion-access traces, so these models keep each code's
*miss-stream structure* while sizing arrays a few multiples of the 64KB
primary cache so that a sub-million-access trace yields a statistically
useful miss population (documented substitution; see DESIGN.md).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.trace.events import AccessKind, Trace
from repro.trace.stream import blocked_interleave
from repro.workloads.base import BenchmarkInfo, Workload, register
from repro.workloads.grids import checkerboard_points
from repro.workloads.kernels import (
    ascending,
    clustered_indices,
    gather_addresses,
    loop,
    random_indices,
    read,
    runs_at,
    strided,
    write,
)

__all__ = ["Spec77", "Adm", "Bdna", "Dyfesm", "Mdg", "Qcd", "Trfd"]

_DOUBLE = 8
_COMPLEX = 16


@register
class Spec77(Workload):
    """Weather simulation (spectral model).

    Structure: dominated by long vector operations over the spectral
    coefficient and grid arrays plus FFT passes along the
    fastest-varying dimension, with a modest strided residue from the
    Legendre transform's latitude-major passes.  Streams do well (long
    streams dominate: Table 3 gives 64% of hits from lengths > 20).
    """

    info = BenchmarkInfo(
        name="spec77",
        suite="PERFECT",
        description="Weather simulation",
        paper_input="64 X 1 X 16 grid, 720 time steps",
        paper_data_mb=1.3,
        paper_miss_rate_pct=0.50,
        paper_mpi_pct=0.15,
    )

    VECTOR_ELEMENTS = 40960  # 320KB per field array
    STEPS = 3

    def build(self) -> Trace:
        n = self.dim(self.VECTOR_ELEMENTS, minimum=4096)
        vort = self.arena.alloc_words("vort", n)
        div = self.arena.alloc_words("div", n)
        temp = self.arena.alloc_words("temp", n)
        work = self.arena.alloc_words("work", n)
        # Legendre pass geometry: latitudes x wavenumbers.
        lats = 128
        waves = n // lats
        phases: List[Trace] = []
        for _ in range(self.STEPS):
            phases.append(
                loop(
                    [
                        read(ascending(vort.base, n)),
                        read(ascending(div.base, n)),
                        write(ascending(temp.base, n)),
                    ]
                )
            )
            phases.append(
                loop(
                    [
                        read(ascending(temp.base, n)),
                        write(ascending(work.base, n)),
                    ]
                )
            )
            # Legendre transform: wavenumber-major pass -> stride `waves`
            # elements through a latitude-major array.
            stride_bytes = waves * _DOUBLE
            strided_col = np.concatenate(
                [strided(work.base + w * _DOUBLE, lats, stride_bytes) for w in range(0, waves, 8)]
            )
            phases.append(loop([read(strided_col)]))
            # Physics residue: grid-point parameterisations index lookup
            # tables semi-randomly (a small irregular fraction).
            phases.append(
                loop(
                    [
                        read(gather_addresses(vort.base, random_indices(3000, n, self.rng))),
                        write(gather_addresses(div.base, random_indices(3000, n, self.rng))),
                    ]
                )
            )
        return Trace.concat(phases)


@register
class Adm(Workload):
    """Air pollution model (ADM).

    Structure: the paper singles adm out (with dyfesm) for referencing
    data "via array indirections (scatter/gather)"; its miss stream is
    dominated by irregular gathers with only thin unit-stride phases, so
    stream hit rates stay low regardless of stream count (Figure 3's
    bottom curve).
    """

    info = BenchmarkInfo(
        name="adm",
        suite="PERFECT",
        description="Air pollution",
        paper_input="",
        paper_data_mb=0.6,
        paper_miss_rate_pct=0.04,
        paper_mpi_pct=0.00,
    )

    FIELD_ELEMENTS = 131072  # 1MB concentration field
    STEPS = 3

    def build(self) -> Trace:
        n = self.dim(self.FIELD_ELEMENTS, minimum=8192)
        conc = self.arena.alloc_words("conc", n)
        wind = self.arena.alloc_words("wind", n)
        work = self.arena.alloc_words("work", n // 8)
        phases: List[Trace] = []
        for _ in range(self.STEPS):
            # Semi-Lagrangian advection: isolated gathers from departure
            # points (no prefetcher can help these).
            departures = random_indices(n // 6, n, self.rng)
            phases.append(
                loop(
                    [
                        read(gather_addresses(conc.base, departures)),
                        write(
                            gather_addresses(
                                wind.base, random_indices(n // 6, n, self.rng)
                            )
                        ),
                    ]
                )
            )
            # Vertical-column chemistry: each column is a short contiguous
            # run at a scattered position — the few hits adm does get come
            # from these, which is why Table 3 shows them all short.
            column_starts = gather_addresses(
                conc.base,
                random_indices(6000, n - 32, self.rng),
            )
            phases.append(
                blocked_interleave(
                    [
                        Trace.uniform(runs_at(column_starts, 24), AccessKind.READ),
                        Trace.uniform(
                            runs_at(
                                gather_addresses(
                                    wind.base, random_indices(6000, n - 32, self.rng)
                                ),
                                8,
                            ),
                            AccessKind.WRITE,
                        ),
                    ],
                    granule=24,
                )
            )
            phases.append(
                loop(
                    [
                        read(ascending(work.base, n // 8)),
                        write(ascending(work.base, n // 8)),
                    ]
                )
            )
        return Trace.concat(phases)


@register
class Bdna(Workload):
    """Nucleic acid simulation (molecular dynamics).

    Structure: force evaluation walks sorted neighbour lists — for each
    atom a handful of *contiguous* neighbour coordinates are read (a
    run of a few cache blocks) before jumping to the next cluster.
    Plenty of stream hits, but almost all from very short streams
    (Table 3: 73% of bdna's hits come from lengths 1-5).
    """

    info = BenchmarkInfo(
        name="bdna",
        suite="PERFECT",
        description="Nucleic acid simulation",
        paper_input="",
        paper_data_mb=2.1,
        paper_miss_rate_pct=1.39,
        paper_mpi_pct=0.42,
    )

    ATOMS = 87040  # ~2.1MB across three coordinate/force arrays
    NEIGHBOR_RUN = 24  # contiguous neighbours read per cluster (3 blocks)
    CLUSTERS_PER_STEP = 16000
    INTEGRATION_FRACTION = 2  # integrate over ATOMS // this per step
    STEPS = 2

    def build(self) -> Trace:
        n = self.dim(self.ATOMS, minimum=8192)
        x = self.arena.alloc_words("x", n)
        f = self.arena.alloc_words("f", n)
        v = self.arena.alloc_words("v", n)
        phases: List[Trace] = []
        for _ in range(self.STEPS):
            starts = gather_addresses(
                x.base,
                clustered_indices(self.CLUSTERS_PER_STEP, n - self.NEIGHBOR_RUN, 4096, self.rng),
            )
            neighbour_reads = runs_at(starts, self.NEIGHBOR_RUN)
            force_writes = runs_at(
                gather_addresses(
                    f.base,
                    clustered_indices(
                        self.CLUSTERS_PER_STEP, n - self.NEIGHBOR_RUN, 4096, self.rng
                    ),
                ),
                self.NEIGHBOR_RUN // 4,
            )
            phases.append(
                blocked_interleave(
                    [
                        Trace.uniform(neighbour_reads, AccessKind.READ),
                        Trace.uniform(force_writes, AccessKind.WRITE),
                    ],
                    granule=self.NEIGHBOR_RUN,
                )
            )
            # Integration: one long unit sweep (the >20 tail of Table 3).
            part = n // self.INTEGRATION_FRACTION
            phases.append(
                loop(
                    [
                        read(ascending(f.base, part)),
                        read(ascending(v.base, part)),
                        write(ascending(x.base, part)),
                    ]
                )
            )
        return Trace.concat(phases)


@register
class Dyfesm(Workload):
    """Structural dynamics finite-element solver.

    Structure: element-level gather/scatter through connectivity tables
    (eight nodes per element at effectively random positions), the
    paper's other indirection-bound code — low hit rates like adm.
    """

    info = BenchmarkInfo(
        name="dyfesm",
        suite="PERFECT",
        description="Structural dynamics",
        paper_input="4 elements, 1000 time steps",
        paper_data_mb=0.1,
        paper_miss_rate_pct=0.01,
        paper_mpi_pct=0.00,
    )

    NODES = 65536  # 512KB nodal array: several cache multiples
    ELEMENTS = 14000
    STEPS = 2

    def build(self) -> Trace:
        n = self.dim(self.NODES, minimum=8192)
        coords = self.arena.alloc_words("coords", n)
        forces = self.arena.alloc_words("forces", n)
        disp = self.arena.alloc_words("disp", n)
        phases: List[Trace] = []
        for _ in range(self.STEPS):
            # Element assembly: each element gathers a node neighbourhood.
            # Nodes of one element are partially contiguous (mesh-ordered),
            # so each gather is a short run at a scattered position — the
            # short-stream hits of Table 3; the connectivity indirection
            # itself is the irregular majority.
            phases.append(
                blocked_interleave(
                    [
                        Trace.uniform(
                            runs_at(
                                gather_addresses(
                                    coords.base,
                                    random_indices(self.ELEMENTS, n - 32, self.rng),
                                ),
                                16,
                            ),
                            AccessKind.READ,
                        ),
                        Trace.uniform(
                            gather_addresses(
                                forces.base,
                                random_indices(2 * self.ELEMENTS, n, self.rng),
                            ),
                            AccessKind.WRITE,
                        ),
                    ],
                    granule=16,
                )
            )
            # Scatter-add of element forces: isolated writes.
            phases.append(
                loop(
                    [
                        read(gather_addresses(disp.base, random_indices(self.ELEMENTS, n, self.rng))),
                        write(gather_addresses(forces.base, random_indices(self.ELEMENTS, n, self.rng))),
                    ]
                )
            )
            # A modest regular solver phase (the >20 tail).
            phases.append(
                loop(
                    [
                        read(ascending(forces.base, n // 3)),
                        write(ascending(disp.base, n // 3)),
                    ]
                )
            )
        return Trace.concat(phases)


@register
class Mdg(Workload):
    """Liquid water molecular dynamics (MDG).

    Structure: an even mix of long unit-stride integration sweeps over
    the coordinate/velocity/force arrays and irregular pair-interaction
    gathers — Table 3 shows the split personality (32% of hits from
    lengths 1-5, 46% from >20) and Figure 3 puts mdg near 50%.
    """

    info = BenchmarkInfo(
        name="mdg",
        suite="PERFECT",
        description="Liquid water simulation",
        paper_input="343 molecules, 100 time steps",
        paper_data_mb=0.2,
        paper_miss_rate_pct=0.03,
        paper_mpi_pct=0.01,
    )

    SITES = 49152  # 3 arrays x 384KB total
    PAIRS_PER_STEP = 12000
    PAIR_CLUSTER = 1024  # neighbour-list locality (elements)
    STEPS = 2

    def build(self) -> Trace:
        n = self.dim(self.SITES, minimum=8192)
        x = self.arena.alloc_words("x", n)
        v = self.arena.alloc_words("v", n)
        f = self.arena.alloc_words("f", n)
        phases: List[Trace] = []
        for _ in range(self.STEPS):
            # Pair interactions: the sorted neighbour list makes each
            # molecule's partner coordinates a short contiguous run at a
            # scattered position (Table 3's 1-5 bucket); the partner
            # *force* updates are isolated scatters.
            run_starts = gather_addresses(
                x.base, random_indices(7000, n - 32, self.rng)
            )
            phases.append(
                blocked_interleave(
                    [
                        Trace.uniform(runs_at(run_starts, 24), AccessKind.READ),
                        Trace.uniform(
                            gather_addresses(
                                f.base, random_indices(14000, n, self.rng)
                            ),
                            AccessKind.WRITE,
                        ),
                    ],
                    granule=24,
                )
            )
            phases.append(
                loop(
                    [
                        read(gather_addresses(x.base, random_indices(self.PAIRS_PER_STEP, n, self.rng))),
                        write(gather_addresses(f.base, random_indices(self.PAIRS_PER_STEP, n, self.rng))),
                    ]
                )
            )
            # Integration: the long-stream half of Table 3's split.
            phases.append(
                loop(
                    [
                        read(ascending(f.base, n)),
                        read(ascending(v.base, n)),
                        write(ascending(x.base, n)),
                        write(ascending(v.base, n)),
                    ]
                )
            )
        return Trace.concat(phases)


@register
class Qcd(Workload):
    """Quantum chromodynamics on a 4-D lattice.

    Structure: SU(3) link matrices are 144-byte records (just over two
    cache blocks); the gauge update walks sites in red/black
    (checkerboard) order, so consecutive records are 288 bytes apart —
    short two-to-three-block runs with a misaligned effective stride —
    while the momentum/field updates sweep linearly.  Table 3's mix
    (50% of hits from lengths 1-5, 43% from >20) and a ~50% hit rate.
    """

    info = BenchmarkInfo(
        name="qcd",
        suite="PERFECT",
        description="Quantum chromodynamics",
        paper_input="12 X 12 X 12 X 12 lattice",
        paper_data_mb=9.2,
        paper_miss_rate_pct=0.16,
        paper_mpi_pct=0.06,
    )

    BASE_L = 8  # paper runs 12^4; downsized to keep traces tractable
    LINK_DOUBLES = 18  # 3x3 complex = 144B
    STEPS = 1

    def build(self) -> Trace:
        lattice = self.dim(self.BASE_L, minimum=4)
        shape = (lattice, lattice, lattice * lattice)  # fold t into z
        n_sites = lattice**4
        record = self.LINK_DOUBLES * _DOUBLE
        links = [
            self.arena.alloc("links%d" % mu, n_sites * record) for mu in range(4)
        ]
        mom = self.arena.alloc("mom", n_sites * record)
        # Gauge-field random table (heat-bath updates read it per site).
        rand_elements = 131072
        rand_table = self.arena.alloc_words("rand", rand_elements)
        phases: List[Trace] = []
        sites = checkerboard_points(shape)
        # Staple neighbours: the nu-direction hop cycles per site, so the
        # neighbour-link reads never settle into one constant pattern.
        hop_choices = np.array(
            [1, -1, lattice, -lattice, lattice * lattice, -(lattice * lattice)],
            dtype=np.int64,
        )
        for _ in range(self.STEPS):
            for mu in range(1):
                hops = hop_choices[np.arange(sites.shape[0]) % hop_choices.shape[0]]
                neighbour_sites = np.clip(sites + hops, 0, n_sites - 1)
                columns = [
                    Trace.uniform(
                        runs_at(links[mu].base + sites * record, self.LINK_DOUBLES),
                        AccessKind.READ,
                    ),
                    Trace.uniform(
                        runs_at(
                            links[(mu + 1) % 4].base + neighbour_sites * record,
                            self.LINK_DOUBLES,
                        ),
                        AccessKind.READ,
                    ),
                    Trace.uniform(
                        runs_at(mom.base + sites * record, self.LINK_DOUBLES),
                        AccessKind.WRITE,
                    ),
                    Trace.uniform(
                        gather_addresses(
                            rand_table.base,
                            random_indices(6 * sites.shape[0], rand_elements, self.rng),
                        ),
                        AccessKind.READ,
                    ),
                ]
                phases.append(blocked_interleave(columns, granule=self.LINK_DOUBLES))
            # Field refresh: linear sweeps (the >20 half of Table 3's mix).
            refresh = n_sites * self.LINK_DOUBLES
            phases.append(
                loop(
                    [
                        read(ascending(mom.base, refresh)),
                        write(ascending(links[3].base, refresh)),
                    ]
                )
            )
        return Trace.concat(phases)


@register
class Trfd(Workload):
    """Two-electron integral transformation (quantum mechanics).

    Structure: passes over a packed triangular integral matrix — row
    walks are long unit streams, but the transform also walks *columns*
    of the packed triangle, where the address delta grows by one element
    per step (no constant stride exists: these misses defeat both the
    unit streams and any stride detector and, unfiltered, each one
    allocates a useless stream — the paper's worst EB, 96%).  A
    matrix-transform phase contributes genuine constant large strides
    that the czone scheme recovers (50% -> 65%, Figure 8).
    """

    info = BenchmarkInfo(
        name="trfd",
        suite="PERFECT",
        description="Quantum mechanics (integral transformation)",
        paper_input="",
        paper_data_mb=8.0,
        paper_miss_rate_pct=0.05,
        paper_mpi_pct=0.00,
    )

    BASIS = 40
    ROW_PASSES = 220
    COL_PASSES = 40
    TRI_COL_PASSES = 80
    TRI_WALK_FACTOR = 10  # triangle-column walk length = basis * this

    def build(self) -> Trace:
        m = self.dim(self.BASIS, minimum=12)
        npair = m * (m + 1) // 2
        # Leading dimension padded to a whole number of cache blocks, so
        # column walks have a block-aligned constant stride (the matrix is
        # allocated with a padded LDA, standard practice in BLAS-era code).
        lda = (npair + 7) & ~7
        xmat = self.arena.alloc_words("xmat", lda * npair)
        vmat = self.arena.alloc_words("vmat", lda * npair)
        row_bytes = lda * _DOUBLE
        phases: List[Trace] = []

        # Phase A: row-major transform passes (long unit streams).
        rows = self.rng.integers(0, npair, size=self.ROW_PASSES)
        for row in rows:
            phases.append(
                loop(
                    [
                        read(ascending(xmat.base + int(row) * row_bytes, npair)),
                        write(ascending(vmat.base + int(row) * row_bytes, npair)),
                    ]
                )
            )
        # Phase B: column-major passes (constant stride = one row).
        cols = self.rng.integers(0, npair, size=self.COL_PASSES)
        for col in cols:
            phases.append(
                loop([read(strided(xmat.base + int(col) * _DOUBLE, npair // 2, row_bytes))])
            )
        # Phase C: packed-triangle column walks (growing stride, no
        # pattern any hardware scheme can lock onto).  Each pass works a
        # different region of the matrix, as the transform's kl loop does.
        walk = m * self.TRI_WALK_FACTOR
        max_span = walk * (walk + 1) // 2 + walk
        total_elements = lda * npair
        for col in range(self.TRI_COL_PASSES):
            region = int(self.rng.integers(0, max(1, total_elements - max_span)))
            i = np.arange(col % m, walk, dtype=np.int64)
            tri_offsets = region + i * (i + 1) // 2 + col
            tri_offsets = tri_offsets[tri_offsets < total_elements]
            phases.append(loop([read(gather_addresses(vmat.base, tri_offsets))]))
        return Trace.concat(phases)
