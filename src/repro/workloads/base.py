"""Workload model framework.

A :class:`Workload` is a deterministic generator of an address trace that
models one of the paper's fifteen benchmarks (or a microbenchmark).  Since
the original Shade traces of the NAS/PERFECT Fortran codes are not
obtainable, each model reproduces its benchmark's dominant loop-nest
access structure — the property every stream-buffer result in the paper
depends on (see DESIGN.md Section 2 for the substitution argument).

Models register themselves under their paper name via :func:`register`;
:func:`get_workload` instantiates by name, with a ``scale`` knob that
multiplies linear grid/array dimensions (used for the Table 4 scaling
study).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

import numpy as np

from repro.mem.allocator import Arena
from repro.trace.events import Trace

__all__ = [
    "BenchmarkInfo",
    "Workload",
    "register",
    "get_workload",
    "workload_names",
    "workload_class",
    "all_benchmarks",
]


@dataclass(frozen=True)
class BenchmarkInfo:
    """Paper-facing metadata for a benchmark model (Table 1 columns).

    Attributes:
        name: the paper's benchmark name (lower case).
        suite: ``"NAS"`` or ``"PERFECT"`` (or ``"micro"``).
        description: the paper's one-line description.
        paper_input: the input deck reported in Table 1 (empty if none).
        paper_data_mb: data-set size in MB from Table 1 (0 if absent).
        paper_miss_rate_pct: Table 1's L1 data miss rate, percent.
        paper_mpi_pct: Table 1's misses-per-instruction, percent.
    """

    name: str
    suite: str
    description: str
    paper_input: str = ""
    paper_data_mb: float = 0.0
    paper_miss_rate_pct: float = 0.0
    paper_mpi_pct: float = 0.0


class Workload(abc.ABC):
    """Base class for benchmark models.

    Subclasses set :attr:`info` and implement :meth:`build`, allocating
    their arrays from :attr:`arena` and composing the trace from
    :mod:`repro.workloads.kernels` primitives.

    Args:
        scale: multiplier on linear dimensions (1.0 = the paper's small
            input; 2.0 = the Table 4 doubled input).
        seed: RNG seed; models are deterministic given (scale, seed).
    """

    info: BenchmarkInfo

    def __init__(self, scale: float = 1.0, seed: int = 0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.arena = Arena()
        self._trace: Optional[Trace] = None

    @property
    def name(self) -> str:
        return self.info.name

    def dim(self, base: int, minimum: int = 1) -> int:
        """A linear dimension scaled by ``self.scale``."""
        return max(minimum, int(round(base * self.scale)))

    @abc.abstractmethod
    def build(self) -> Trace:
        """Generate the address trace (called once; see :meth:`trace`)."""

    def trace(self) -> Trace:
        """The model's trace, built on first use and cached."""
        if self._trace is None:
            self._trace = self.build()
        return self._trace

    @property
    def data_set_bytes(self) -> int:
        """Bytes of data allocated by the model (after the trace is built)."""
        self.trace()
        return self.arena.total_bytes

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} scale={self.scale}>"


_REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator: add a workload model to the global registry.

    Raises:
        ValueError: on duplicate names or a missing ``info`` attribute.
    """
    info = getattr(cls, "info", None)
    if not isinstance(info, BenchmarkInfo):
        raise ValueError(f"{cls.__name__} must define an `info: BenchmarkInfo` attribute")
    if info.name in _REGISTRY:
        raise ValueError(f"workload {info.name!r} already registered")
    _REGISTRY[info.name] = cls
    return cls


def workload_names(suite: Optional[str] = None) -> List[str]:
    """Registered workload names, optionally restricted to one suite."""
    names = [
        name
        for name, cls in _REGISTRY.items()
        if suite is None or cls.info.suite == suite
    ]
    return sorted(names)


def workload_class(name: str) -> Type[Workload]:
    """Look up a registered model class.

    Raises:
        KeyError: with the list of known names, for an unknown workload.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def get_workload(name: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Instantiate a registered workload model."""
    return workload_class(name)(scale=scale, seed=seed)


def all_benchmarks() -> List[BenchmarkInfo]:
    """Metadata for every registered benchmark, NAS first then PERFECT,
    in the paper's Table 1 order where applicable."""
    ordered = sorted(
        _REGISTRY.values(),
        key=lambda cls: (
            {"NAS": 0, "PERFECT": 1}.get(cls.info.suite, 2),
            cls.info.name,
        ),
    )
    return [cls.info for cls in ordered]
