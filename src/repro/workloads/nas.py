"""Models of the eight NAS benchmarks used in the paper.

Each model reproduces its benchmark's dominant loop-nest access structure
(see each class docstring for the structural argument); the constants at
class level are calibrated so the scale-1 models land in the paper's
qualitative bands for Figures 3/5/8 and Tables 2/3 (EXPERIMENTS.md records
the measured values).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.trace.events import AccessKind, Trace
from repro.trace.stream import blocked_interleave
from repro.workloads.base import BenchmarkInfo, Workload, register
from repro.workloads.grids import addrs_at, hyperplane_points, sweep_points
from repro.workloads.kernels import (
    ascending,
    clustered_indices,
    gather_addresses,
    loop,
    random_indices,
    read,
    runs_at,
    strided,
    write,
)

__all__ = ["Embar", "Mgrid", "Cgm", "Fftpde", "Buk", "Appsp", "Appbt", "Applu"]

_DOUBLE = 8
_COMPLEX = 16


@register
class Embar(Workload):
    """EP (embarrassingly parallel): batches of pseudo-random pair work.

    Structure: the kernel fills a large table of uniform randoms
    (sequential writes) and then consumes them in pairs (sequential
    reads); the Gaussian tallies live in a ten-element array that never
    leaves the primary cache.  The miss stream is essentially one long
    unit-stride walk — the paper's best case (~99% of hits come from
    streams longer than 20).
    """

    info = BenchmarkInfo(
        name="embar",
        suite="NAS",
        description="Embarrassingly parallel",
        paper_input="2^16-number batches",
        paper_data_mb=1.0,
        paper_miss_rate_pct=0.28,
        paper_mpi_pct=0.10,
    )

    BATCH_ELEMENTS = 65536
    BATCHES = 3

    def build(self) -> Trace:
        n = self.dim(self.BATCH_ELEMENTS, minimum=1024)
        x = self.arena.alloc_words("x", n)
        q = self.arena.alloc_words("q", 16)
        phases: List[Trace] = []
        tally = gather_addresses(q.base, self.rng.integers(0, 10, size=n // 2))
        for _ in range(self.BATCHES):
            phases.append(loop([write(ascending(x.base, n))]))
            pair_reads = ascending(x.base, n)
            phases.append(
                loop(
                    [
                        read(pair_reads[0::2]),
                        read(pair_reads[1::2]),
                        write(tally),
                    ]
                )
            )
        return Trace.concat(phases)


@register
class Mgrid(Workload):
    """MG: V-cycles of stencil smoothing, restriction and interpolation.

    Structure: every phase sweeps a 3-D grid in natural order touching a
    handful of neighbour offsets — at block granularity these are a few
    parallel unit-stride walks per array, including the stride-two
    element walks of restriction (still unit in blocks).  High hit rate,
    long streams.
    """

    info = BenchmarkInfo(
        name="mgrid",
        suite="NAS",
        description="Multigrid kernel",
        paper_input="32 X 32 X 32 grid",
        paper_data_mb=1.0,
        paper_miss_rate_pct=0.84,
        paper_mpi_pct=0.08,
    )

    BASE_N = 32
    CYCLES = 2
    MIN_LEVEL = 8

    def build(self) -> Trace:
        n = self.dim(self.BASE_N, minimum=self.MIN_LEVEL)
        levels = []
        size = n
        while size >= self.MIN_LEVEL:
            levels.append(size)
            size //= 2
        grids = {}
        for size in levels:
            grids[size] = {
                name: self.arena.alloc_words(f"{name}{size}", size**3)
                for name in ("u", "v", "r", "c")
            }
        phases: List[Trace] = []
        for _ in range(self.CYCLES):
            if len(levels) == 1:
                # Degenerate single-level "V-cycle": smooth only.
                phases.append(self._resid(grids[levels[0]], levels[0]))
                phases.append(self._smooth(grids[levels[0]], levels[0]))
                continue
            # Downward leg: residual + restriction at each level.
            for fine, coarse in zip(levels, levels[1:]):
                phases.append(self._resid(grids[fine], fine))
                phases.append(self._restrict(grids[fine], fine, grids[coarse], coarse))
            # Upward leg: interpolation + smoothing.
            for coarse, fine in zip(reversed(levels[1:]), reversed(levels[:-1])):
                phases.append(self._interp(grids[coarse], coarse, grids[fine], fine))
                phases.append(self._smooth(grids[fine], fine))
        return Trace.concat(phases)

    def _resid(self, grid, n: int) -> Trace:
        shape = (n, n, n)
        points = sweep_points(shape, fastest_axis=0, halo=1)
        u, v, r = grid["u"].base, grid["v"].base, grid["r"].base
        columns = [
            read(addrs_at(u, points, _DOUBLE, offset_elements=-1)),
            read(addrs_at(u, points, _DOUBLE)),
            read(addrs_at(u, points, _DOUBLE, offset_elements=+1)),
            read(addrs_at(u, points, _DOUBLE, offset_elements=-n)),
            read(addrs_at(u, points, _DOUBLE, offset_elements=+n)),
            read(addrs_at(u, points, _DOUBLE, offset_elements=-n * n)),
            read(addrs_at(u, points, _DOUBLE, offset_elements=+n * n)),
            read(addrs_at(v, points, _DOUBLE)),
            read(addrs_at(grid["c"].base, points, _DOUBLE)),
            write(addrs_at(r, points, _DOUBLE)),
        ]
        return loop(columns)

    def _smooth(self, grid, n: int) -> Trace:
        shape = (n, n, n)
        points = sweep_points(shape, fastest_axis=0, halo=1)
        u, r = grid["u"].base, grid["r"].base
        columns = [
            read(addrs_at(r, points, _DOUBLE, offset_elements=-1)),
            read(addrs_at(r, points, _DOUBLE)),
            read(addrs_at(r, points, _DOUBLE, offset_elements=+1)),
            read(addrs_at(r, points, _DOUBLE, offset_elements=-n * n)),
            read(addrs_at(r, points, _DOUBLE, offset_elements=+n * n)),
            read(addrs_at(grid["c"].base, points, _DOUBLE)),
            write(addrs_at(u, points, _DOUBLE)),
        ]
        return loop(columns)

    def _restrict(self, fine_grid, fine_n: int, coarse_grid, coarse_n: int) -> Trace:
        coarse_points = sweep_points((coarse_n,) * 3, fastest_axis=0, halo=1)
        # Fine-grid source points sit at doubled indices.
        ci = coarse_points % coarse_n
        cj = (coarse_points // coarse_n) % coarse_n
        ck = coarse_points // (coarse_n * coarse_n)
        fine_points = 2 * ci + fine_n * (2 * cj + fine_n * (2 * ck))
        r_f, r_c = fine_grid["r"].base, coarse_grid["r"].base
        columns = [
            read(addrs_at(r_f, fine_points, _DOUBLE)),
            read(addrs_at(r_f, fine_points, _DOUBLE, offset_elements=+1)),
            read(addrs_at(r_f, fine_points, _DOUBLE, offset_elements=+fine_n)),
            write(addrs_at(r_c, coarse_points, _DOUBLE)),
        ]
        return loop(columns)

    def _interp(self, coarse_grid, coarse_n: int, fine_grid, fine_n: int) -> Trace:
        coarse_points = sweep_points((coarse_n,) * 3, fastest_axis=0, halo=1)
        ci = coarse_points % coarse_n
        cj = (coarse_points // coarse_n) % coarse_n
        ck = coarse_points // (coarse_n * coarse_n)
        fine_points = 2 * ci + fine_n * (2 * cj + fine_n * (2 * ck))
        u_c, u_f = coarse_grid["u"].base, fine_grid["u"].base
        columns = [
            read(addrs_at(u_c, coarse_points, _DOUBLE)),
            write(addrs_at(u_f, fine_points, _DOUBLE)),
            write(addrs_at(u_f, fine_points, _DOUBLE, offset_elements=+1)),
        ]
        return loop(columns)


@register
class Cgm(Workload):
    """CG: conjugate gradient with a banded random sparse matrix.

    Structure: the sparse matrix-vector product streams through the CSR
    value and column-index arrays (long unit strides) while gathering
    from the dense vector ``x`` via array indirection; the CG vector
    updates are pure unit sweeps.  At the paper's small input the 11KB
    ``x`` stays primary-cache resident so the gathers rarely miss —
    which is why cgm streams well despite being "sparse".  The Table 4
    scaling makes the matrix sparser and ``x`` larger/irregular, the
    paper's noted anomaly.
    """

    info = BenchmarkInfo(
        name="cgm",
        suite="NAS",
        description="Smallest eigenvalue of a sparse matrix",
        paper_input="1400 X 1400 matrix, 78148 non-zeros",
        paper_data_mb=2.9,
        paper_miss_rate_pct=3.33,
        paper_mpi_pct=1.43,
    )

    BASE_N = 1400
    BASE_NNZ_PER_ROW = 56
    ITERATIONS = 3

    def build(self) -> Trace:
        # The paper's scaled input grows n 4x but non-zeros only ~1.26x:
        # n scales quadratically with the linear knob, density drops.
        n = max(64, int(round(self.BASE_N * self.scale**2)))
        nnz_per_row = max(4, int(round(self.BASE_NNZ_PER_ROW / self.scale**1.7)))
        nnz = n * nnz_per_row
        # The paper's larger cgm input had "a very irregular distribution
        # of elements" (Section 8): the band widens superlinearly with the
        # problem, until the gathers are effectively uniform.
        band = min(n, max(16, int((n // 4) * self.scale**3)))

        aval = self.arena.alloc_words("aval", nnz)
        colidx = self.arena.alloc_words("colidx", nnz)
        xvec = self.arena.alloc_words("x", n)
        yvec = self.arena.alloc_words("y", n)
        pvec = self.arena.alloc_words("p", n)
        rvec = self.arena.alloc_words("r", n)

        rows = np.repeat(np.arange(n, dtype=np.int64), nnz_per_row)
        spread = self.rng.integers(-band, band + 1, size=nnz)
        cols = np.clip(rows + spread, 0, n - 1)

        phases: List[Trace] = []
        for _ in range(self.ITERATIONS):
            phases.append(
                loop(
                    [
                        read(ascending(colidx.base, nnz)),
                        read(ascending(aval.base, nnz)),
                        read(gather_addresses(xvec.base, cols)),
                    ]
                )
            )
            phases.append(loop([write(ascending(yvec.base, n))]))
            phases.append(
                loop(
                    [
                        read(ascending(yvec.base, n)),
                        read(ascending(pvec.base, n)),
                        write(ascending(rvec.base, n)),
                    ]
                )
            )
            phases.append(
                loop(
                    [
                        read(ascending(rvec.base, n)),
                        write(ascending(xvec.base, n)),
                    ]
                )
            )
        return Trace.concat(phases)


@register
class Fftpde(Workload):
    """FT: 3-D PDE solver via FFTs on a 64^3 complex grid.

    Structure: the dimension-1 FFTs walk lines contiguously (unit
    stride), but dimension-2 and dimension-3 FFTs walk with constant
    strides of nx and nx*ny complex elements (1KB and 64KB here) — the
    paper's canonical non-unit stride case (unit-only hit rate ~26%,
    ~71% with the czone detector, Figure 9's czone band 16-23 bits).  A
    bit-reversal reorder adds the irregular residue.
    """

    info = BenchmarkInfo(
        name="fftpde",
        suite="NAS",
        description="3-D PDE solver using FFT",
        paper_input="64 X 64 X 64 complex array",
        paper_data_mb=14.7,
        paper_miss_rate_pct=3.08,
        paper_mpi_pct=0.50,
    )

    BASE_N = 64

    def build(self) -> Trace:
        n = self.dim(self.BASE_N, minimum=16)
        shape = (n, n, n)
        u = self.arena.alloc("u", n**3 * _COMPLEX)
        w = self.arena.alloc("w", n**3 * _COMPLEX)
        phases: List[Trace] = []

        # Evolve: u -> w, both unit stride.
        points0 = sweep_points(shape, fastest_axis=0)
        phases.append(
            loop(
                [
                    read(addrs_at(u.base, points0, _COMPLEX)),
                    write(addrs_at(w.base, points0, _COMPLEX)),
                ]
            )
        )
        # Dimension-1 FFT pass: butterflies within each contiguous 1KB
        # line (w -> u).  Each line is two parallel half-line walks, so
        # the streams it feeds are short (about half a line long) — the
        # source of fftpde's short-stream hits in Table 3.
        half = n // 2
        line_starts = w.base + np.arange(n * n, dtype=np.int64) * (n * _COMPLEX)
        out_starts = u.base + np.arange(n * n, dtype=np.int64) * (n * _COMPLEX)
        offs_lo = np.arange(half, dtype=np.int64) * _COMPLEX
        offs_hi = offs_lo + half * _COMPLEX
        phases.append(
            loop(
                [
                    read((line_starts[:, None] + offs_lo[None, :]).ravel()),
                    read((line_starts[:, None] + offs_hi[None, :]).ravel()),
                    write((out_starts[:, None] + offs_lo[None, :]).ravel()),
                    write((out_starts[:, None] + offs_hi[None, :]).ravel()),
                ]
            )
        )
        # Dimension-2 FFT pass: stride nx complex elements (u -> w).
        points1 = sweep_points(shape, fastest_axis=1)
        phases.append(
            loop(
                [
                    read(addrs_at(u.base, points1, _COMPLEX)),
                    write(addrs_at(w.base, points1, _COMPLEX)),
                ]
            )
        )
        # Dimension-3 FFT pass: stride nx*ny complex elements (w -> u).
        points2 = sweep_points(shape, fastest_axis=2)
        phases.append(
            loop(
                [
                    read(addrs_at(w.base, points2, _COMPLEX)),
                    write(addrs_at(u.base, points2, _COMPLEX)),
                ]
            )
        )
        # Bit-reversal reorder of one plane: irregular gather residue.
        plane = n * n
        rev = self._bit_reverse_permutation(plane)
        phases.append(
            loop(
                [
                    read(gather_addresses(u.base, rev, _COMPLEX)),
                    write(
                        addrs_at(
                            w.base, np.arange(rev.shape[0], dtype=np.int64), _COMPLEX
                        )
                    ),
                ]
            )
        )
        return Trace.concat(phases)

    @staticmethod
    def _bit_reverse_permutation(n: int) -> np.ndarray:
        bits = max(1, (n - 1).bit_length())
        indices = np.arange(n, dtype=np.int64)
        reversed_indices = np.zeros_like(indices)
        for bit in range(bits):
            reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
        return reversed_indices[reversed_indices < n]


@register
class Buk(Workload):
    """IS (buk): integer bucket sort.

    Structure: counting passes read the key array sequentially while
    bumping a primary-cache-resident count table; the ranking pass reads
    keys sequentially and writes ranks to positions that are only
    partially ordered — short bursts of spatial locality between jumps.
    The short-burst scatter is why is keeps a decent hit rate yet 41% of
    its hits come from streams shorter than 6 (Table 3), and why the
    unit-stride filter slashes its EB (48% -> 7%) at almost no hit-rate
    cost (Figure 5).
    """

    info = BenchmarkInfo(
        name="buk",
        suite="NAS",
        description="Integer sort",
        paper_input="64K integers, maxkey = 2048",
        paper_data_mb=0.80,
        paper_miss_rate_pct=0.53,
        paper_mpi_pct=0.20,
    )

    BASE_KEYS = 65536
    MAX_KEY = 2048
    ITERATIONS = 2
    SCATTER_CLUSTER = 512  # elements of partial order in rank writes

    def build(self) -> Trace:
        n = self.dim(self.BASE_KEYS, minimum=4096)
        keys = self.arena.alloc_words("keys", n)
        ranks = self.arena.alloc_words("ranks", n)
        counts = self.arena.alloc_words("counts", self.MAX_KEY)
        phases: List[Trace] = []
        for _ in range(self.ITERATIONS):
            bucket_hits = gather_addresses(
                counts.base, random_indices(n, self.MAX_KEY, self.rng)
            )
            phases.append(
                loop(
                    [
                        read(ascending(keys.base, n)),
                        read(bucket_hits),
                        write(bucket_hits),
                    ]
                )
            )
            phases.append(
                loop(
                    [
                        read(ascending(counts.base, self.MAX_KEY)),
                        write(ascending(counts.base, self.MAX_KEY)),
                    ]
                )
            )
            scatter = clustered_indices(n, n, self.SCATTER_CLUSTER, self.rng)
            phases.append(
                loop(
                    [
                        read(ascending(keys.base, n)),
                        write(gather_addresses(ranks.base, scatter)),
                    ]
                )
            )
        return Trace.concat(phases)


@register
class Appsp(Workload):
    """SP: ADI solver sweeping pentadiagonal systems along each axis.

    Structure: per time step, directional sweeps along x, y and z visit
    every cell's five-double record; the x sweep is unit stride but the
    y and z sweeps advance by nx and nx*ny records (960B and 23KB at the
    24^3 input) — large constant strides.  With two of three sweep
    directions non-unit, unit-only streams sit near the paper's 33%,
    and the czone detector recovers the strided majority (Figure 8:
    33% -> 65%; Figure 9: any sufficiently large czone works).
    """

    info = BenchmarkInfo(
        name="appsp",
        suite="NAS",
        description="Fluid dynamics (scalar pentadiagonal)",
        paper_input="24 X 24 X 24 grid",
        paper_data_mb=2.2,
        paper_miss_rate_pct=2.24,
        paper_mpi_pct=0.38,
    )

    BASE_N = 24
    COMPONENTS = 5
    STEPS = 3

    def build(self) -> Trace:
        n = self.dim(self.BASE_N, minimum=8)
        shape = (n, n, n)
        cells = n**3
        u = self.arena.alloc_words("u", cells * self.COMPONENTS)
        rhs = self.arena.alloc_words("rhs", cells * self.COMPONENTS)
        lhs = self.arena.alloc_words("lhs", cells * self.COMPONENTS)
        phases: List[Trace] = []
        for _ in range(self.STEPS):
            for axis in (0, 1, 2):
                points = sweep_points(shape, fastest_axis=axis)
                # The solver works line by line: it loads a whole line of
                # u, then rhs, factorises into lhs, then stores u — so the
                # per-array strided walks interleave at *line* granularity,
                # not per element (this is why the paper finds any
                # sufficiently large czone works for appsp: within a
                # partition the detector sees one walk at a time).
                columns = [
                    Trace.uniform(
                        addrs_at(u.base, points, _DOUBLE, components=self.COMPONENTS),
                        AccessKind.READ,
                    ),
                    Trace.uniform(
                        addrs_at(rhs.base, points, _DOUBLE, components=self.COMPONENTS),
                        AccessKind.READ,
                    ),
                    Trace.uniform(
                        addrs_at(lhs.base, points, _DOUBLE, components=self.COMPONENTS),
                        AccessKind.WRITE,
                    ),
                    Trace.uniform(
                        addrs_at(
                            u.base, points, _DOUBLE, components=self.COMPONENTS, component=1
                        ),
                        AccessKind.WRITE,
                    ),
                ]
                phases.append(blocked_interleave(columns, granule=n))
        return Trace.concat(phases)


@register
class Appbt(Workload):
    """BT: block-tridiagonal solver with 5x5 block matrices.

    Structure: each cell's solve touches a few hundred bytes of block
    matrix (a handful of consecutive cache blocks) and then jumps to the
    next cell — along y and z the jump is a whole row or plane of
    records.  The result is the paper's short-stream benchmark: most
    hits come from streams of length 1-5 (Table 3: 63%), and the
    unit-stride filter costs real hit rate (Figure 5: 65% -> 45%)
    because every short run pays the two-miss detection preamble.
    """

    info = BenchmarkInfo(
        name="appbt",
        suite="NAS",
        description="Fluid dynamics (block tridiagonal)",
        paper_input="18 X 18 X 18 grid, 30 iterations",
        paper_data_mb=4.2,
        paper_miss_rate_pct=1.88,
        paper_mpi_pct=0.45,
    )

    BASE_N = 18
    BLOCK_DOUBLES = 25  # one 5x5 block = 200B = ~3 cache blocks
    STEPS = 2

    def build(self) -> Trace:
        n = self.dim(self.BASE_N, minimum=6)
        shape = (n, n, n)
        cells = n**3
        # Three block-matrix operands plus the rhs vector per cell.
        lhs_a = self.arena.alloc_words("lhs_a", cells * self.BLOCK_DOUBLES)
        lhs_b = self.arena.alloc_words("lhs_b", cells * self.BLOCK_DOUBLES)
        lhs_c = self.arena.alloc_words("lhs_c", cells * self.BLOCK_DOUBLES)
        rhs = self.arena.alloc_words("rhs", cells * 5)
        record = self.BLOCK_DOUBLES * _DOUBLE
        phases: List[Trace] = []
        for _ in range(self.STEPS):
            for axis in (0, 1, 2):
                points = sweep_points(shape, fastest_axis=axis)
                block_cols = []
                for array in (lhs_a, lhs_b, lhs_c):
                    starts = array.base + points * record
                    block_cols.append(
                        (runs_at(starts, self.BLOCK_DOUBLES), AccessKind.READ)
                    )
                rhs_col = (
                    runs_at(rhs.base + points * 5 * _DOUBLE, 5),
                    AccessKind.WRITE,
                )
                phases.append(
                    blocked_interleave(
                        [Trace.uniform(a, k) for a, k in block_cols]
                        + [Trace.uniform(rhs_col[0], rhs_col[1])],
                        granule=self.BLOCK_DOUBLES,
                    )
                )
        return Trace.concat(phases)


@register
class Applu(Workload):
    """LU: SSOR solver with wavefront (hyperplane) traversal.

    Structure: the lower/upper triangular solves traverse the grid along
    i+j+k = const wavefronts, so consecutively touched cell records are
    a row or plane apart — streams fragment into short runs — while the
    RHS/Jacobian phases sweep the grid in natural order (long unit
    streams).  The mix lands between appbt and mgrid, and growing the
    grid lengthens the natural-order runs, reproducing Table 4's hit
    rate rise (62% at 12^3 -> 73% at 24^3).
    """

    info = BenchmarkInfo(
        name="applu",
        suite="NAS",
        description="Fluid dynamics (LU / SSOR)",
        paper_input="18 X 18 X 18 grid, 50 iterations",
        paper_data_mb=5.4,
        paper_miss_rate_pct=1.26,
        paper_mpi_pct=0.18,
    )

    BASE_N = 18
    COMPONENTS = 5
    STEPS = 2

    def build(self) -> Trace:
        n = self.dim(self.BASE_N, minimum=6)
        shape = (n, n, n)
        cells = n**3
        u = self.arena.alloc_words("u", cells * self.COMPONENTS)
        rsd = self.arena.alloc_words("rsd", cells * self.COMPONENTS)
        flux = self.arena.alloc_words("flux", cells * self.COMPONENTS)
        record_components = self.COMPONENTS
        phases: List[Trace] = []
        for _ in range(self.STEPS):
            # RHS evaluation: natural-order stencil sweep (long streams).
            points = sweep_points(shape, fastest_axis=0, halo=1)
            phases.append(
                loop(
                    [
                        read(addrs_at(u.base, points, _DOUBLE, components=record_components)),
                        read(
                            addrs_at(
                                u.base,
                                points,
                                _DOUBLE,
                                components=record_components,
                                offset_elements=-n,
                            )
                        ),
                        read(
                            addrs_at(
                                u.base,
                                points,
                                _DOUBLE,
                                components=record_components,
                                offset_elements=-n * n,
                            )
                        ),
                        write(addrs_at(flux.base, points, _DOUBLE, components=record_components)),
                        write(addrs_at(rsd.base, points, _DOUBLE, components=record_components)),
                    ]
                )
            )
            # Jacobian build: natural-order read-modify-write (long streams).
            phases.append(
                loop(
                    [
                        read(addrs_at(rsd.base, points, _DOUBLE, components=record_components)),
                        write(addrs_at(flux.base, points, _DOUBLE, components=record_components, component=1)),
                        write(addrs_at(u.base, points, _DOUBLE, components=record_components, component=2)),
                    ]
                )
            )
            # SSOR sweep: wavefront order fragments the streams.
            wave = hyperplane_points(shape)
            record = record_components * _DOUBLE
            phases.append(
                blocked_interleave(
                    [
                        Trace.uniform(
                            runs_at(rsd.base + wave * record, record_components),
                            AccessKind.READ,
                        ),
                        Trace.uniform(
                            runs_at(u.base + wave * record, record_components),
                            AccessKind.WRITE,
                        ),
                    ],
                    granule=record_components,
                )
            )
        return Trace.concat(phases)
