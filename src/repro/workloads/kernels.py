"""Access-pattern primitives the benchmark models are composed from.

Each primitive builds numpy address arrays (vectorised — workload
generation must not dominate simulation time).  The central assembly
helper is :func:`loop`, which emits one access per *column* per loop
iteration, reproducing the fine-grained interleaving of array references
inside a loop body — the reason multi-way stream buffers exist.

Address arrays are element addresses; callers choose element sizes when
building them.  All primitives are deterministic given their RNG.
"""

from __future__ import annotations

import zlib
from typing import Sequence, Tuple

import numpy as np

from repro.trace.events import AccessKind, Trace

__all__ = [
    "loop",
    "ascending",
    "strided",
    "tiled_runs",
    "runs_at",
    "gather_addresses",
    "clustered_indices",
    "random_indices",
    "triangular_row_walk",
    "butterfly_pairs",
    "read",
    "write",
]

Column = Tuple[np.ndarray, AccessKind]


def read(addrs: np.ndarray) -> Column:
    """Mark an address column as data reads."""
    return (addrs, AccessKind.READ)


def write(addrs: np.ndarray) -> Column:
    """Mark an address column as data writes."""
    return (addrs, AccessKind.WRITE)


def loop(columns: Sequence[Column]) -> Trace:
    """Emit one access from each column per iteration, in column order.

    All columns must have the same length (the loop trip count).  The
    result models ``for i: touch col0[i]; touch col1[i]; ...``.

    Each column is tagged with a synthetic program counter (stable for a
    given loop body, distinct per column) so that PC-indexed baselines —
    the Baer & Chen reference prediction table of the paper's related
    work — can be evaluated against the same traces.  The PC plays the
    role of the load/store instruction issuing that column's accesses.
    """
    if not columns:
        return Trace.empty()
    n = columns[0][0].shape[0]
    for addrs, _ in columns:
        if addrs.shape[0] != n:
            raise ValueError(
                f"all columns must share a trip count; got {addrs.shape[0]} vs {n}"
            )
    k = len(columns)
    out_addrs = np.empty(n * k, dtype=np.int64)
    out_kinds = np.empty(n * k, dtype=np.uint8)
    out_pcs = np.empty(n * k, dtype=np.int64)
    base_pc = _loop_body_pc(columns)
    for j, (addrs, kind) in enumerate(columns):
        out_addrs[j::k] = addrs
        out_kinds[j::k] = int(kind)
        out_pcs[j::k] = base_pc + 4 * j
    return Trace(out_addrs, out_kinds, out_pcs)


def _loop_body_pc(columns: Sequence[Column]) -> int:
    """Deterministic synthetic PC for one loop body.

    Derived from the loop's structure (column count, kinds, starting
    addresses), so the same loop gets the same PC on every run while
    distinct loops get distinct PCs with high probability.
    """
    digest = zlib.crc32(
        b"".join(
            int(addrs[0]).to_bytes(8, "little", signed=True) + bytes([int(kind)])
            for addrs, kind in columns
            if addrs.shape[0]
        )
        + len(columns).to_bytes(2, "little")
    )
    return 0x400000 + (digest & 0xFFFF) * 64


def ascending(base: int, n: int, element_size: int = 8) -> np.ndarray:
    """Element addresses of a unit-stride walk: base, base+es, ..."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return base + np.arange(n, dtype=np.int64) * element_size


def strided(base: int, n: int, stride_bytes: int) -> np.ndarray:
    """Element addresses of a constant-stride walk (stride may be negative)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if stride_bytes == 0:
        raise ValueError("stride_bytes must be non-zero")
    return base + np.arange(n, dtype=np.int64) * stride_bytes


def tiled_runs(
    base: int,
    n_runs: int,
    run_elements: int,
    run_pitch_bytes: int,
    element_size: int = 8,
) -> np.ndarray:
    """Short unit-stride runs separated by jumps.

    Models blocked data structures (5x5 block matrices, SU(3) link
    matrices): ``run_elements`` consecutive elements are walked, then the
    walk jumps ``run_pitch_bytes`` from the run's start to the next run.
    Short runs produce the short stream lengths of Table 3.
    """
    if n_runs < 0 or run_elements <= 0:
        raise ValueError("n_runs must be >= 0 and run_elements positive")
    starts = base + np.arange(n_runs, dtype=np.int64) * run_pitch_bytes
    offsets = np.arange(run_elements, dtype=np.int64) * element_size
    return (starts[:, None] + offsets[None, :]).ravel()


def runs_at(
    starts: np.ndarray,
    run_elements: int,
    element_size: int = 8,
) -> np.ndarray:
    """Unit-stride runs of ``run_elements`` elements at arbitrary starts.

    The general form of :func:`tiled_runs`: ``starts`` are byte addresses
    (e.g. record addresses along a checkerboard site walk); each run walks
    ``run_elements`` consecutive elements from its start.
    """
    if run_elements <= 0:
        raise ValueError(f"run_elements must be positive, got {run_elements}")
    offsets = np.arange(run_elements, dtype=np.int64) * element_size
    return (starts.astype(np.int64)[:, None] + offsets[None, :]).ravel()


def gather_addresses(base: int, indices: np.ndarray, element_size: int = 8) -> np.ndarray:
    """Addresses of ``data[indices[i]]`` (array indirection / scatter-gather)."""
    return base + indices.astype(np.int64) * element_size


def clustered_indices(
    n: int,
    n_elements: int,
    cluster_width: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Indices with spatial clustering (sorted neighbour lists, banded matrices).

    Cluster centres advance through the element range; each index deviates
    from its centre by at most ``cluster_width``/2.  ``cluster_width`` of
    1 degenerates to a sequential walk; large widths approach random.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n_elements <= 0:
        raise ValueError(f"n_elements must be positive, got {n_elements}")
    if cluster_width <= 0:
        raise ValueError(f"cluster_width must be positive, got {cluster_width}")
    centres = np.linspace(0, n_elements - 1, num=max(n, 1), dtype=np.int64)
    jitter = rng.integers(-(cluster_width // 2), cluster_width // 2 + 1, size=n)
    return np.clip(centres + jitter, 0, n_elements - 1)


def random_indices(n: int, n_elements: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random indices (widely scattered array indirections)."""
    if n_elements <= 0:
        raise ValueError(f"n_elements must be positive, got {n_elements}")
    return rng.integers(0, n_elements, size=n, dtype=np.int64)


def triangular_row_walk(base: int, n_rows: int, element_size: int = 8) -> np.ndarray:
    """Walk a packed lower-triangular matrix row by row.

    Row ``i`` holds ``i+1`` elements starting at offset ``i(i+1)/2``; the
    whole walk is one long unit-stride stream (the *column* walk of such a
    matrix, by contrast, has a growing stride — see the trfd model).
    """
    if n_rows < 0:
        raise ValueError(f"n_rows must be non-negative, got {n_rows}")
    total = n_rows * (n_rows + 1) // 2
    return base + np.arange(total, dtype=np.int64) * element_size


def butterfly_pairs(
    base: int,
    n_elements: int,
    stage: int,
    element_size: int = 16,
) -> Tuple[np.ndarray, np.ndarray]:
    """Element address pairs of one radix-2 FFT butterfly stage.

    Stage ``s`` pairs element ``i`` with ``i + 2**s``; the returned arrays
    are the first and second element of each butterfly in loop order.
    """
    if stage < 0:
        raise ValueError(f"stage must be non-negative, got {stage}")
    half = 1 << stage
    if 2 * half > n_elements:
        raise ValueError(
            f"stage {stage} needs at least {2 * half} elements, got {n_elements}"
        )
    span = 2 * half
    n_groups = n_elements // span
    group_starts = np.arange(n_groups, dtype=np.int64) * span
    within = np.arange(half, dtype=np.int64)
    first = (group_starts[:, None] + within[None, :]).ravel()
    second = first + half
    return base + first * element_size, base + second * element_size
