"""Microbenchmarks with analytically known stream behaviour.

These are not paper benchmarks; they pin down the simulator in tests and
serve as teaching examples: a pure unit-stride sweep (hit rate -> 100%), a
pure constant-stride walk (0% unit-only, ~100% with stride detection), a
uniformly random reference stream (~0%), and an interleaved multi-array
sweep whose hit rate depends on having enough streams.
"""

from __future__ import annotations

from typing import List

from repro.trace.events import Trace
from repro.workloads.base import BenchmarkInfo, Workload, register
from repro.workloads.kernels import (
    ascending,
    gather_addresses,
    loop,
    random_indices,
    read,
    strided,
    write,
)

__all__ = ["PureSweep", "PureStride", "PureRandom", "InterleavedSweeps"]


@register
class PureSweep(Workload):
    """One long unit-stride read sweep: the stream buffer best case."""

    info = BenchmarkInfo(
        name="sweep",
        suite="micro",
        description="Single unit-stride sweep",
    )

    ELEMENTS = 131072

    def build(self) -> Trace:
        n = self.dim(self.ELEMENTS, minimum=1024)
        a = self.arena.alloc_words("a", n)
        return loop([read(ascending(a.base, n))])


@register
class PureStride(Workload):
    """A constant non-unit stride walk (default 1KB): czone-detectable."""

    info = BenchmarkInfo(
        name="stride",
        suite="micro",
        description="Single constant-stride walk",
    )

    STEPS = 65536
    STRIDE_BYTES = 1024

    def build(self) -> Trace:
        n = self.dim(self.STEPS, minimum=1024)
        a = self.arena.alloc("a", n * self.STRIDE_BYTES)
        return loop([read(strided(a.base, n, self.STRIDE_BYTES))])


@register
class PureRandom(Workload):
    """Uniform random references: no prefetcher can help."""

    info = BenchmarkInfo(
        name="random",
        suite="micro",
        description="Uniformly random references",
    )

    ACCESSES = 65536
    ELEMENTS = 262144  # 2MB target array

    def build(self) -> Trace:
        a = self.arena.alloc_words("a", self.ELEMENTS)
        n = self.dim(self.ACCESSES, minimum=1024)
        return loop([read(gather_addresses(a.base, random_indices(n, self.ELEMENTS, self.rng)))])


@register
class InterleavedSweeps(Workload):
    """K interleaved unit-stride sweeps: needs K streams to lock on.

    With fewer than K streams the LRU reallocation thrashes and the hit
    rate collapses; with K or more it approaches 100% — the shape of the
    paper's Figure 3 saturation argument in its purest form.
    """

    info = BenchmarkInfo(
        name="interleaved",
        suite="micro",
        description="K interleaved unit-stride sweeps",
    )

    ARRAYS = 6
    ELEMENTS = 32768

    def build(self) -> Trace:
        n = self.dim(self.ELEMENTS, minimum=1024)
        columns: List = []
        for index in range(self.ARRAYS):
            a = self.arena.alloc_words(f"a{index}", n)
            column = read(ascending(a.base, n)) if index else write(ascending(a.base, n))
            columns.append(column)
        return loop(columns)
