"""Synthetic workload models of the paper's fifteen benchmarks.

Importing this package registers every model; use
:func:`~repro.workloads.base.get_workload` / ``workload_names()`` to
enumerate and instantiate them.
"""

from repro.workloads import nas as _nas  # noqa: F401  (registration side effect)
from repro.workloads import perfect as _perfect  # noqa: F401
from repro.workloads import synthetic as _synthetic  # noqa: F401
from repro.workloads.base import (
    BenchmarkInfo,
    Workload,
    all_benchmarks,
    get_workload,
    register,
    workload_class,
    workload_names,
)
from repro.workloads.instructions import CODE_BASE, with_instructions

#: The fifteen paper benchmarks in Table 1 order (NAS then PERFECT).
PAPER_BENCHMARKS = (
    "embar",
    "mgrid",
    "cgm",
    "fftpde",
    "buk",
    "appsp",
    "appbt",
    "applu",
    "spec77",
    "adm",
    "bdna",
    "dyfesm",
    "mdg",
    "qcd",
    "trfd",
)

#: Benchmarks with significant non-unit stride references (Figure 9).
NON_UNIT_STRIDE_BENCHMARKS = ("fftpde", "appsp", "trfd")

#: The Table 4 scaling-study benchmarks with their (small, large) scales.
TABLE4_SCALES = {
    "appsp": (0.5, 1.0),  # 12^3 -> 24^3
    "appbt": (12 / 18, 24 / 18),  # 12^3 -> 24^3
    "applu": (12 / 18, 24 / 18),  # 12^3 -> 24^3
    "cgm": (1.0, 2.0),  # 1400 -> 5600 rows (quadratic in the knob)
    "mgrid": (1.0, 2.0),  # 32^3 -> 64^3
}

__all__ = [
    "BenchmarkInfo",
    "CODE_BASE",
    "NON_UNIT_STRIDE_BENCHMARKS",
    "PAPER_BENCHMARKS",
    "TABLE4_SCALES",
    "Workload",
    "all_benchmarks",
    "get_workload",
    "register",
    "with_instructions",
    "workload_class",
    "workload_names",
]
