"""Instruction-fetch modelling.

The paper's streams are unified (instructions + data) but it found that
"the relatively large on-chip instruction cache resulted in very few
instruction misses" (Section 5), making I/D partitioning pointless.  To
let that claim be checked, :func:`with_instructions` interleaves a looping
instruction-fetch stream over a small code footprint into any data trace:
the loop body cycles within a code segment far smaller than the 64KB
I-cache, so after cold start the I-miss contribution is negligible.
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import AccessKind, Trace

__all__ = ["with_instructions", "CODE_BASE"]

#: Base address of the simulated code segment (below the data arena).
CODE_BASE = 0x10000


def with_instructions(
    trace: Trace,
    code_bytes: int = 16 * 1024,
    fetch_bytes: int = 16,
    per_access: int = 2,
    code_base: int = CODE_BASE,
) -> Trace:
    """Interleave ``per_access`` instruction fetches before each access.

    The fetch stream walks a ``code_bytes`` loop body (four instructions
    per 16-byte fetch granule) and wraps — a steady-state inner loop.

    Args:
        trace: the data trace to augment.
        code_bytes: size of the loop body being executed.
        fetch_bytes: bytes per instruction-fetch access.
        per_access: instruction fetches emitted per data access.

    Returns:
        A new trace ``per_access + 1`` times the length of ``trace``.
    """
    if code_bytes <= 0 or fetch_bytes <= 0:
        raise ValueError("code_bytes and fetch_bytes must be positive")
    if per_access < 0:
        raise ValueError(f"per_access must be non-negative, got {per_access}")
    if per_access == 0 or not len(trace):
        return trace
    n = len(trace)
    total_fetches = n * per_access
    fetch_index = np.arange(total_fetches, dtype=np.int64)
    fetch_addrs = code_base + (fetch_index * fetch_bytes) % code_bytes
    k = per_access + 1
    out_addrs = np.empty(n * k, dtype=np.int64)
    out_kinds = np.empty(n * k, dtype=np.uint8)
    for j in range(per_access):
        out_addrs[j::k] = fetch_addrs[j::per_access]
        out_kinds[j::k] = int(AccessKind.IFETCH)
    out_addrs[per_access::k] = trace.addrs
    out_kinds[per_access::k] = trace.kinds
    return Trace(out_addrs, out_kinds)
