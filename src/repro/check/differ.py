"""Differential testing: optimized simulators vs the golden oracles.

Every check is driven by one integer seed: the seed generates a random
trace and a random configuration, both sides simulate it, and any
mismatch is reported as a :class:`Divergence` carrying the first
diverging event and the seed that replays it
(``repro check --replay l1:SEED`` / ``streams:SEED``).

Three stages:

* :func:`diff_l1` — a random access trace through a random cache
  geometry via the production :func:`~repro.sim.runner.simulate_l1` path
  (compression, fast paths, split I+D included) vs
  :func:`~repro.check.oracle.ref_simulate_l1`;
* :func:`diff_streams` — a synthetic miss-event stream through a random
  :class:`~repro.core.config.StreamConfig`, both per-event (first
  diverging outcome) and via the bulk ``run()`` fast path, vs
  :class:`~repro.check.oracle.RefStreamPrefetcher`;
* :func:`diff_registry_workload` — a real registry workload at small
  scale through the full L1 + streams pipeline vs both oracles;
* :func:`diff_analytic` — the stack-distance profiler's fully-associative
  LRU hit counts (:mod:`repro.analytic.profile`) vs driving a
  one-set :class:`~repro.check.oracle.RefCache` with L2 semantics over
  the same trace — Mattson's theorem, checked bit-for-bit;
* :func:`diff_analytic_streams` — the miss-spectrum extraction
  (:mod:`repro.trace.spectrum`) vs its naive O(n^2) reference,
  bit-for-bit, and the closed-form stream-buffer model
  (:mod:`repro.analytic.streams`) vs
  :class:`~repro.check.oracle.RefStreamPrefetcher`, within each
  prediction's declared error bound;
* :func:`diff_vector` — the batch engines of :mod:`repro.sim.vector`
  (L1, stream replay, sampled L2 probe) vs their scalar counterparts on
  configurations coerced into the vector support envelope
  (``repro check --replay vector:SEED``);
* :func:`diff_victim` / :func:`diff_misscache` / :func:`diff_hybrid` —
  the production secondary mechanisms of :mod:`repro.mechanisms`
  (victim cache, miss cache, serial hybrid stacks) vs the golden models
  of :mod:`repro.check.mech_oracle`, per-event and via the bulk
  ``run()`` and :func:`~repro.sim.vector.replay_secondary` paths (for
  hybrids the latter proves the two-phase residual formulation equal to
  the oracle's online composition).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.caches.cache import Cache, CacheConfig, MissEventKind, MissTrace
from repro.caches.secondary import simulate_secondary
from repro.check import mech_oracle, oracle
from repro.core.bank import Lookup
from repro.core.config import StreamConfig, StrideDetector
from repro.core.prefetcher import StreamPrefetcher
from repro.mechanisms import MechanismConfig, build_mechanism
from repro.sim.runner import simulate_l1
from repro.sim.vector import (
    replay_secondary,
    vector_replay_streams,
    vector_simulate_cache,
    vector_simulate_secondary,
)
from repro.trace.events import Trace
from repro.workloads.base import BenchmarkInfo, Workload, get_workload

__all__ = [
    "Divergence",
    "CheckReport",
    "random_trace",
    "random_cache_config",
    "random_stream_config",
    "random_miss_trace",
    "random_victim_config",
    "random_misscache_config",
    "random_hybrid_config",
    "diff_l1",
    "diff_streams",
    "diff_victim",
    "diff_misscache",
    "diff_hybrid",
    "diff_analytic",
    "diff_analytic_streams",
    "diff_vector",
    "diff_registry_workload",
    "check_seed",
    "run_corpus",
    "DEFAULT_REGISTRY_WORKLOADS",
    "DEFAULT_STAGES",
]


@dataclass(frozen=True)
class Divergence:
    """One optimized-vs-oracle mismatch, pinned to a replayable seed.

    Attributes:
        stage: ``"l1"`` / ``"streams"`` / ``"registry:<name>"``.
        seed: the seed that regenerates trace + config.
        what: which quantity diverged (e.g. ``"event[17].kind"``).
        optimized: the optimized simulator's value, rendered.
        expected: the oracle's value, rendered.
        context: extra detail (config repr, neighbouring events).
    """

    stage: str
    seed: int
    what: str
    optimized: str
    expected: str
    context: str = ""

    def __str__(self) -> str:
        lines = [
            f"DIVERGENCE [{self.stage}] seed={self.seed}: {self.what}",
            f"  optimized: {self.optimized}",
            f"  oracle:    {self.expected}",
        ]
        if self.context:
            lines.append(f"  context:   {self.context}")
        lines.append(f"  replay:    repro check --replay {self.stage.split(':')[0]}:{self.seed}")
        return "\n".join(lines)


@dataclass
class CheckReport:
    """Outcome of a corpus run."""

    seeds_checked: int = 0
    stages_run: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


# -- generators -------------------------------------------------------------


def random_trace(rng: random.Random, n_events: int, with_ifetch: bool = True) -> Trace:
    """A seeded access trace mixing the patterns the simulators care about.

    Segments of unit-stride walks (same-block runs for the compression
    path), constant non-unit strides (ascending and descending), tight
    same-block read/write bursts, and uniform random jumps; reads, writes
    and (optionally) instruction fetches interleaved.
    """
    addrs: List[int] = []
    kinds: List[int] = []
    base_span = 1 << 22  # 4 MB address playground
    while len(addrs) < n_events:
        pattern = rng.randrange(5)
        length = rng.randrange(4, 40)
        start = rng.randrange(base_span)
        if pattern == 0:  # word-granular unit walk (compressible runs)
            step = rng.choice([4, 8])
            for i in range(length):
                addrs.append(start + i * step)
                kinds.append(oracle.ACCESS_WRITE if rng.random() < 0.2 else oracle.ACCESS_READ)
        elif pattern == 1:  # constant non-unit stride, either direction
            stride = rng.choice([3, 5, 68, 132, 260, 516, 1028]) * rng.choice([1, -1])
            start = max(start, abs(stride) * length + 1)
            for i in range(length):
                addrs.append(start + i * stride)
                kinds.append(oracle.ACCESS_READ)
        elif pattern == 2:  # same-block burst with a write in the middle
            for i in range(length):
                addrs.append(start + (i % 8) * 4)
                kinds.append(
                    oracle.ACCESS_WRITE if i == length // 2 else oracle.ACCESS_READ
                )
        elif pattern == 3:  # random jumps
            for _ in range(length):
                addrs.append(rng.randrange(base_span))
                kinds.append(oracle.ACCESS_WRITE if rng.random() < 0.3 else oracle.ACCESS_READ)
        else:  # instruction-fetch walk (exercises the split L1)
            if not with_ifetch:
                continue
            for i in range(length):
                addrs.append(start + i * 4)
                kinds.append(oracle.ACCESS_IFETCH)
    del addrs[n_events:], kinds[n_events:]
    return Trace(
        np.asarray(addrs, dtype=np.int64), np.asarray(kinds, dtype=np.uint8)
    )


def random_cache_config(rng: random.Random) -> CacheConfig:
    """A random valid cache geometry/policy point."""
    block_size = rng.choice([16, 32, 64, 128])
    assoc = rng.choice([1, 2, 4, 8])
    n_sets = 1 << rng.randrange(2, 7)
    write_back = rng.random() < 0.7
    return CacheConfig(
        capacity=n_sets * assoc * block_size,
        assoc=assoc,
        block_size=block_size,
        policy=rng.choice(["lru", "fifo", "random"]),
        write_back=write_back,
        write_allocate=rng.random() < 0.7,
        seed=rng.randrange(1 << 16),
    )


def random_stream_config(rng: random.Random, block_bits: int = 6) -> StreamConfig:
    """A random valid stream-system configuration point."""
    depth = rng.randrange(1, 5)
    unit_entries = rng.choice([0, 4, 16])
    detector = StrideDetector.NONE
    if unit_entries:
        detector = rng.choice(StrideDetector.ALL)
    return StreamConfig(
        n_streams=rng.randrange(1, 11),
        depth=depth,
        block_bits=block_bits,
        unit_filter_entries=unit_entries,
        stride_detector=detector,
        czone_filter_entries=rng.choice([2, 8, 16]),
        czone_bits=rng.randrange(block_bits, block_bits + 14),
        min_delta_entries=rng.choice([2, 8, 16]),
        allow_negative_strides=rng.random() < 0.5,
        min_lead=rng.choice([0, 0, 1, 2, 4]),
        partitioned=rng.random() < 0.3,
        i_streams=rng.randrange(1, 4),
        lookup_depth=rng.randrange(1, depth + 1),
    )


def random_miss_trace(
    rng: random.Random, n_events: int, block_bits: int = 6
) -> MissTrace:
    """A synthetic L1 miss-event stream for the stream-buffer differ.

    Mixes block-sequential runs (both directions), strided runs, random
    misses, write misses, instruction-fetch misses, and write-backs
    aimed near recent addresses so stream-entry invalidation triggers.
    """
    block = 1 << block_bits
    addrs: List[int] = []
    kinds: List[int] = []
    base_span = 1 << 24
    while len(addrs) < n_events:
        pattern = rng.randrange(6)
        length = rng.randrange(3, 30)
        start = rng.randrange(base_span)
        if pattern == 0:  # ascending unit-stride miss run
            for i in range(length):
                addrs.append(start + i * block)
                kinds.append(oracle.EV_READ_MISS)
        elif pattern == 1:  # descending unit-stride run
            start = max(start, length * block)
            for i in range(length):
                addrs.append(start - i * block)
                kinds.append(oracle.EV_READ_MISS)
        elif pattern == 2:  # constant non-unit stride (czone fodder)
            stride = rng.choice([2, 3, 5, 9]) * block * rng.choice([1, -1])
            start = max(start, abs(stride) * length + 1)
            for i in range(length):
                addrs.append(start + i * stride)
                kinds.append(oracle.EV_READ_MISS)
        elif pattern == 3:  # random misses, some writes
            for _ in range(length):
                addrs.append(rng.randrange(base_span))
                kinds.append(
                    oracle.EV_WRITE_MISS if rng.random() < 0.3 else oracle.EV_READ_MISS
                )
        elif pattern == 4:  # ifetch miss run (partitioned-lane fodder)
            for i in range(length):
                addrs.append(start + i * block)
                kinds.append(oracle.EV_IFETCH_MISS)
        else:  # write-backs near recent addresses (invalidation fodder)
            for _ in range(min(length, 6)):
                if addrs and rng.random() < 0.8:
                    victim = addrs[rng.randrange(max(0, len(addrs) - 20), len(addrs))]
                    victim += rng.choice([0, block, 2 * block])
                else:
                    victim = rng.randrange(base_span)
                addrs.append((victim >> block_bits) << block_bits)
                kinds.append(oracle.EV_WRITEBACK)
    del addrs[n_events:], kinds[n_events:]
    return MissTrace(
        np.asarray(addrs, dtype=np.int64),
        np.asarray(kinds, dtype=np.uint8),
        block_bits,
    )


def random_victim_config(rng: random.Random, block_bits: int = 6) -> MechanismConfig:
    """A random valid victim-cache configuration point.

    Small shadow geometries are deliberately over-represented so the
    shadow tag array actually overflows and produces victims within a
    2000-event trace.
    """
    return MechanismConfig.victim(
        entries=rng.randrange(1, 33),
        shadow_sets=rng.choice([4, 16, 64, 256]),
        shadow_assoc=rng.randrange(1, 5),
        block_bits=block_bits,
    )


def random_misscache_config(rng: random.Random, block_bits: int = 6) -> MechanismConfig:
    """A random valid miss-cache configuration point."""
    return MechanismConfig.misscache(entries=rng.randrange(1, 33), block_bits=block_bits)


def random_hybrid_config(rng: random.Random, block_bits: int = 6) -> MechanismConfig:
    """A random valid hybrid stack: 1-2 buffer members, usually + streams."""
    members = []
    for _ in range(rng.randrange(1, 3)):
        if rng.random() < 0.5:
            members.append(random_victim_config(rng, block_bits))
        else:
            members.append(random_misscache_config(rng, block_bits))
    if rng.random() < 0.7 or len(members) < 2:
        members.append(
            MechanismConfig.for_streams(random_stream_config(rng, block_bits))
        )
    return MechanismConfig.hybrid(*members)


class _FixedWorkload(Workload):
    """Adapter presenting a pre-built trace through the Workload API."""

    info = BenchmarkInfo(name="differ-fixed", suite="micro", description="differ input")

    def __init__(self, trace: Trace, seed: int = 0):
        super().__init__(scale=1.0, seed=seed)
        self._fixed = trace

    def build(self) -> Trace:
        return self._fixed


# -- comparisons ------------------------------------------------------------


def _compare_events(
    stage: str,
    seed: int,
    opt_addrs: Sequence[int],
    opt_kinds: Sequence[int],
    ref_events: Sequence[Tuple[int, int]],
    context: str,
) -> Optional[Divergence]:
    """First diverging (addr, kind) event between the two streams."""
    n = min(len(opt_addrs), len(ref_events))
    for i in range(n):
        ref_addr, ref_kind = ref_events[i]
        if opt_addrs[i] != ref_addr or opt_kinds[i] != ref_kind:
            window = ", ".join(
                f"#{j}:({opt_addrs[j]:#x},{opt_kinds[j]})"
                for j in range(max(0, i - 2), min(n, i + 3))
            )
            return Divergence(
                stage=stage,
                seed=seed,
                what=f"event[{i}]",
                optimized=f"addr={opt_addrs[i]:#x} kind={opt_kinds[i]}",
                expected=f"addr={ref_addr:#x} kind={ref_kind}",
                context=f"{context}; optimized events around: {window}",
            )
    if len(opt_addrs) != len(ref_events):
        return Divergence(
            stage=stage,
            seed=seed,
            what="event count",
            optimized=str(len(opt_addrs)),
            expected=str(len(ref_events)),
            context=context,
        )
    return None


def _compare_counters(
    stage: str,
    seed: int,
    pairs: Sequence[Tuple[str, object, object]],
    context: str,
) -> Optional[Divergence]:
    for name, opt_value, ref_value in pairs:
        if opt_value != ref_value:
            return Divergence(
                stage=stage,
                seed=seed,
                what=name,
                optimized=repr(opt_value),
                expected=repr(ref_value),
                context=context,
            )
    return None


def diff_l1(seed: int, n_events: int = 3000) -> Optional[Divergence]:
    """One seeded L1 differential check; None when bit-identical."""
    rng = random.Random(seed * 2654435761 % (1 << 31))
    config = random_cache_config(rng)
    trace = random_trace(rng, n_events)
    context = f"config={config}"

    workload = _FixedWorkload(trace, seed=seed)
    miss_trace, summary = simulate_l1(workload, config)

    ref_events, ref_summary = oracle.ref_simulate_l1(
        trace.addrs.tolist(),
        trace.kinds.tolist(),
        capacity=config.capacity,
        assoc=config.assoc,
        block_size=config.block_size,
        policy=config.policy,
        write_back=config.write_back,
        write_allocate=config.write_allocate,
        seed=config.seed,
    )
    divergence = _compare_events(
        "l1",
        seed,
        miss_trace.addrs.tolist(),
        miss_trace.kinds.tolist(),
        ref_events,
        context,
    )
    if divergence is not None:
        return divergence
    return _compare_counters(
        "l1",
        seed,
        [
            ("summary.accesses", summary.accesses, ref_summary["accesses"]),
            ("summary.misses", summary.misses, ref_summary["misses"]),
            ("summary.writebacks", summary.writebacks, ref_summary["writebacks"]),
            ("summary.ifetch_misses", summary.ifetch_misses, ref_summary["ifetch_misses"]),
        ],
        context,
    )


_OUTCOME_BY_LOOKUP = {
    Lookup.HIT: "hit",
    Lookup.MISS: "miss",
    Lookup.IN_FLIGHT: "in_flight",
}


def _run_optimized_streams_per_event(
    config: StreamConfig, miss_trace: MissTrace
) -> Tuple[List[str], "StreamPrefetcher"]:
    """Drive the optimized prefetcher event by event, recording outcomes."""
    prefetcher = StreamPrefetcher(config)
    outcomes: List[str] = []
    wb = int(MissEventKind.WRITEBACK)
    ifetch = int(MissEventKind.IFETCH_MISS)
    for addr, kind in zip(miss_trace.addrs.tolist(), miss_trace.kinds.tolist()):
        if kind == wb:
            prefetcher.handle_writeback(addr)
            outcomes.append("writeback")
        else:
            result = prefetcher.handle_miss(addr, is_ifetch=kind == ifetch)
            outcomes.append(_OUTCOME_BY_LOOKUP[result])
    prefetcher.finalize()
    return outcomes, prefetcher


def _stats_counter_pairs(stats, ref: dict) -> List[Tuple[str, object, object]]:
    pairs = [
        ("demand_misses", stats.demand_misses, ref["demand_misses"]),
        ("stream_hits", stats.stream_hits, ref["stream_hits"]),
        ("in_flight_matches", stats.in_flight_matches, ref["in_flight_matches"]),
        ("ifetch_misses", stats.ifetch_misses, ref["ifetch_misses"]),
        ("writebacks", stats.writebacks, ref["writebacks"]),
        ("invalidations", stats.invalidations, ref["invalidations"]),
        ("prefetches_issued", stats.prefetches_issued, ref["prefetches_issued"]),
        ("prefetches_used", stats.prefetches_used, ref["prefetches_used"]),
        ("allocations", stats.allocations, ref["allocations"]),
        ("unit_filter_hits", stats.unit_filter_hits, ref["unit_filter_hits"]),
        ("unit_filter_misses", stats.unit_filter_misses, ref["unit_filter_misses"]),
        ("detector_hits", stats.detector_hits, ref["detector_hits"]),
        (
            "lengths.hits_by_bucket",
            dict(stats.lengths.hits_by_bucket),
            ref["lengths"]["hits_by_bucket"],
        ),
        (
            "lengths.streams_by_bucket",
            dict(stats.lengths.streams_by_bucket),
            ref["lengths"]["streams_by_bucket"],
        ),
        (
            "lengths.zero_length_streams",
            stats.lengths.zero_length_streams,
            ref["lengths"]["zero_length_streams"],
        ),
        # Bandwidth accounting: identical integer inputs must yield
        # identical floats (same formula, same operand order).
        ("bandwidth.useless", stats.bandwidth.useless_prefetches, ref["useless_prefetches"]),
        ("bandwidth.eb_measured", stats.bandwidth.eb_measured, ref["eb_measured"]),
        ("bandwidth.eb_estimate", stats.bandwidth.eb_estimate, ref["eb_estimate"]),
    ]
    return pairs


def diff_streams(seed: int, n_events: int = 2000) -> Optional[Divergence]:
    """One seeded stream-prefetcher differential check."""
    rng = random.Random(seed * 2246822519 % (1 << 31))
    config = random_stream_config(rng)
    miss_trace = random_miss_trace(rng, n_events, block_bits=config.block_bits)
    context = f"config={config}"

    opt_outcomes, prefetcher = _run_optimized_streams_per_event(config, miss_trace)
    opt_stats = prefetcher.stats

    ref = oracle.RefStreamPrefetcher(config).run(
        miss_trace.addrs.tolist(), miss_trace.kinds.tolist()
    )
    ref_outcomes = ref["outcomes"]
    for i, (opt_outcome, ref_outcome) in enumerate(zip(opt_outcomes, ref_outcomes)):
        if opt_outcome != ref_outcome:
            return Divergence(
                stage="streams",
                seed=seed,
                what=f"outcome[{i}] (addr={miss_trace.addrs[i]:#x}, kind={miss_trace.kinds[i]})",
                optimized=opt_outcome,
                expected=ref_outcome,
                context=context,
            )
    divergence = _compare_counters(
        "streams", seed, _stats_counter_pairs(opt_stats, ref), context
    )
    if divergence is not None:
        return divergence

    # The bulk run() path (demand-only fast path included) must agree
    # with the per-event drive above.
    bulk_stats = StreamPrefetcher(config).run(miss_trace)
    return _compare_counters(
        "streams",
        seed,
        [
            (f"run() vs per-event: {name}", bulk, per_event)
            for (name, per_event, _), (_, bulk, _) in zip(
                _stats_counter_pairs(opt_stats, ref),
                _stats_counter_pairs(bulk_stats, ref),
            )
        ],
        context,
    )


def _run_optimized_mechanism_per_event(
    config: MechanismConfig, miss_trace: MissTrace
) -> Tuple[List[str], object]:
    """Drive a production mechanism event by event, recording outcomes."""
    mechanism = build_mechanism(config)
    outcomes: List[str] = []
    wb = int(MissEventKind.WRITEBACK)
    for addr, kind in zip(miss_trace.addrs.tolist(), miss_trace.kinds.tolist()):
        if kind == wb:
            mechanism.handle_writeback(addr)
            outcomes.append("writeback")
        else:
            outcomes.append("hit" if mechanism.handle_miss(addr, kind) else "miss")
    return outcomes, mechanism.finalize()


def _mech_counter_pairs(stats, ref: dict) -> List[Tuple[str, object, object]]:
    pairs = [
        (name, getattr(stats, name), ref[name]) for name in mech_oracle.MECH_COUNTERS
    ]
    if "member_hits" in ref:
        pairs.append(("member_hits", list(stats.member_hits), ref["member_hits"]))
    return pairs


def _diff_mechanism(
    stage: str, seed: int, config: MechanismConfig, miss_trace: MissTrace
) -> Optional[Divergence]:
    """Shared body of the mechanism-zoo differ stages.

    Per-event outcomes vs the golden model, then the full counter
    surface, then two production cross-checks: the bulk ``run()`` loop
    and the :func:`~repro.sim.vector.replay_secondary` dispatcher (for
    hybrids the latter is the two-phase residual formulation, so its
    agreement with the oracle's *online* composition is the equivalence
    proof for the composition rules in docs/mechanisms.md).
    """
    context = f"config={config}"
    opt_outcomes, opt_stats = _run_optimized_mechanism_per_event(config, miss_trace)

    ref = mech_oracle.build_ref_mechanism(config).run(
        miss_trace.addrs.tolist(), miss_trace.kinds.tolist()
    )
    for i, (opt_outcome, ref_outcome) in enumerate(zip(opt_outcomes, ref["outcomes"])):
        if opt_outcome != ref_outcome:
            return Divergence(
                stage=stage,
                seed=seed,
                what=f"outcome[{i}] (addr={miss_trace.addrs[i]:#x}, kind={miss_trace.kinds[i]})",
                optimized=opt_outcome,
                expected=ref_outcome,
                context=context,
            )
    divergence = _compare_counters(
        stage, seed, _mech_counter_pairs(opt_stats, ref), context
    )
    if divergence is not None:
        return divergence
    if opt_stats.streams is not None and "streams" in ref:
        divergence = _compare_counters(
            stage,
            seed,
            [
                (f"streams.{name}", opt_value, ref_value)
                for name, opt_value, ref_value in _stats_counter_pairs(
                    opt_stats.streams, ref["streams"]
                )
            ],
            context,
        )
        if divergence is not None:
            return divergence

    # The bulk run() loop must agree with the per-event drive above.
    bulk_stats = build_mechanism(config).run(miss_trace)
    divergence = _compare_counters(
        stage,
        seed,
        [
            (f"run() vs per-event: {name}", getattr(bulk_stats, name), getattr(opt_stats, name))
            for name in mech_oracle.MECH_COUNTERS
        ]
        + [
            (
                "run() vs per-event: member_hits",
                list(bulk_stats.member_hits),
                list(opt_stats.member_hits),
            )
        ],
        context,
    )
    if divergence is not None:
        return divergence

    # The store/sweep dispatcher — two-phase residual for hybrids.
    replayed = replay_secondary(config, miss_trace, engine="scalar")
    return _compare_counters(
        stage,
        seed,
        [
            (
                f"replay_secondary vs per-event: {name}",
                getattr(replayed, name),
                getattr(opt_stats, name),
            )
            for name in mech_oracle.MECH_COUNTERS
        ]
        + [
            (
                "replay_secondary vs per-event: member_hits",
                list(replayed.member_hits),
                list(opt_stats.member_hits),
            )
        ],
        context,
    )


def diff_victim(seed: int, n_events: int = 2000) -> Optional[Divergence]:
    """One seeded victim-cache differential check."""
    rng = random.Random(seed * 3266489917 % (1 << 31))
    config = random_victim_config(rng)
    miss_trace = random_miss_trace(rng, n_events, block_bits=config.block_bits)
    return _diff_mechanism("victim", seed, config, miss_trace)


def diff_misscache(seed: int, n_events: int = 2000) -> Optional[Divergence]:
    """One seeded miss-cache differential check."""
    rng = random.Random(seed * 668265263 % (1 << 31))
    config = random_misscache_config(rng)
    miss_trace = random_miss_trace(rng, n_events, block_bits=config.block_bits)
    return _diff_mechanism("misscache", seed, config, miss_trace)


def diff_hybrid(seed: int, n_events: int = 2000) -> Optional[Divergence]:
    """One seeded hybrid-stack differential check."""
    rng = random.Random(seed * 374761393 % (1 << 31))
    config = random_hybrid_config(rng)
    miss_trace = random_miss_trace(rng, n_events, block_bits=config.block_bits)
    return _diff_mechanism("hybrid", seed, config, miss_trace)


#: Fully-associative capacities (in blocks) the analytic differ checks.
#: Small enough that the oracle's O(assoc) scans stay cheap, spread wide
#: enough to cover empty-, partial- and full-histogram prefixes.
_ANALYTIC_CAPACITIES = (1, 2, 4, 16, 64, 256)


def diff_analytic(seed: int, n_events: int = 2500) -> Optional[Divergence]:
    """One seeded analytic-vs-oracle check of the locality profiler.

    Profiles a random miss trace at 64B and 128B blocks, then drives a
    fully-associative (one-set) LRU :class:`~repro.check.oracle.RefCache`
    over the same trace with L2 semantics — write-backs install but do
    not count — and demands bit-identical demand/hit counts at every
    capacity in :data:`_ANALYTIC_CAPACITIES` (Mattson's theorem makes the
    profile's prefix sums *exact*, so any mismatch is a bug).
    """
    from repro.analytic.model import fa_hit_count
    from repro.analytic.profile import profile_miss_trace

    rng = random.Random(seed * 3266489917 % (1 << 31))
    miss_trace = random_miss_trace(rng, n_events)
    profiles = profile_miss_trace(miss_trace, (64, 128))

    addrs = miss_trace.addrs.tolist()
    kinds = miss_trace.kinds.tolist()
    for block_size, profile in profiles.items():
        for capacity_blocks in _ANALYTIC_CAPACITIES:
            ref = oracle.RefCache(
                capacity=capacity_blocks * block_size,
                assoc=capacity_blocks,
                block_size=block_size,
                policy="lru",
                write_back=True,
                write_allocate=True,
                seed=0,
            )
            sink: List[Tuple[int, int]] = []
            demand = 0
            hits = 0
            for addr, kind in zip(addrs, kinds):
                if kind == oracle.EV_WRITEBACK:
                    ref.access(addr, oracle.ACCESS_WRITE, sink)
                    continue
                demand += 1
                is_write = kind == oracle.EV_WRITE_MISS
                if ref.access(
                    addr, oracle.ACCESS_WRITE if is_write else oracle.ACCESS_READ, sink
                ):
                    hits += 1
            context = f"block_size={block_size} capacity_blocks={capacity_blocks}"
            divergence = _compare_counters(
                "analytic",
                seed,
                [
                    ("demand_accesses", profile.demand_accesses, demand),
                    ("fa_hit_count", fa_hit_count(profile, capacity_blocks * block_size), hits),
                ],
                context,
            )
            if divergence is not None:
                return divergence
    return None


def diff_analytic_streams(seed: int, n_events: int = 2000) -> Optional[Divergence]:
    """One seeded check of the closed-form stream-buffer model.

    Two sub-checks share the seed.  First the one-pass spectrum
    extraction (:func:`~repro.trace.spectrum.extract_spectrum`) is
    compared bit-for-bit against the naive O(n^2) reference on a
    truncated prefix of the trace — every scalar and every per-run array
    must match exactly.  Then the full trace's spectrum feeds
    :func:`~repro.analytic.streams.predict_streams` for a random
    envelope configuration, and the predicted hit rate must sit within
    the prediction's *declared* error bound of the golden
    :class:`~repro.check.oracle.RefStreamPrefetcher` — the same contract
    the analytic sweep path relies on when it prunes cells without
    replaying them.
    """
    from repro.analytic.streams import predict_streams, stream_envelope_config
    from repro.trace.spectrum import extract_spectrum, naive_spectrum

    rng = random.Random(seed * 3266489917 % (1 << 31))
    config = stream_envelope_config(random_stream_config(rng))
    miss_trace = random_miss_trace(rng, n_events, block_bits=config.block_bits)

    # -- spectrum extraction vs naive reference (truncated prefix) -----
    prefix_len = min(400, len(miss_trace.addrs))
    prefix = MissTrace(
        addrs=miss_trace.addrs[:prefix_len],
        kinds=miss_trace.kinds[:prefix_len],
        block_bits=miss_trace.block_bits,
    )
    fast = extract_spectrum(prefix)
    naive = naive_spectrum(prefix)
    if fast != naive:
        for name in (
            "n_events",
            "demand_misses",
            "writebacks",
            "ifetch_misses",
            "lone_misses",
            "seed_events",
            "alloc_events",
        ):
            fast_value = getattr(fast, name)
            naive_value = getattr(naive, name)
            if fast_value != naive_value:
                return Divergence(
                    stage="analytic-streams",
                    seed=seed,
                    what=f"spectrum.{name}",
                    optimized=str(fast_value),
                    expected=str(naive_value),
                    context=f"prefix_len={prefix_len}",
                )
        for name in (
            "run_start_addr",
            "run_stride_bytes",
            "run_length",
            "run_wb_next",
            "run_wb_window",
            "run_primer_age",
            "run_kind",
            "run_byte_uniform",
            "run_gaps_ge",
            "run_conc_ge",
        ):
            fast_value = getattr(fast, name)
            naive_value = getattr(naive, name)
            if not np.array_equal(fast_value, naive_value):
                return Divergence(
                    stage="analytic-streams",
                    seed=seed,
                    what=f"spectrum.{name}",
                    optimized=np.array2string(fast_value, threshold=24),
                    expected=np.array2string(naive_value, threshold=24),
                    context=f"prefix_len={prefix_len}",
                )
        return Divergence(
            stage="analytic-streams",
            seed=seed,
            what="spectrum equality",
            optimized=repr(fast),
            expected=repr(naive),
            context=f"prefix_len={prefix_len}",
        )

    # -- closed-form prediction vs golden oracle, within bound ---------
    spectrum = extract_spectrum(miss_trace)
    prediction = predict_streams(spectrum, config)
    ref = oracle.RefStreamPrefetcher(config).run(
        miss_trace.addrs.tolist(), miss_trace.kinds.tolist()
    )
    demand = ref["demand_misses"]
    truth = ref["stream_hits"] / demand if demand else 0.0
    error = abs(prediction.hit_rate - truth)
    if error > prediction.bound:
        return Divergence(
            stage="analytic-streams",
            seed=seed,
            what="hit_rate out of declared bound",
            optimized=f"{prediction.hit_rate:.6f} (bound {prediction.bound:.6f})",
            expected=f"{truth:.6f} (|error| {error:.6f})",
            context=f"config={config}",
        )
    if spectrum.demand_misses != demand:
        return Divergence(
            stage="analytic-streams",
            seed=seed,
            what="spectrum.demand_misses",
            optimized=str(spectrum.demand_misses),
            expected=str(demand),
            context=f"config={config}",
        )
    return None


_STREAM_COUNTER_NAMES = (
    "demand_misses",
    "stream_hits",
    "in_flight_matches",
    "ifetch_misses",
    "writebacks",
    "invalidations",
    "prefetches_issued",
    "prefetches_used",
    "allocations",
    "unit_filter_hits",
    "unit_filter_misses",
    "detector_hits",
)


def diff_vector(seed: int, n_events: int = 2500) -> Optional[Divergence]:
    """One seeded vector-vs-scalar engine check (:mod:`repro.sim.vector`).

    Three sub-checks share the seed: the batch L1 engine vs the scalar
    :class:`~repro.caches.cache.Cache` over a random write-back,
    write-allocate geometry; the flat stream-replay engine vs
    :meth:`~repro.core.prefetcher.StreamPrefetcher.run` over a random
    non-partitioned window config; and the sampled vector L2 probe vs
    :func:`~repro.caches.secondary.simulate_secondary`.  Random
    configurations are coerced *into* each engine's support envelope —
    anything outside it falls back to scalar in production, so only the
    envelope needs differential coverage.  ``force=True`` keeps the
    vector engines live even under ``REPRO_CHECK=1``, where they
    normally stand down in favour of the instrumented scalar paths.
    """
    rng = random.Random(seed * 2246822507 % (1 << 31))

    # -- L1: batch engine vs scalar Cache ------------------------------
    config = replace(random_cache_config(rng), write_back=True, write_allocate=True)
    trace = random_trace(rng, n_events)
    context = f"l1 config={config}"
    vectorized = vector_simulate_cache(config, trace, force=True)
    if vectorized is None:
        return Divergence(
            stage="vector",
            seed=seed,
            what="l1 engine gate",
            optimized="None (engine refused a supported configuration)",
            expected="(miss_trace, stats)",
            context=context,
        )
    vec_trace, vec_stats = vectorized
    scalar = Cache(config)
    ref_trace = scalar.simulate(trace)
    divergence = _compare_events(
        "vector",
        seed,
        vec_trace.addrs.tolist(),
        vec_trace.kinds.tolist(),
        list(zip(ref_trace.addrs.tolist(), ref_trace.kinds.tolist())),
        context,
    )
    if divergence is not None:
        return divergence
    ref_stats = scalar.stats
    divergence = _compare_counters(
        "vector",
        seed,
        [
            ("l1.accesses", vec_stats.accesses, ref_stats.accesses),
            ("l1.hits", vec_stats.hits, ref_stats.hits),
            ("l1.misses", vec_stats.misses, ref_stats.misses),
            ("l1.read_misses", vec_stats.read_misses, ref_stats.read_misses),
            ("l1.write_misses", vec_stats.write_misses, ref_stats.write_misses),
            ("l1.writebacks", vec_stats.writebacks, ref_stats.writebacks),
        ],
        context,
    )
    if divergence is not None:
        return divergence

    # -- streams: flat replay engine vs StreamPrefetcher.run -----------
    stream_config = replace(
        random_stream_config(rng),
        partitioned=False,
        lookup_depth=1,
        min_lead=0,
        stride_detector=StrideDetector.NONE,
    )
    miss_trace = random_miss_trace(rng, n_events, block_bits=stream_config.block_bits)
    context = f"stream config={stream_config}"
    vec_streams = vector_replay_streams(stream_config, miss_trace, force=True)
    if vec_streams is None:
        return Divergence(
            stage="vector",
            seed=seed,
            what="stream engine gate",
            optimized="None (engine refused a supported configuration)",
            expected="StreamStats",
            context=context,
        )
    ref_streams = StreamPrefetcher(stream_config).run(miss_trace)
    pairs: List[Tuple[str, object, object]] = [
        (f"streams.{name}", getattr(vec_streams, name), getattr(ref_streams, name))
        for name in _STREAM_COUNTER_NAMES
    ]
    pairs += [
        (
            "streams.lengths.hits_by_bucket",
            dict(vec_streams.lengths.hits_by_bucket),
            dict(ref_streams.lengths.hits_by_bucket),
        ),
        (
            "streams.lengths.streams_by_bucket",
            dict(vec_streams.lengths.streams_by_bucket),
            dict(ref_streams.lengths.streams_by_bucket),
        ),
        (
            "streams.lengths.zero_length_streams",
            vec_streams.lengths.zero_length_streams,
            ref_streams.lengths.zero_length_streams,
        ),
    ]
    divergence = _compare_counters("vector", seed, pairs, context)
    if divergence is not None:
        return divergence

    # -- secondary: sampled vector probe vs simulate_secondary ---------
    l2_config = replace(random_cache_config(rng), write_back=True, write_allocate=True)
    sample_every = rng.choice([1, 2, 4, 8])
    context = f"l2 config={l2_config} sample_every={sample_every}"
    vec_l2 = vector_simulate_secondary(
        miss_trace, l2_config, sample_every=sample_every, force=True
    )
    if vec_l2 is None:
        return Divergence(
            stage="vector",
            seed=seed,
            what="secondary engine gate",
            optimized="None (engine refused a supported configuration)",
            expected="SecondaryResult",
            context=context,
        )
    ref_l2 = simulate_secondary(miss_trace, l2_config, sample_every=sample_every)
    return _compare_counters(
        "vector",
        seed,
        [
            ("l2.demand_accesses", vec_l2.demand_accesses, ref_l2.demand_accesses),
            ("l2.demand_hits", vec_l2.demand_hits, ref_l2.demand_hits),
            (
                "l2.writebacks_received",
                vec_l2.writebacks_received,
                ref_l2.writebacks_received,
            ),
            ("l2.sampled_sets", vec_l2.sampled_sets, ref_l2.sampled_sets),
        ],
        context,
    )


#: Small, structurally diverse slice of the registry for corpus runs.
DEFAULT_REGISTRY_WORKLOADS = ("cgm", "mgrid", "trfd")


def diff_registry_workload(
    name: str, scale: float = 0.05, seed: int = 0
) -> Optional[Divergence]:
    """Full-pipeline check of one real workload model at small scale."""
    stage = f"registry:{name}"
    workload = get_workload(name, scale=scale, seed=seed)
    config = CacheConfig.paper_l1()
    miss_trace, summary = simulate_l1(workload, config)

    trace = workload.trace()
    ref_events, ref_summary = oracle.ref_simulate_l1(
        trace.addrs.tolist(),
        trace.kinds.tolist(),
        capacity=config.capacity,
        assoc=config.assoc,
        block_size=config.block_size,
        policy=config.policy,
        write_back=config.write_back,
        write_allocate=config.write_allocate,
        seed=config.seed,
    )
    context = f"workload={name} scale={scale} seed={seed}"
    divergence = _compare_events(
        stage,
        seed,
        miss_trace.addrs.tolist(),
        miss_trace.kinds.tolist(),
        ref_events,
        context,
    )
    if divergence is not None:
        return divergence
    divergence = _compare_counters(
        stage,
        seed,
        [
            ("summary.misses", summary.misses, ref_summary["misses"]),
            ("summary.writebacks", summary.writebacks, ref_summary["writebacks"]),
        ],
        context,
    )
    if divergence is not None:
        return divergence

    # Streams over the real miss trace, one filtered and one czone config.
    for stream_config in (
        StreamConfig.filtered(n_streams=8),
        StreamConfig.non_unit(n_streams=8, czone_bits=16),
    ):
        opt_stats = StreamPrefetcher(stream_config).run(miss_trace)
        ref = oracle.RefStreamPrefetcher(stream_config).run(
            miss_trace.addrs.tolist(), miss_trace.kinds.tolist()
        )
        divergence = _compare_counters(
            stage,
            seed,
            _stats_counter_pairs(opt_stats, ref),
            f"{context}; stream config={stream_config}",
        )
        if divergence is not None:
            return divergence
    return None


# -- corpus driver ----------------------------------------------------------


#: Per-seed stage registry: name -> diff function.  ``--replay`` and the
#: corpus driver both dispatch through this table.
STAGE_FUNCTIONS = {
    "l1": diff_l1,
    "streams": diff_streams,
    "victim": diff_victim,
    "misscache": diff_misscache,
    "hybrid": diff_hybrid,
    "analytic": diff_analytic,
    "analytic-streams": diff_analytic_streams,
    "vector": diff_vector,
}

#: Stages a default corpus run exercises per seed, in order.
DEFAULT_STAGES = (
    "l1",
    "streams",
    "victim",
    "misscache",
    "hybrid",
    "analytic",
    "analytic-streams",
    "vector",
)


def check_seed(
    seed: int, n_events: int = 2500, stages: Sequence[str] = DEFAULT_STAGES
) -> List[Divergence]:
    """Run the random-trace stages for one seed."""
    found = []
    for stage in stages:
        divergence = STAGE_FUNCTIONS[stage](seed, n_events=n_events)
        if divergence is not None:
            found.append(divergence)
    return found


def run_corpus(
    seeds: int = 50,
    seed_start: int = 0,
    n_events: int = 2500,
    registry: bool = True,
    registry_scale: float = 0.05,
    registry_workloads: Sequence[str] = DEFAULT_REGISTRY_WORKLOADS,
    stages: Sequence[str] = DEFAULT_STAGES,
    progress=None,
) -> CheckReport:
    """Run the full differential corpus; collect every divergence."""
    unknown = [stage for stage in stages if stage not in STAGE_FUNCTIONS]
    if unknown:
        raise ValueError(
            f"unknown stages {unknown}; choose from {sorted(STAGE_FUNCTIONS)}"
        )
    report = CheckReport()
    for seed in range(seed_start, seed_start + seeds):
        report.divergences.extend(check_seed(seed, n_events=n_events, stages=stages))
        report.seeds_checked += 1
        report.stages_run += len(stages)
        if progress is not None and (seed - seed_start + 1) % 25 == 0:
            progress(f"  {seed - seed_start + 1}/{seeds} seeds checked")
    if registry:
        for name in registry_workloads:
            divergence = diff_registry_workload(name, scale=registry_scale)
            report.stages_run += 1
            if divergence is not None:
                report.divergences.append(divergence)
    return report
