"""Golden reference models for differential testing.

Deliberately simple, scalar, loop-per-access reimplementations of the
simulators, written from the DESIGN.md / paper semantics:

* :class:`RefCache` / :func:`ref_simulate_l1` — set-associative cache and
  the split I+D primary cache (paper Section 4.1 / Section 8 geometries);
* :class:`RefStreamPrefetcher` — multi-way stream buffers with LRU
  reallocation (Section 3), the unit-stride allocation filter (Section
  6), the czone FSM (Section 7, Figure 7) and the minimum-delta
  alternative, including bandwidth accounting and the Table 3 length
  histogram.

These models share **no code** with ``repro.caches``/``repro.core`` —
only the frozen config dataclasses (pure data) and the integer event
encodings cross the boundary.  Everything here favours obviousness over
speed: plain lists and dicts, one explicit loop per access, no caching
of derived state.  The differ (:mod:`repro.check.differ`) runs both
sides and compares events and counters bit-for-bit.

Event/kind encodings (must match ``AccessKind``/``MissEventKind``):
reads are 0, writes 1, instruction fetches 2 on the access side;
read misses 0, write misses 1, write-backs 2, ifetch misses 3 on the
miss-event side.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ACCESS_READ",
    "ACCESS_WRITE",
    "ACCESS_IFETCH",
    "EV_READ_MISS",
    "EV_WRITE_MISS",
    "EV_WRITEBACK",
    "EV_IFETCH_MISS",
    "RefCache",
    "ref_simulate_l1",
    "RefStreamPrefetcher",
    "ref_bucket_of",
]

ACCESS_READ = 0
ACCESS_WRITE = 1
ACCESS_IFETCH = 2

EV_READ_MISS = 0
EV_WRITE_MISS = 1
EV_WRITEBACK = 2
EV_IFETCH_MISS = 3


def _log2(value: int) -> int:
    bits = value.bit_length() - 1
    if value <= 0 or (1 << bits) != value:
        raise ValueError(f"{value} is not a positive power of two")
    return bits


class RefCache:
    """Reference set-associative cache.

    One list of ``[block, dirty]`` pairs per set.  For ``lru`` the list is
    ordered least-recently-used first; for ``fifo`` oldest-inserted
    first; for ``random`` the list position is the physical slot and the
    victim slot is drawn from ``random.Random(seed).randrange(assoc)`` —
    the same generator and draw sequence as the optimized simulator, so
    victim choices (and therefore the whole run) are comparable
    bit-for-bit.
    """

    def __init__(
        self,
        capacity: int,
        assoc: int,
        block_size: int,
        policy: str,
        write_back: bool,
        write_allocate: bool,
        seed: int,
    ):
        self.block_bits = _log2(block_size)
        self.n_sets = capacity // (assoc * block_size)
        self.assoc = assoc
        self.policy = policy
        self.write_back = write_back
        self.write_allocate = write_allocate
        self.sets: List[List[List[int]]] = [[] for _ in range(self.n_sets)]
        self.rng = random.Random(seed)
        self.accesses = 0
        self.hits = 0
        self.read_misses = 0
        self.write_misses = 0
        self.writebacks = 0

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    def _find(self, entries: List[List[int]], block: int) -> int:
        for position, entry in enumerate(entries):
            if entry[0] == block:
                return position
        return -1

    def access(self, addr: int, kind: int, events: List[Tuple[int, int]]) -> bool:
        """One access; miss/write-back events append to ``events``.

        Returns True on a hit.  Instruction fetches are treated as reads
        (the caller routes them to the right cache and relabels the miss
        event).
        """
        self.accesses += 1
        is_write = kind == ACCESS_WRITE
        block = addr >> self.block_bits
        set_index = block % self.n_sets
        entries = self.sets[set_index]
        position = self._find(entries, block)
        if position >= 0:
            self.hits += 1
            entry = entries[position]
            if self.policy == "lru":
                entries.pop(position)
                entries.append(entry)
            if is_write:
                if self.write_back:
                    entry[1] = 1
                else:
                    # Write-through: the store itself travels to memory.
                    events.append((block << self.block_bits, EV_WRITEBACK))
            return True
        # Miss.
        if is_write:
            self.write_misses += 1
            events.append((addr, EV_WRITE_MISS))
        else:
            self.read_misses += 1
            events.append((addr, EV_READ_MISS))
        if is_write and not self.write_allocate:
            # No fetch; the store goes straight to memory.
            events.append((block << self.block_bits, EV_WRITEBACK))
            return False
        dirty = 1 if (is_write and self.write_back) else 0
        if self.policy == "random":
            if len(entries) >= self.assoc:
                slot = self.rng.randrange(self.assoc)
                victim_block, victim_dirty = entries[slot]
                if victim_dirty:
                    self.writebacks += 1
                    events.append((victim_block << self.block_bits, EV_WRITEBACK))
                entries[slot] = [block, dirty]
            else:
                entries.append([block, dirty])
        else:
            if len(entries) >= self.assoc:
                victim_block, victim_dirty = entries.pop(0)
                if victim_dirty:
                    self.writebacks += 1
                    events.append((victim_block << self.block_bits, EV_WRITEBACK))
            entries.append([block, dirty])
        if is_write and not self.write_back:
            events.append((block << self.block_bits, EV_WRITEBACK))
        return False


def ref_simulate_l1(
    addrs: Sequence[int],
    kinds: Sequence[int],
    capacity: int,
    assoc: int,
    block_size: int,
    policy: str = "random",
    write_back: bool = True,
    write_allocate: bool = True,
    seed: int = 0,
) -> Tuple[List[Tuple[int, int]], Dict[str, int]]:
    """Reference primary-cache simulation of a raw access trace.

    Data accesses go to a D-cache built from the given parameters;
    instruction fetches (if any) to an I-cache with the same geometry and
    ``seed + 1``, their misses labelled :data:`EV_IFETCH_MISS`.  Returns
    the ordered ``(addr, kind)`` miss-event list plus a summary dict.
    """
    dcache = RefCache(
        capacity, assoc, block_size, policy, write_back, write_allocate, seed
    )
    icache = RefCache(
        capacity, assoc, block_size, policy, write_back, write_allocate, seed + 1
    )
    events: List[Tuple[int, int]] = []
    ifetch_misses = 0
    for addr, kind in zip(addrs, kinds):
        if kind == ACCESS_IFETCH:
            before = len(events)
            hit = icache.access(addr, ACCESS_READ, events)
            if not hit:
                ifetch_misses += 1
                # Relabel the read-miss event the I-cache just appended.
                addr_ev, _ = events[before]
                events[before] = (addr_ev, EV_IFETCH_MISS)
        else:
            dcache.access(addr, kind, events)
    summary = {
        "accesses": dcache.accesses + icache.accesses,
        "hits": dcache.hits + icache.hits,
        "misses": dcache.misses + icache.misses,
        "read_misses": dcache.read_misses + icache.read_misses,
        "write_misses": dcache.write_misses + icache.write_misses,
        "writebacks": dcache.writebacks + icache.writebacks,
        "ifetch_misses": ifetch_misses,
    }
    return events, summary


# -- stream-buffer reference ------------------------------------------------


def ref_bucket_of(length: int) -> Tuple[int, int]:
    """Table 3 length bucket for a completed stream (length >= 1)."""
    if length <= 5:
        return (1, 5)
    if length <= 10:
        return (6, 10)
    if length <= 15:
        return (11, 15)
    if length <= 20:
        return (16, 20)
    return (21, 0)


_BUCKETS = ((1, 5), (6, 10), (11, 15), (16, 20), (21, 0))


class _RefStream:
    """One stream buffer: a FIFO of ``[block, valid, issue_seq]`` slots."""

    def __init__(self, depth: int):
        self.depth = depth
        self.active = False
        self.stride = 1
        self.hits_since_alloc = 0
        self.fifo: List[List[int]] = []
        self.next_block = 0


class _RefLane:
    """One bank of streams plus its allocation filters."""

    def __init__(self, config, n_streams: int):
        self.depth = config.depth
        self.min_lead = config.min_lead
        self.lookup_depth = config.lookup_depth
        self.streams = [_RefStream(config.depth) for _ in range(n_streams)]
        self.lru = list(range(n_streams))  # least recent first
        self.seq = 0
        self.prefetches_issued = 0
        self.prefetches_used = 0
        self.bank_hits = 0
        self.invalidations = 0
        self.allocations = 0
        self.hits_by_bucket = {bucket: 0 for bucket in _BUCKETS}
        self.streams_by_bucket = {bucket: 0 for bucket in _BUCKETS}
        self.zero_length_streams = 0

        self.unit_entries = config.unit_filter_entries
        self.unit_table: List[int] = []  # expected-next blocks, oldest first
        self.unit_hits = 0
        self.unit_misses = 0

        self.detector = config.stride_detector
        self.allow_negative = config.allow_negative_strides
        self.block_bits = config.block_bits
        self.detector_hits = 0
        # czone: [tag, state, last_addr, stride] rows, oldest first.
        self.czone_bits = config.czone_bits
        self.czone_entries = config.czone_filter_entries
        self.czone_table: List[List[int]] = []
        # min-delta: last N miss addresses, oldest first.
        self.md_entries = config.min_delta_entries
        self.md_history: List[int] = []
        self.md_max_stride_blocks = 1 << 20

    # -- bank ----------------------------------------------------------

    def _record_length(self, length: int) -> None:
        if length == 0:
            self.zero_length_streams += 1
            return
        bucket = ref_bucket_of(length)
        self.hits_by_bucket[bucket] += length
        self.streams_by_bucket[bucket] += 1

    def _lookup(self, block: int) -> str:
        """'hit' / 'in_flight' / 'miss', mirroring the bank semantics."""
        self.seq += 1
        index = -1
        # Head comparators: first stream (index order) whose head is a
        # valid entry holding the block.
        for i, stream in enumerate(self.streams):
            if stream.active and stream.fifo:
                head = stream.fifo[0]
                if head[1] and head[0] == block:
                    index = i
                    break
        if index < 0 and self.lookup_depth > 1:
            # Quasi-associative extension: a match deeper in the FIFO
            # skips the stale entries ahead of it (wasted prefetches) and
            # tops the FIFO back up.
            for i, stream in enumerate(self.streams):
                if not stream.active:
                    continue
                position = -1
                for p, entry in enumerate(stream.fifo[: self.lookup_depth]):
                    if entry[1] and entry[0] == block:
                        position = p
                        break
                if position > 0:
                    del stream.fifo[:position]
                    while len(stream.fifo) < stream.depth:
                        stream.fifo.append([stream.next_block, 1, self.seq])
                        stream.next_block += stream.stride
                        self.prefetches_issued += 1
                    index = i
                    break
        if index < 0:
            return "miss"
        stream = self.streams[index]
        result = "hit"
        if self.min_lead and self.seq - stream.fifo[0][2] < self.min_lead:
            result = "in_flight"
        if result == "hit":
            self.bank_hits += 1
        # Either way the prefetched data is consumed and the stream
        # advances (an in-flight match coalesces with the demand fetch).
        self.prefetches_used += 1
        stream.fifo.pop(0)
        stream.hits_since_alloc += 1
        stream.fifo.append([stream.next_block, 1, self.seq])
        stream.next_block += stream.stride
        self.prefetches_issued += 1
        self.lru.remove(index)
        self.lru.append(index)
        return result

    def _allocate(self, start_block: int, stride: int) -> None:
        index = self.lru[0]
        stream = self.streams[index]
        if stream.active:
            self._record_length(stream.hits_since_alloc)
        stream.fifo = []
        stream.active = True
        stream.stride = stride
        stream.hits_since_alloc = 0
        block = start_block
        for _ in range(stream.depth):
            stream.fifo.append([block, 1, self.seq])
            block += stride
            self.prefetches_issued += 1
        stream.next_block = block
        self.lru.remove(index)
        self.lru.append(index)

    def invalidate(self, block: int) -> int:
        count = 0
        for stream in self.streams:
            for entry in stream.fifo:
                if entry[1] and entry[0] == block:
                    entry[1] = 0
                    count += 1
        self.invalidations += count
        return count

    def finalize(self) -> None:
        for stream in self.streams:
            if stream.active:
                self._record_length(stream.hits_since_alloc)
                stream.fifo = []
                stream.active = False
                stream.hits_since_alloc = 0

    # -- filters -------------------------------------------------------

    def _unit_observe(self, block: int) -> bool:
        if block in self.unit_table:
            self.unit_table.remove(block)
            self.unit_hits += 1
            return True
        self.unit_misses += 1
        expected = block + 1
        if expected in self.unit_table:
            # Refresh to the newest position rather than duplicate.
            self.unit_table.remove(expected)
            self.unit_table.append(expected)
            return False
        if len(self.unit_table) >= self.unit_entries:
            self.unit_table.pop(0)
        self.unit_table.append(expected)
        return False

    def _block_stride(self, delta_bytes: int) -> int:
        """Byte stride -> block stride, rounding toward zero."""
        if delta_bytes >= 0:
            return delta_bytes >> self.block_bits
        return -((-delta_bytes) >> self.block_bits)

    def _czone_observe(self, addr: int) -> Optional[Tuple[int, int]]:
        """Figure 7 FSM per partition; returns (start_block, stride)."""
        tag = addr >> self.czone_bits
        row = None
        for candidate in self.czone_table:
            if candidate[0] == tag:
                row = candidate
                break
        if row is None:
            if len(self.czone_table) >= self.czone_entries:
                self.czone_table.pop(0)  # insertion order, no refresh
            # state 1 = META1 (first address seen), 2 = META2.
            self.czone_table.append([tag, 1, addr, 0])
            return None
        _, state, last_addr, stride = row
        if state == 1:
            row[1] = 2
            row[3] = addr - last_addr
            row[2] = addr
            return None
        # META2: verify the stride; on mismatch restart the guess.  A
        # verified stride leaves the row untouched unless it allocates.
        delta = addr - last_addr
        if not (delta == stride and delta != 0):
            row[3] = delta
            row[2] = addr
            return None
        stride_blocks = self._block_stride(delta)
        if stride_blocks == 0:
            # Sub-block stride: the unit filter owns this case.
            return None
        if stride_blocks < 0 and not self.allow_negative:
            return None
        self.czone_table.remove(row)  # freed on stream detection
        self.detector_hits += 1
        block = addr >> self.block_bits
        return block + stride_blocks, stride_blocks

    def _min_delta_observe(self, addr: int) -> Optional[Tuple[int, int]]:
        best = None
        for past in self.md_history:
            delta = addr - past
            if delta == 0:
                continue
            if best is None or abs(delta) < abs(best):
                best = delta
        self.md_history.append(addr)
        if len(self.md_history) > self.md_entries:
            self.md_history.pop(0)
        if best is None:
            return None
        stride_blocks = self._block_stride(best)
        if stride_blocks == 0:
            return None
        if stride_blocks < 0 and not self.allow_negative:
            return None
        if abs(stride_blocks) > self.md_max_stride_blocks:
            return None
        self.detector_hits += 1
        block = addr >> self.block_bits
        return block + stride_blocks, stride_blocks

    # -- per-miss policy ------------------------------------------------

    def handle_miss(self, addr: int, block: int) -> str:
        result = self._lookup(block)
        if result != "miss":
            return result
        if self.unit_entries <= 0:
            # Section 5: allocate on every stream miss.
            self._allocate(block + 1, 1)
            self.allocations += 1
            return result
        if self._unit_observe(block):
            self._allocate(block + 1, 1)
            self.allocations += 1
            return result
        if self.detector == "czone":
            hit = self._czone_observe(addr)
        elif self.detector == "min-delta":
            hit = self._min_delta_observe(addr)
        else:
            hit = None
        if hit is not None:
            self._allocate(hit[0], hit[1])
            self.allocations += 1
        return result


class RefStreamPrefetcher:
    """Reference stream-buffer system driven by a miss-event stream."""

    def __init__(self, config):
        self.config = config
        self.data_lane = _RefLane(config, config.n_streams)
        self.ifetch_lane = (
            _RefLane(config, config.i_streams) if config.partitioned else self.data_lane
        )
        self.demand_misses = 0
        self.stream_hits = 0
        self.in_flight_matches = 0
        self.ifetch_misses = 0
        self.writebacks = 0

    def handle_event(self, addr: int, kind: int) -> str:
        """One miss event; returns 'hit'/'miss'/'in_flight'/'writeback'."""
        if kind == EV_WRITEBACK:
            self.writebacks += 1
            block = addr >> self.config.block_bits
            self.data_lane.invalidate(block)
            if self.ifetch_lane is not self.data_lane:
                self.ifetch_lane.invalidate(block)
            return "writeback"
        self.demand_misses += 1
        is_ifetch = kind == EV_IFETCH_MISS
        if is_ifetch:
            self.ifetch_misses += 1
        block = addr >> self.config.block_bits
        lane = self.ifetch_lane if is_ifetch else self.data_lane
        result = lane.handle_miss(addr, block)
        if result == "hit":
            self.stream_hits += 1
        elif result == "in_flight":
            self.in_flight_matches += 1
        return result

    def run(self, addrs: Sequence[int], kinds: Sequence[int]) -> Dict[str, object]:
        """Consume a miss-event stream; returns the final counters."""
        outcomes = []
        for addr, kind in zip(addrs, kinds):
            outcomes.append(self.handle_event(addr, kind))
        stats = self.finalize()
        stats["outcomes"] = outcomes
        return stats

    def finalize(self) -> Dict[str, object]:
        lanes = [self.data_lane]
        if self.ifetch_lane is not self.data_lane:
            lanes.append(self.ifetch_lane)
        totals = {
            "demand_misses": self.demand_misses,
            "stream_hits": self.stream_hits,
            "in_flight_matches": self.in_flight_matches,
            "ifetch_misses": self.ifetch_misses,
            "writebacks": self.writebacks,
            "prefetches_issued": 0,
            "prefetches_used": 0,
            "allocations": 0,
            "invalidations": 0,
            "unit_filter_hits": 0,
            "unit_filter_misses": 0,
            "detector_hits": 0,
        }
        hits_by_bucket = {bucket: 0 for bucket in _BUCKETS}
        streams_by_bucket = {bucket: 0 for bucket in _BUCKETS}
        zero_length = 0
        for lane in lanes:
            lane.finalize()
            totals["prefetches_issued"] += lane.prefetches_issued
            totals["prefetches_used"] += lane.prefetches_used
            totals["allocations"] += lane.allocations
            totals["invalidations"] += lane.invalidations
            totals["unit_filter_hits"] += lane.unit_hits
            totals["unit_filter_misses"] += lane.unit_misses
            totals["detector_hits"] += lane.detector_hits
            for bucket in _BUCKETS:
                hits_by_bucket[bucket] += lane.hits_by_bucket[bucket]
                streams_by_bucket[bucket] += lane.streams_by_bucket[bucket]
            zero_length += lane.zero_length_streams
        totals["lengths"] = {
            "hits_by_bucket": hits_by_bucket,
            "streams_by_bucket": streams_by_bucket,
            "zero_length_streams": zero_length,
        }
        # Bandwidth accounting (Table 2): EB relative to demand misses.
        useless = totals["prefetches_issued"] - totals["prefetches_used"]
        misses = totals["demand_misses"]
        totals["useless_prefetches"] = useless
        totals["eb_measured"] = 100.0 * useless / misses if misses else 0.0
        totals["eb_estimate"] = (
            100.0 * totals["allocations"] * self.config.depth / misses if misses else 0.0
        )
        return totals
