"""Golden reference models for the secondary-mechanism zoo.

Scalar, loop-per-event reimplementations of the ``repro.mechanisms``
semantics (victim cache, miss cache, serial hybrid stacks), written from
the docs/mechanisms.md contract with the same independence rules as
:mod:`repro.check.oracle`: **no code shared** with the production
implementations — only the frozen config dataclasses (pure data) and the
integer event encodings cross the boundary.  Plain lists with linear
search stand in for the production ``OrderedDict`` structures, and the
hybrid reference is *online per-event* serial composition, so the differ
also proves the production two-phase residual formulation equivalent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.check.oracle import (
    EV_IFETCH_MISS,
    EV_WRITEBACK,
    RefStreamPrefetcher,
)

__all__ = [
    "RefVictimCache",
    "RefMissCache",
    "RefHybridStack",
    "build_ref_mechanism",
    "MECH_COUNTERS",
]

#: Counter names every reference mechanism reports (the comparison
#: surface against ``MechStats``).
MECH_COUNTERS = (
    "demand_misses",
    "hits",
    "ifetch_misses",
    "writebacks",
    "invalidations",
    "allocations",
    "evictions",
    "writebacks_out",
    "prefetches_issued",
    "prefetches_used",
)


class _RefMechanism:
    """Shared counter plumbing for the reference mechanisms."""

    def __init__(self, config):
        self.config = config
        self.counters: Dict[str, int] = {name: 0 for name in MECH_COUNTERS}

    def handle_event(self, addr: int, kind: int) -> str:
        """One miss event; returns 'hit'/'miss'/'writeback'."""
        block = addr >> self.config.block_bits
        if kind == EV_WRITEBACK:
            self.counters["writebacks"] += 1
            self._writeback(block)
            return "writeback"
        self.counters["demand_misses"] += 1
        if kind == EV_IFETCH_MISS:
            self.counters["ifetch_misses"] += 1
        if self._demand(addr, block, kind):
            self.counters["hits"] += 1
            return "hit"
        return "miss"

    def run(self, addrs: Sequence[int], kinds: Sequence[int]) -> Dict[str, object]:
        outcomes = [self.handle_event(addr, kind) for addr, kind in zip(addrs, kinds)]
        stats = self.finalize()
        stats["outcomes"] = outcomes
        return stats

    def finalize(self) -> Dict[str, object]:
        return dict(self.counters)

    def _demand(self, addr: int, block: int, kind: int) -> bool:
        raise NotImplementedError

    def _writeback(self, block: int) -> None:
        raise NotImplementedError


class RefVictimCache(_RefMechanism):
    """Reference victim cache: shadow L1 tag array + FA LRU buffer.

    The buffer is a list of ``[block, dirty]`` pairs ordered LRU-first;
    shadow sets are block lists ordered LRU-first too (miss-order MRU
    replacement).  See docs/mechanisms.md for the event contract.
    """

    def __init__(self, config):
        super().__init__(config)
        self.shadow: List[List[int]] = [[] for _ in range(config.shadow_sets)]
        self.buffer: List[List] = []  # [block, dirty], index 0 = LRU

    def _demand(self, addr: int, block: int, kind: int) -> bool:
        hit = False
        for entry in self.buffer:
            if entry[0] == block:
                # Swap back into L1; the dirty bit travels with the block.
                self.buffer.remove(entry)
                hit = True
                break
        tags = self.shadow[block % self.config.shadow_sets]
        if block in tags:
            tags.remove(block)
            tags.append(block)
        else:
            tags.append(block)
            if len(tags) > self.config.shadow_assoc:
                self._insert_victim(tags.pop(0), False)
        return hit

    def _writeback(self, block: int) -> None:
        tags = self.shadow[block % self.config.shadow_sets]
        if block in tags:
            tags.remove(block)
        self._insert_victim(block, True)

    def _insert_victim(self, block: int, dirty: bool) -> None:
        self.counters["allocations"] += 1
        for entry in self.buffer:
            if entry[0] == block:
                entry[1] = entry[1] or dirty
                self.buffer.remove(entry)
                self.buffer.append(entry)
                return
        self.buffer.append([block, dirty])
        if len(self.buffer) > self.config.entries:
            old = self.buffer.pop(0)
            self.counters["evictions"] += 1
            if old[1]:
                self.counters["writebacks_out"] += 1


class RefMissCache(_RefMechanism):
    """Reference miss cache: FA LRU list of recently-missed blocks."""

    def __init__(self, config):
        super().__init__(config)
        self.buffer: List[int] = []  # index 0 = LRU

    def _demand(self, addr: int, block: int, kind: int) -> bool:
        if block in self.buffer:
            self.buffer.remove(block)
            self.buffer.append(block)
            return True
        self.buffer.append(block)
        self.counters["allocations"] += 1
        if len(self.buffer) > self.config.entries:
            self.buffer.pop(0)
            self.counters["evictions"] += 1
        return False

    def _writeback(self, block: int) -> None:
        if block in self.buffer:
            self.buffer.remove(block)
            self.counters["invalidations"] += 1


class _RefStreamMember:
    """RefStreamPrefetcher behind the reference-mechanism event surface."""

    def __init__(self, config):
        self.config = config
        self.prefetcher = RefStreamPrefetcher(config.streams)

    def handle_event(self, addr: int, kind: int) -> str:
        outcome = self.prefetcher.handle_event(addr, kind)
        # Only a true head hit services a miss; in-flight matches miss.
        return outcome if outcome in ("hit", "writeback") else "miss"

    def finalize(self) -> Dict[str, object]:
        totals = self.prefetcher.finalize()
        stats = {name: 0 for name in MECH_COUNTERS}
        stats["demand_misses"] = totals["demand_misses"]
        stats["hits"] = totals["stream_hits"]
        stats["ifetch_misses"] = totals["ifetch_misses"]
        stats["writebacks"] = totals["writebacks"]
        stats["invalidations"] = totals["invalidations"]
        stats["allocations"] = totals["allocations"]
        stats["prefetches_issued"] = totals["prefetches_issued"]
        stats["prefetches_used"] = totals["prefetches_used"]
        stats["streams"] = totals
        return stats


class RefHybridStack(_RefMechanism):
    """Reference hybrid: *online* serial composition, event by event.

    A demand miss probes members front to back and stops at the first
    hit; members behind never see it.  Write-backs pass every member.
    This is deliberately the online formulation — the production engine
    composes via two-phase residual traces, and the differ proves the
    formulations equivalent.
    """

    def __init__(self, config):
        super().__init__(config)
        self.members = [build_ref_mechanism(member) for member in config.members]

    def _demand(self, addr: int, block: int, kind: int) -> bool:
        # The raw address is forwarded untouched: stream members' stride
        # detectors key on sub-block byte-address bits.
        for member in self.members:
            if member.handle_event(addr, kind) == "hit":
                return True
        return False

    def _writeback(self, block: int) -> None:
        addr = block << self.config.block_bits
        for member in self.members:
            member.handle_event(addr, EV_WRITEBACK)

    def finalize(self) -> Dict[str, object]:
        stats = dict(self.counters)
        member_stats = [member.finalize() for member in self.members]
        for name in (
            "invalidations",
            "allocations",
            "evictions",
            "writebacks_out",
            "prefetches_issued",
            "prefetches_used",
        ):
            stats[name] = sum(ms[name] for ms in member_stats)
        stats["member_hits"] = [ms["hits"] for ms in member_stats]
        for ms in member_stats:
            if "streams" in ms:
                stats["streams"] = ms["streams"]
        return stats


def build_ref_mechanism(config):
    """Instantiate the reference model for a ``MechanismConfig``."""
    if config.kind == "victim":
        return RefVictimCache(config)
    if config.kind == "misscache":
        return RefMissCache(config)
    if config.kind == "hybrid":
        return RefHybridStack(config)
    if config.kind == "streams":
        return _RefStreamMember(config)
    raise ValueError(f"unknown mechanism kind {config.kind!r}")
