"""``REPRO_CHECK``-gated runtime invariants.

The optimized simulators call :func:`invariant` at structurally
interesting points (set occupancy, FIFO depth, LRU consistency, counter
conservation).  The checks are compiled away to a single attribute test
unless the environment variable ``REPRO_CHECK`` is set to something
other than ``""``/``"0"`` at import time (or :func:`set_enabled` flips
it at runtime, e.g. from tests).

This module must stay dependency-free: ``repro.caches`` and
``repro.core`` import it, so importing anything from those packages
here would create a cycle.
"""

from __future__ import annotations

import os

__all__ = ["ENABLED", "InvariantError", "invariant", "set_enabled"]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CHECK", "").strip() not in ("", "0")


#: Whether invariant checks run.  Hot loops read this once per call.
ENABLED: bool = _env_enabled()


class InvariantError(AssertionError):
    """An optimized simulator violated a structural invariant.

    Subclasses :class:`AssertionError` so test harnesses treat it as a
    failed assertion, but it is raised regardless of ``python -O``.
    """


def set_enabled(value: bool) -> bool:
    """Flip invariant checking at runtime; returns the previous value."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(value)
    return previous


def invariant(condition: bool, message: str, *args: object) -> None:
    """Raise :class:`InvariantError` if ``condition`` is false.

    ``message`` is a %-style format string applied to ``args`` lazily,
    so call sites pay no formatting cost on the happy path.
    """
    if condition:
        return
    raise InvariantError(message % args if args else message)
