"""Differential correctness harness.

Submodules:

* :mod:`repro.check.invariants` — ``REPRO_CHECK=1``-gated runtime
  assertions threaded into the optimized simulators.  Imported eagerly
  (it has no dependencies on the rest of the package, so the hot paths
  can check ``invariants.ENABLED`` cheaply).
* :mod:`repro.check.oracle` — golden reference models: deliberately
  simple, scalar, loop-per-access implementations of the caches and
  stream prefetcher, written from DESIGN.md/PAPER.md semantics and
  sharing no code with ``repro.caches``/``repro.core``.
* :mod:`repro.check.differ` — seeded random-trace/random-config
  differential testing of optimized vs oracle, with first-divergence
  localization.

``oracle`` and ``differ`` import the optimized simulators, so they are
*not* imported here; import them explicitly
(``from repro.check import differ``).
"""

from repro.check import invariants

__all__ = ["invariants"]
