"""The complete stream-buffer prefetch system.

:class:`StreamPrefetcher` wires the pieces of Sections 3, 6 and 7 together
and consumes the primary cache's miss stream:

* every demand miss is compared against the stream heads
  (:class:`~repro.core.bank.StreamBufferBank`);
* on a stream miss, the allocation policy decides whether to reallocate
  the LRU stream: unconditionally (Section 5), after the unit-stride
  filter confirms two consecutive-block misses (Section 6), or — for
  references the unit filter rejects — after the non-unit stride detector
  verifies a constant stride (Section 7);
* write-backs bypass the streams and invalidate stale copies.

The paper's MacroTek-style *partitioned* variant routes instruction-fetch
misses to a separate bank with its own filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.caches.cache import MissEventKind, MissTrace
from repro.check import invariants as _inv
from repro.core.bandwidth import BandwidthReport
from repro.core.bank import Lookup, StreamBufferBank
from repro.core.config import StreamConfig, StrideDetector
from repro.core.filters import UnitStrideFilter
from repro.core.lengths import StreamLengthHistogram
from repro.core.min_delta import MinDeltaDetector
from repro.core.nonunit import CzoneFilter

__all__ = ["StreamStats", "StreamPrefetcher"]


@dataclass
class StreamStats:
    """Counters produced by one prefetcher run.

    ``demand_misses`` are the primary-cache misses presented (the paper's
    hit-rate denominator); ``stream_hits`` the subset serviced by a stream
    head (the numerator).
    """

    config: StreamConfig
    demand_misses: int = 0
    stream_hits: int = 0
    in_flight_matches: int = 0
    ifetch_misses: int = 0
    writebacks: int = 0
    invalidations: int = 0
    prefetches_issued: int = 0
    prefetches_used: int = 0
    allocations: int = 0
    unit_filter_hits: int = 0
    unit_filter_misses: int = 0
    detector_hits: int = 0
    lengths: StreamLengthHistogram = field(default_factory=StreamLengthHistogram)

    @property
    def stream_misses(self) -> int:
        """Demand misses not serviced by a stream."""
        return self.demand_misses - self.stream_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of demand misses that hit in the streams (0..1)."""
        if not self.demand_misses:
            return 0.0
        return self.stream_hits / self.demand_misses

    @property
    def hit_rate_percent(self) -> float:
        return 100.0 * self.hit_rate

    @property
    def bandwidth(self) -> BandwidthReport:
        """Extra-bandwidth accounting for this run."""
        return BandwidthReport(
            prefetches_issued=self.prefetches_issued,
            prefetches_used=self.prefetches_used,
            l1_misses=self.demand_misses,
            allocations=self.allocations,
            depth=self.config.depth,
        )


class _Lane:
    """One bank plus its allocation machinery (unified or per-I/D)."""

    def __init__(self, config: StreamConfig, n_streams: int):
        self.bank = StreamBufferBank(
            n_streams=n_streams,
            depth=config.depth,
            min_lead=config.min_lead,
            lookup_depth=config.lookup_depth,
        )
        self.unit_filter: Optional[UnitStrideFilter] = (
            UnitStrideFilter(config.unit_filter_entries) if config.has_unit_filter else None
        )
        self.detector = None
        if config.stride_detector == StrideDetector.CZONE:
            self.detector = CzoneFilter(
                entries=config.czone_filter_entries,
                czone_bits=config.czone_bits,
                block_bits=config.block_bits,
                allow_negative=config.allow_negative_strides,
            )
        elif config.stride_detector == StrideDetector.MIN_DELTA:
            self.detector = MinDeltaDetector(
                entries=config.min_delta_entries,
                block_bits=config.block_bits,
                allow_negative=config.allow_negative_strides,
            )
        self.allocations = 0

    def handle_miss(self, addr: int, block: int) -> Lookup:
        """Run one demand miss through lookup + allocation policy."""
        result = self.bank.lookup(block)
        if result is not Lookup.MISS:
            return result
        if self.unit_filter is None:
            # Section 5: allocate on every stream miss.
            self.bank.allocate(block + 1, 1)
            self.allocations += 1
            return result
        if self.unit_filter.observe(block):
            self.bank.allocate(block + 1, 1)
            self.allocations += 1
            return result
        if self.detector is not None:
            hit = self.detector.observe(addr)
            if hit is not None:
                self.bank.allocate(hit.start_block, hit.stride_blocks)
                self.allocations += 1
        return result


class StreamPrefetcher:
    """Stream buffers + filters, driven by a primary-cache miss stream."""

    def __init__(self, config: StreamConfig):
        self.config = config
        self._data_lane = _Lane(config, config.n_streams)
        self._ifetch_lane = (
            _Lane(config, config.i_streams) if config.partitioned else self._data_lane
        )
        self.stats = StreamStats(config=config)

    # -- event API ---------------------------------------------------------

    def handle_miss(self, addr: int, is_ifetch: bool = False) -> Lookup:
        """Present one demand miss; returns the lookup outcome."""
        stats = self.stats
        stats.demand_misses += 1
        if is_ifetch:
            stats.ifetch_misses += 1
        block = addr >> self.config.block_bits
        lane = self._ifetch_lane if is_ifetch else self._data_lane
        result = lane.handle_miss(addr, block)
        if result is Lookup.HIT:
            stats.stream_hits += 1
        elif result is Lookup.IN_FLIGHT:
            stats.in_flight_matches += 1
        return result

    def handle_writeback(self, addr: int) -> int:
        """A dirty block travelling to memory; invalidate stale copies."""
        self.stats.writebacks += 1
        block = addr >> self.config.block_bits
        count = self._data_lane.bank.invalidate(block)
        if self._ifetch_lane is not self._data_lane:
            count += self._ifetch_lane.bank.invalidate(block)
        return count

    # -- bulk API ------------------------------------------------------------

    def run(self, miss_trace: MissTrace) -> StreamStats:
        """Consume a whole miss trace and return the final statistics.

        Raises:
            ValueError: if the miss trace's block geometry disagrees with
                the prefetcher configuration.
        """
        if miss_trace.block_bits != self.config.block_bits:
            raise ValueError(
                f"miss trace block_bits {miss_trace.block_bits} != "
                f"config block_bits {self.config.block_bits}"
            )
        wb_kind = int(MissEventKind.WRITEBACK)
        ifetch_kind = int(MissEventKind.IFETCH_MISS)
        kinds = miss_trace.kinds
        if not (miss_trace.has_writebacks or miss_trace.has_ifetch_misses):
            # Fast path: a pure demand-miss stream (no write-backs, no
            # instruction fetches) needs no per-event kind dispatch — every
            # event is a data miss on the data lane.  Semantics are
            # identical to handle_miss; only the dispatch is hoisted.
            stats = self.stats
            block_bits = self.config.block_bits
            lane_handle = self._data_lane.handle_miss
            hit = Lookup.HIT
            in_flight = Lookup.IN_FLIGHT
            hits = 0
            in_flight_matches = 0
            for addr in miss_trace.addrs.tolist():
                result = lane_handle(addr, addr >> block_bits)
                if result is hit:
                    hits += 1
                elif result is in_flight:
                    in_flight_matches += 1
            stats.demand_misses += len(miss_trace)
            stats.stream_hits += hits
            stats.in_flight_matches += in_flight_matches
            return self.finalize()
        handle_miss = self.handle_miss
        handle_writeback = self.handle_writeback
        for addr, kind in zip(miss_trace.addrs.tolist(), kinds.tolist()):
            if kind == wb_kind:
                handle_writeback(addr)
            else:
                handle_miss(addr, is_ifetch=kind == ifetch_kind)
        return self.finalize()

    def finalize(self) -> StreamStats:
        """Close out the run: fold bank counters into the stats object."""
        lanes = [self._data_lane]
        if self._ifetch_lane is not self._data_lane:
            lanes.append(self._ifetch_lane)
        stats = self.stats
        stats.prefetches_issued = 0
        stats.prefetches_used = 0
        stats.allocations = 0
        stats.invalidations = 0
        stats.unit_filter_hits = 0
        stats.unit_filter_misses = 0
        stats.detector_hits = 0
        stats.lengths = StreamLengthHistogram()
        for lane in lanes:
            lane.bank.finalize()
            stats.prefetches_issued += lane.bank.prefetches_issued
            stats.prefetches_used += lane.bank.prefetches_used
            stats.allocations += lane.allocations
            stats.invalidations += lane.bank.invalidations
            if lane.unit_filter is not None:
                stats.unit_filter_hits += lane.unit_filter.hits
                stats.unit_filter_misses += lane.unit_filter.misses
            if lane.detector is not None:
                stats.detector_hits += lane.detector.hits
            for bucket, hits in lane.bank.lengths.hits_by_bucket.items():
                stats.lengths.hits_by_bucket[bucket] += hits
            for bucket, count in lane.bank.lengths.streams_by_bucket.items():
                stats.lengths.streams_by_bucket[bucket] += count
            stats.lengths.zero_length_streams += lane.bank.lengths.zero_length_streams
        if _inv.ENABLED:
            self._check_invariants(stats)
        return stats

    @staticmethod
    def _check_invariants(stats: StreamStats) -> None:
        """Conservation checks on a finalized run (``REPRO_CHECK=1``).

        Every consumed prefetch serviced either a stream hit or an
        in-flight coalesce, each consumption advanced exactly one
        stream's length counter (so the Table 3 histogram conserves),
        and nothing is consumed that was never issued.
        """
        _inv.invariant(
            stats.prefetches_used == stats.stream_hits + stats.in_flight_matches,
            "prefetches_used %d != stream_hits %d + in_flight_matches %d",
            stats.prefetches_used,
            stats.stream_hits,
            stats.in_flight_matches,
        )
        _inv.invariant(
            stats.lengths.total_hits == stats.prefetches_used,
            "length histogram holds %d hits but %d prefetches were consumed",
            stats.lengths.total_hits,
            stats.prefetches_used,
        )
        _inv.invariant(
            stats.prefetches_used <= stats.prefetches_issued,
            "prefetches_used %d exceeds prefetches_issued %d",
            stats.prefetches_used,
            stats.prefetches_issued,
        )
        _inv.invariant(
            stats.stream_hits + stats.in_flight_matches <= stats.demand_misses,
            "stream hits %d + in-flight %d exceed demand misses %d",
            stats.stream_hits,
            stats.in_flight_matches,
            stats.demand_misses,
        )
        _inv.invariant(
            stats.lengths.total_streams == stats.allocations,
            "completed streams %d != allocations %d after finalize",
            stats.lengths.total_streams,
            stats.allocations,
        )
