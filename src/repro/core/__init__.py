"""The paper's contribution: stream buffers, filters and stride detection."""

from repro.core.bandwidth import (
    BandwidthReport,
    extra_bandwidth_estimate,
    extra_bandwidth_measured,
)
from repro.core.bank import Lookup, StreamBufferBank
from repro.core.config import StreamConfig, StrideDetector
from repro.core.filters import UnitStrideFilter
from repro.core.lengths import LENGTH_BUCKETS, StreamLengthHistogram, bucket_label, bucket_of
from repro.core.min_delta import MinDeltaDetector
from repro.core.nonunit import CzoneFilter, StrideHit
from repro.core.prefetcher import StreamPrefetcher, StreamStats
from repro.core.stream_buffer import StreamBuffer, StreamEntry
from repro.core.stride_fsm import FsmState, StrideFsm

__all__ = [
    "BandwidthReport",
    "CzoneFilter",
    "FsmState",
    "LENGTH_BUCKETS",
    "Lookup",
    "MinDeltaDetector",
    "StreamBuffer",
    "StreamBufferBank",
    "StreamConfig",
    "StreamEntry",
    "StreamLengthHistogram",
    "StreamPrefetcher",
    "StreamStats",
    "StrideDetector",
    "StrideFsm",
    "StrideHit",
    "UnitStrideFilter",
    "bucket_label",
    "bucket_of",
    "extra_bandwidth_estimate",
    "extra_bandwidth_measured",
]
