"""The unit-stride allocation filter (paper Section 6, Figure 4).

Ordinary streams allocate on *every* stream miss, wasting memory bandwidth
on isolated references.  The filter delays allocation until two misses to
consecutive cache blocks are observed: a history buffer stores ``a+1`` for
each miss to block ``a``; a later miss that matches a stored entry proves
the pattern ``a, a+1`` and triggers allocation (the stream then prefetches
``a+2, a+3, ...``).  Entries are freed as soon as their stream is detected;
the buffer replaces the oldest entry when full (the paper found eight to
ten entries sufficient and uses sixteen in Figure 5).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

__all__ = ["UnitStrideFilter"]


class UnitStrideFilter:
    """History buffer of expected-next block addresses.

    Attributes:
        hits: matches (each triggers a stream allocation).
        misses: non-matches (each inserts a new expectation).
    """

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        self.capacity = entries
        self.hits = 0
        self.misses = 0
        # expected next block -> None, insertion order (oldest first).
        self._table: "OrderedDict[int, None]" = OrderedDict()

    def observe(self, block: int) -> bool:
        """Present a stream-missing block address.

        Returns:
            True if a stream should be allocated (the block completed a
            consecutive pair); False otherwise (an expectation for
            ``block + 1`` was recorded instead).
        """
        if block in self._table:
            del self._table[block]  # freed as soon as the stream is detected
            self.hits += 1
            return True
        self.misses += 1
        expected = block + 1
        if expected in self._table:
            # Refresh rather than duplicate: move to newest position so a
            # live pattern is not evicted early.
            self._table.move_to_end(expected)
            return False
        if len(self._table) >= self.capacity:
            self._table.popitem(last=False)
        self._table[expected] = None
        return False

    def contents(self) -> List[int]:
        """Expected-next blocks, oldest first (for tests/inspection)."""
        return list(self._table)

    def __len__(self) -> int:
        return len(self._table)
