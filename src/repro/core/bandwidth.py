"""Extra-bandwidth (EB) accounting (paper Sections 5-6, Table 2).

Streams speculate: every prefetched block that is never consumed wasted
main-memory bandwidth.  The paper quantifies the waste relative to the
memory traffic the program needs *without* streams — its primary-cache
miss fetches:

    EB = useless prefetches / primary-cache misses

and derives closed-form estimates from the allocation policy:

* without a filter, every stream miss allocates (flushing up to ``depth``
  outstanding prefetches), so useless ≈ stream_misses × depth;
* with the filter, only filter hits allocate, so useless ≈
  filter_allocations × depth.

We report both the estimate and an exact measurement (prefetches issued
minus prefetches consumed, which also captures entries invalidated by
write-backs and entries left in the FIFOs at the end of the run).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["extra_bandwidth_measured", "extra_bandwidth_estimate", "BandwidthReport"]


def extra_bandwidth_measured(useless_prefetches: int, l1_misses: int) -> float:
    """Measured EB as a percentage (0.0 when there were no misses)."""
    if useless_prefetches < 0:
        raise ValueError(f"useless_prefetches must be non-negative, got {useless_prefetches}")
    if l1_misses < 0:
        raise ValueError(f"l1_misses must be non-negative, got {l1_misses}")
    if not l1_misses:
        return 0.0
    return 100.0 * useless_prefetches / l1_misses


def extra_bandwidth_estimate(allocations: int, depth: int, l1_misses: int) -> float:
    """The paper's closed-form EB estimate as a percentage.

    ``allocations`` is the number of stream (re)allocations: equal to the
    stream misses without a filter, or to the filter hits with one.
    """
    if allocations < 0:
        raise ValueError(f"allocations must be non-negative, got {allocations}")
    if depth <= 0:
        raise ValueError(f"depth must be positive, got {depth}")
    if not l1_misses:
        return 0.0
    return 100.0 * allocations * depth / l1_misses


@dataclass(frozen=True)
class BandwidthReport:
    """EB summary for one run.

    Attributes:
        prefetches_issued: blocks fetched by streams.
        prefetches_used: issued blocks consumed by hits.
        l1_misses: demand misses (the no-streams traffic baseline).
        allocations: stream (re)allocations performed.
        depth: stream depth (for the estimate).
    """

    prefetches_issued: int
    prefetches_used: int
    l1_misses: int
    allocations: int
    depth: int

    @property
    def useless_prefetches(self) -> int:
        return self.prefetches_issued - self.prefetches_used

    @property
    def eb_measured(self) -> float:
        """Exact EB percentage."""
        return extra_bandwidth_measured(self.useless_prefetches, self.l1_misses)

    @property
    def eb_estimate(self) -> float:
        """The paper's closed-form EB percentage."""
        return extra_bandwidth_estimate(self.allocations, self.depth, self.l1_misses)

    @property
    def traffic_ratio(self) -> float:
        """Total fetched blocks (demand + prefetch) over demand blocks.

        1.0 means no overhead; the paper's EB relates as
        ``traffic_ratio = 1 + EB/100`` when every demand miss fetches.
        """
        if not self.l1_misses:
            return 1.0
        # Demand fetches not covered by prefetching plus all prefetches.
        demand_fetches = self.l1_misses - self.prefetches_used
        return (demand_fetches + self.prefetches_issued) / self.l1_misses
