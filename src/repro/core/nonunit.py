"""Non-unit stride detection via address-space partitioning (Section 7).

Off-chip logic cannot see the program counter, so per-instruction stride
tables (Baer & Chen) are unavailable.  The paper instead partitions the
physical address space: the low ``czone_bits`` of an address are the
*concentration zone* and the remaining high bits the partition *tag*.
Misses that share a tag are assumed to come from the same array walk and
are fed to a per-partition :class:`~repro.core.stride_fsm.StrideFsm`.  Once
the FSM verifies a constant stride, a stream is allocated with that stride
and the filter entry is freed.

The czone size matters (Figure 9): too small and three consecutive strided
references straddle partitions; too large and unrelated walks alias into
one partition and keep breaking the FSM.  The paper suggests a little more
than twice the access stride, set by software via a memory-mapped mask.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.core.stride_fsm import StrideFsm

__all__ = ["StrideHit", "CzoneFilter"]


@dataclass(frozen=True)
class StrideHit:
    """A verified stride, ready for stream allocation.

    Attributes:
        start_block: first block the new stream should prefetch.
        stride_blocks: stream stride in blocks (may be negative).
        stride_bytes: the raw verified byte stride.
    """

    start_block: int
    stride_blocks: int
    stride_bytes: int


class CzoneFilter:
    """The non-unit stride filter: partition table + per-entry FSM.

    Attributes:
        hits: verified strides returned (allocations triggered).
        observations: miss addresses presented.
        sub_block_rejections: verified strides too small to advance a
            whole block (no allocation; the unit filter owns that case).
    """

    def __init__(
        self,
        entries: int,
        czone_bits: int,
        block_bits: int,
        allow_negative: bool = True,
    ):
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if czone_bits < block_bits:
            raise ValueError(
                f"czone_bits ({czone_bits}) must be >= block_bits ({block_bits})"
            )
        self.capacity = entries
        self.czone_bits = czone_bits
        self.block_bits = block_bits
        self.allow_negative = allow_negative
        self.hits = 0
        self.observations = 0
        self.sub_block_rejections = 0
        self.negative_rejections = 0
        # partition tag -> FSM, insertion order (oldest first).
        self._table: "OrderedDict[int, StrideFsm]" = OrderedDict()

    def observe(self, addr: int) -> Optional[StrideHit]:
        """Present a miss address that missed the unit-stride filter.

        Returns:
            A :class:`StrideHit` when this address completes a verified
            stride (the entry is freed), else None.
        """
        self.observations += 1
        tag = addr >> self.czone_bits
        fsm = self._table.get(tag)
        if fsm is None:
            if len(self._table) >= self.capacity:
                self._table.popitem(last=False)
            self._table[tag] = StrideFsm.starting_at(addr)
            return None
        stride_bytes = fsm.observe(addr)
        if stride_bytes is None:
            return None
        stride_blocks = self._block_stride(stride_bytes)
        if stride_blocks == 0:
            # A verified sub-block stride: consecutive misses this close
            # belong to the unit-stride case; keep watching.
            self.sub_block_rejections += 1
            return None
        if stride_blocks < 0 and not self.allow_negative:
            self.negative_rejections += 1
            return None
        del self._table[tag]  # freed on stream detection, like the unit filter
        self.hits += 1
        block = addr >> self.block_bits
        return StrideHit(
            start_block=block + stride_blocks,
            stride_blocks=stride_blocks,
            stride_bytes=stride_bytes,
        )

    def _block_stride(self, delta_bytes: int) -> int:
        """Byte stride -> block stride, rounding toward zero."""
        if delta_bytes >= 0:
            return delta_bytes >> self.block_bits
        return -((-delta_bytes) >> self.block_bits)

    def active_partitions(self) -> List[int]:
        """Partition tags currently tracked, oldest first."""
        return list(self._table)

    def __len__(self) -> int:
        return len(self._table)
