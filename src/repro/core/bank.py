"""Multi-way stream buffers (paper Section 3).

The bank holds ``n_streams`` stream buffers.  A primary-cache miss address
is compared with the head of every stream in parallel; a hit pulls the
block into the primary cache and advances that stream; a miss (under the
no-filter policy) flushes the least recently used stream and reallocates
it to the miss target.  The bank owns all prefetch-bandwidth accounting
and the Table 3 stream-length histogram.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.check import invariants as _inv
from repro.core.lengths import StreamLengthHistogram
from repro.core.stream_buffer import StreamBuffer

__all__ = ["Lookup", "StreamBufferBank"]


class Lookup(enum.IntEnum):
    """Outcome of presenting a miss address to the bank."""

    MISS = 0
    HIT = 1
    #: The head matched but, under the ``min_lead`` latency model, the
    #: prefetched data has not returned yet.  The demand fetch coalesces
    #: with the in-flight prefetch: the stream advances and the prefetch
    #: counts as used bandwidth, but the reference is *not* a stream hit
    #: and no stream should be (re)allocated for it.
    IN_FLIGHT = 2


class StreamBufferBank:
    """A set of stream buffers with LRU reallocation.

    Attributes:
        prefetches_issued: blocks fetched from memory by any stream.
        prefetches_used: issued blocks later consumed by a head hit.
        hits: head hits serviced.
        lookups: miss addresses presented.
        invalidations: entries invalidated by write-backs.
        lengths: completed-stream length histogram (Table 3).
    """

    def __init__(
        self,
        n_streams: int,
        depth: int,
        min_lead: int = 0,
        lookup_depth: int = 1,
    ):
        if n_streams <= 0:
            raise ValueError(f"n_streams must be positive, got {n_streams}")
        if not 1 <= lookup_depth <= depth:
            raise ValueError(
                f"lookup_depth must be in [1, depth]; got {lookup_depth} with depth {depth}"
            )
        self._lookup_depth = lookup_depth
        self._streams = [StreamBuffer(depth) for _ in range(n_streams)]
        # Parallel head-block cache for fast comparator scans; None when a
        # stream is inactive or its head is invalid.
        self._heads: List[Optional[int]] = [None] * n_streams
        # LRU order of stream indices, least recent first.
        self._lru: List[int] = list(range(n_streams))
        self._min_lead = min_lead
        self._seq = 0  # demand-miss sequence number for the latency model
        self.prefetches_issued = 0
        self.prefetches_used = 0
        self.hits = 0
        self.lookups = 0
        self.invalidations = 0
        self.lengths = StreamLengthHistogram()

    @property
    def n_streams(self) -> int:
        return len(self._streams)

    @property
    def depth(self) -> int:
        return self._streams[0].depth

    @property
    def prefetches_useless(self) -> int:
        """Issued prefetches never consumed (flushed, stale or residual)."""
        return self.prefetches_issued - self.prefetches_used

    def streams(self) -> List[StreamBuffer]:
        """The underlying buffers (index order, not LRU order)."""
        return list(self._streams)

    def lru_order(self) -> List[int]:
        """Stream indices, least recently used first."""
        return list(self._lru)

    # -- operations -----------------------------------------------------------

    def lookup(self, block: int) -> Lookup:
        """Present a primary-cache miss to the bank.

        On a head hit the stream advances and issues a replacement
        prefetch.  Allocation on a miss is the caller's decision (the
        filters of Sections 6-7 gate it), via :meth:`allocate`.
        """
        self.lookups += 1
        self._seq += 1
        try:
            index = self._heads.index(block)
        except ValueError:
            index = self._deep_find(block)
            if index < 0:
                return Lookup.MISS
        stream = self._streams[index]
        result = Lookup.HIT
        if self._min_lead:
            head = stream.head
            assert head is not None  # _heads said so
            if self._seq - head.issue_seq < self._min_lead:
                result = Lookup.IN_FLIGHT
        if result is Lookup.HIT:
            self.hits += 1
        # Either way the entry's data is consumed (for IN_FLIGHT, the
        # demand fetch coalesces with the prefetch), so the prefetch was
        # not wasted bandwidth and the stream advances.
        self.prefetches_used += 1
        stream.consume_head(issue_seq=self._seq)
        self.prefetches_issued += 1
        self._heads[index] = self._current_head(index)
        self._touch(index)
        if _inv.ENABLED:
            self.check_invariants()
        return result

    def allocate(self, start_block: int, stride: int) -> int:
        """Reallocate the LRU stream to prefetch ``start_block``, +stride...

        Returns the index of the stream used.
        """
        index = self._lru[0]
        stream = self._streams[index]
        if stream.active:
            self.lengths.record(stream.hits_since_alloc)
        stream.flush()
        issued = stream.allocate(start_block, stride, issue_seq=self._seq)
        self.prefetches_issued += len(issued)
        self._heads[index] = self._current_head(index)
        self._touch(index)
        if _inv.ENABLED:
            self.check_invariants()
        return index

    def invalidate(self, block: int) -> int:
        """Invalidate stale copies of ``block`` in every stream.

        Called for write-backs travelling to memory (paper Section 3).
        Returns the number of entries invalidated.
        """
        count = 0
        for index, stream in enumerate(self._streams):
            invalidated = stream.invalidate(block)
            if invalidated:
                count += invalidated
                self._heads[index] = self._current_head(index)
        self.invalidations += count
        if _inv.ENABLED:
            self.check_invariants()
        return count

    def finalize(self) -> None:
        """Record the lengths of still-active streams (end of simulation)."""
        for index, stream in enumerate(self._streams):
            if stream.active:
                self.lengths.record(stream.hits_since_alloc)
                stream.flush()
                self._heads[index] = None

    def check_invariants(self) -> None:
        """Structural self-checks (``REPRO_CHECK=1`` runs these per op).

        Verified: FIFO depth bounds (an active stream is exactly
        ``depth`` deep, an inactive one empty), LRU-list consistency (a
        permutation of the stream indices), head-cache agreement, and
        counter conservation.
        """
        depth = self.depth
        for index, stream in enumerate(self._streams):
            occupancy = len(stream)
            if stream.active:
                _inv.invariant(
                    occupancy == depth,
                    "active stream %d holds %d entries, expected depth %d",
                    index,
                    occupancy,
                    depth,
                )
            else:
                _inv.invariant(
                    occupancy == 0,
                    "inactive stream %d still holds %d entries",
                    index,
                    occupancy,
                )
            _inv.invariant(
                self._heads[index] == self._current_head(index),
                "head cache for stream %d (%r) disagrees with the FIFO (%r)",
                index,
                self._heads[index],
                self._current_head(index),
            )
        _inv.invariant(
            sorted(self._lru) == list(range(len(self._streams))),
            "LRU list %r is not a permutation of the stream indices",
            self._lru,
        )
        _inv.invariant(
            self.prefetches_used <= self.prefetches_issued,
            "prefetches_used %d exceeds prefetches_issued %d",
            self.prefetches_used,
            self.prefetches_issued,
        )
        _inv.invariant(
            self.hits <= self.prefetches_used,
            "hits %d exceed consumed prefetches %d",
            self.hits,
            self.prefetches_used,
        )
        _inv.invariant(
            self.hits <= self.lookups,
            "hits %d exceed lookups %d",
            self.hits,
            self.lookups,
        )

    # -- internals --------------------------------------------------------

    def _deep_find(self, block: int) -> int:
        """Quasi-associative lookup past the head (``lookup_depth`` > 1).

        On a match at position k > 0, the k stale entries ahead of it
        are skipped (their prefetches were wasted) and the FIFO is
        topped back up; the caller then services the match as a normal
        head hit.  Returns the stream index, or -1.
        """
        if self._lookup_depth <= 1:
            return -1
        for index, stream in enumerate(self._streams):
            position = stream.find(block, self._lookup_depth)
            if position > 0:
                stream.skip(position)
                issued = stream.refill(issue_seq=self._seq)
                self.prefetches_issued += len(issued)
                self._heads[index] = self._current_head(index)
                return index
        return -1

    def _current_head(self, index: int) -> Optional[int]:
        head = self._streams[index].head
        if head is None or not head.valid:
            return None
        return head.block

    def _touch(self, index: int) -> None:
        """Move stream ``index`` to the most-recently-used position."""
        self._lru.remove(index)
        self._lru.append(index)
