"""A single stream buffer (paper Figure 2).

Each stream buffer is a FIFO of prefetched cache-block entries.  An entry
holds the block's tag plus a valid bit (we do not model the data bytes —
only addresses matter for hit/miss behaviour).  An adder generates the next
prefetch address; for the paper's original unit-stride streams the adder is
an incrementer (stride 1); the Section 7 extension stores a stride field
and uses a general adder.

The processor's miss address is compared against the *head* of the FIFO
only.  On a head hit the entry is popped, handed to the primary cache, and
a new prefetch is issued to keep the buffer ``depth`` deep.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

__all__ = ["StreamEntry", "StreamBuffer"]


@dataclass
class StreamEntry:
    """One slot of a stream buffer FIFO.

    Attributes:
        block: prefetched block address (the tag in Figure 2).
        valid: cleared when a write-back invalidates a stale copy.
        issue_seq: global miss sequence number when the prefetch was
            issued; used by the optional latency ("min lead") model.
    """

    block: int
    valid: bool = True
    issue_seq: int = 0


class StreamBuffer:
    """One FIFO prefetch buffer.

    A buffer is inactive until :meth:`allocate` points it at a miss
    target.  Prefetch issue is reported to the caller (the bank) through
    return values so that a single component owns bandwidth accounting.
    """

    def __init__(self, depth: int):
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.depth = depth
        self.active = False
        self.stride = 1
        self.hits_since_alloc = 0
        self._fifo: Deque[StreamEntry] = deque()
        self._next_block = 0  # block the adder would prefetch next

    # -- state inspection ---------------------------------------------------

    @property
    def head(self) -> Optional[StreamEntry]:
        """The entry the comparator sees, or None when empty/inactive."""
        if not self.active or not self._fifo:
            return None
        return self._fifo[0]

    def head_matches(self, block: int) -> bool:
        """Would a miss on ``block`` hit this stream?"""
        head = self.head
        return head is not None and head.valid and head.block == block

    def find(self, block: int, lookup_depth: int = 1) -> int:
        """Position of ``block`` within the first ``lookup_depth`` entries.

        Position 0 is the head.  Returns -1 when absent (or invalid).
        ``lookup_depth=1`` is the paper's head-only comparator; larger
        values model a quasi-associative buffer that can skip entries a
        lucky primary-cache hit made stale (see ``StreamConfig.lookup_depth``).
        """
        if not self.active:
            return -1
        for position, entry in enumerate(self._fifo):
            if position >= lookup_depth:
                break
            if entry.valid and entry.block == block:
                return position
        return -1

    def skip(self, count: int) -> int:
        """Drop ``count`` entries from the head without consuming them.

        Used when a deeper-entry match skips past stale entries; the
        dropped prefetches were wasted.  Returns the number dropped.

        Raises:
            ValueError: if ``count`` exceeds the FIFO occupancy.
        """
        if count < 0 or count > len(self._fifo):
            raise ValueError(f"cannot skip {count} of {len(self._fifo)} entries")
        for _ in range(count):
            self._fifo.popleft()
        return count

    def entries(self) -> List[StreamEntry]:
        """Snapshot of the FIFO, head first."""
        return list(self._fifo)

    def __len__(self) -> int:
        return len(self._fifo)

    # -- operations -----------------------------------------------------------

    def allocate(self, start_block: int, stride: int, issue_seq: int = 0) -> List[int]:
        """(Re)allocate the stream to prefetch ``start_block``, +stride, ...

        Any entries still in the FIFO are discarded (the caller counts
        them as useless prefetches via :meth:`flush`).

        Returns:
            The block addresses of the ``depth`` prefetches issued.

        Raises:
            ValueError: if ``stride`` is zero (a stream that never
                advances is meaningless).
        """
        if stride == 0:
            raise ValueError("stream stride must be non-zero")
        self._fifo.clear()
        self.active = True
        self.stride = stride
        self.hits_since_alloc = 0
        issued = []
        block = start_block
        for _ in range(self.depth):
            self._fifo.append(StreamEntry(block=block, issue_seq=issue_seq))
            issued.append(block)
            block += stride
        self._next_block = block
        return issued

    def flush(self) -> int:
        """Deactivate the stream; return the number of entries discarded."""
        discarded = len(self._fifo)
        self._fifo.clear()
        self.active = False
        self.hits_since_alloc = 0
        return discarded

    def consume_head(self, issue_seq: int = 0) -> int:
        """Service a head hit: pop the head, issue the next prefetch.

        Returns:
            The block address of the newly issued prefetch.

        Raises:
            RuntimeError: if the stream is inactive or empty.
        """
        if not self.active or not self._fifo:
            raise RuntimeError("consume_head on an inactive or empty stream")
        self._fifo.popleft()
        self.hits_since_alloc += 1
        issued_block = self._next_block
        self._fifo.append(StreamEntry(block=issued_block, issue_seq=issue_seq))
        self._next_block = issued_block + self.stride
        return issued_block

    def refill(self, issue_seq: int = 0) -> List[int]:
        """Top the FIFO back up to ``depth`` entries (after skips).

        Returns the block addresses of the prefetches issued.
        """
        if not self.active:
            raise RuntimeError("refill on an inactive stream")
        issued = []
        while len(self._fifo) < self.depth:
            block = self._next_block
            self._fifo.append(StreamEntry(block=block, issue_seq=issue_seq))
            issued.append(block)
            self._next_block = block + self.stride
        return issued

    def invalidate(self, block: int) -> int:
        """Invalidate entries holding ``block`` (write-back coherence).

        Returns:
            The number of entries invalidated (0 or 1 in practice; a
            stream never holds duplicates, but the scan is general).
        """
        count = 0
        for entry in self._fifo:
            if entry.valid and entry.block == block:
                entry.valid = False
                count += 1
        return count
