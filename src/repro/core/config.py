"""Stream buffer system configuration.

One frozen dataclass carries every knob of the paper's design space:

* number of streams and their depth (Section 3; depth fixed at 2 in the
  paper),
* the unit-stride allocation filter (Section 6; 16 entries in Figure 5),
* the non-unit stride ("czone") filter (Section 7; 16 entries, czone size
  swept in Figure 9), or the alternative minimum-delta detector,
* extensions beyond the paper: negative strides, a prefetch-latency model
  (the Section 8 caveat) and partitioned I/D streams (the MacroTek
  variant mentioned in Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["StreamConfig", "StrideDetector"]


class StrideDetector:
    """Names for the non-unit stride detection scheme choices."""

    NONE = "none"
    CZONE = "czone"
    MIN_DELTA = "min-delta"

    ALL = (NONE, CZONE, MIN_DELTA)


@dataclass(frozen=True)
class StreamConfig:
    """Full configuration of a stream-buffer prefetch system.

    Attributes:
        n_streams: number of stream buffers (paper sweeps 1-10, settles
            on 10 for Sections 6-8).
        depth: prefetched entries per stream (paper: 2).
        block_bits: log2 of the cache block size in bytes.
        unit_filter_entries: history-buffer entries for the unit-stride
            allocation filter; 0 disables the filter (Section 5
            behaviour), 16 is the paper's Figure 5 setting.
        stride_detector: non-unit stride scheme — ``none``, ``czone``
            (paper Section 7) or ``min-delta`` (Section 7 alternative).
        czone_filter_entries: entries in the non-unit stride filter.
        czone_bits: low-order byte-address bits forming the concentration
            zone (Figure 9 sweeps 10-26).
        min_delta_entries: history entries for the minimum-delta scheme.
        allow_negative_strides: accept descending strides from the stride
            detector (extension; the paper is silent on sign).
        min_lead: latency extension — a stream entry only counts as a hit
            if at least this many demand misses occurred since its
            prefetch was issued (0 reproduces the paper's assumption that
            prefetched data is always available, per its Section 8
            caveat).
        partitioned: use separate instruction and data stream banks
            (MacroTek variant); the paper's streams are unified.
        i_streams: streams in the instruction bank when ``partitioned``
            (the data bank gets ``n_streams``); ignored otherwise.
        lookup_depth: entries compared per stream (extension; the paper
            compares the head only).  Values > 1 model a
            quasi-associative buffer that can skip entries made stale
            by lucky primary-cache hits, at the cost of ``lookup_depth``
            comparators per stream.
    """

    n_streams: int = 10
    depth: int = 2
    block_bits: int = 6
    unit_filter_entries: int = 0
    stride_detector: str = StrideDetector.NONE
    czone_filter_entries: int = 16
    czone_bits: int = 16
    min_delta_entries: int = 16
    allow_negative_strides: bool = True
    min_lead: int = 0
    partitioned: bool = False
    i_streams: int = 2
    lookup_depth: int = 1

    def __post_init__(self) -> None:
        if self.n_streams <= 0:
            raise ValueError(f"n_streams must be positive, got {self.n_streams}")
        if self.depth <= 0:
            raise ValueError(f"depth must be positive, got {self.depth}")
        if self.block_bits < 0:
            raise ValueError(f"block_bits must be non-negative, got {self.block_bits}")
        if self.unit_filter_entries < 0:
            raise ValueError(
                f"unit_filter_entries must be non-negative, got {self.unit_filter_entries}"
            )
        if self.stride_detector not in StrideDetector.ALL:
            raise ValueError(
                f"unknown stride_detector {self.stride_detector!r}; "
                f"expected one of {StrideDetector.ALL}"
            )
        if self.czone_filter_entries <= 0:
            raise ValueError(
                f"czone_filter_entries must be positive, got {self.czone_filter_entries}"
            )
        if self.czone_bits < self.block_bits:
            raise ValueError(
                f"czone_bits ({self.czone_bits}) must be at least block_bits "
                f"({self.block_bits}): a concentration zone smaller than a "
                "block can never see two distinct miss blocks"
            )
        if self.min_delta_entries <= 0:
            raise ValueError(
                f"min_delta_entries must be positive, got {self.min_delta_entries}"
            )
        if self.min_lead < 0:
            raise ValueError(f"min_lead must be non-negative, got {self.min_lead}")
        if self.i_streams <= 0:
            raise ValueError(f"i_streams must be positive, got {self.i_streams}")
        if not 1 <= self.lookup_depth <= self.depth:
            raise ValueError(
                f"lookup_depth must be in [1, depth]; got {self.lookup_depth} "
                f"with depth {self.depth}"
            )
        if self.stride_detector != StrideDetector.NONE and not self.has_unit_filter:
            raise ValueError(
                "a non-unit stride detector sits behind the unit-stride filter "
                "(paper Section 7); set unit_filter_entries > 0"
            )

    @property
    def has_unit_filter(self) -> bool:
        return self.unit_filter_entries > 0

    @property
    def block_size(self) -> int:
        return 1 << self.block_bits

    # -- the paper's named configurations ---------------------------------

    @classmethod
    def jouppi(cls, n_streams: int = 10, depth: int = 2) -> "StreamConfig":
        """Original unfiltered unit-stride streams (Section 5)."""
        return cls(n_streams=n_streams, depth=depth)

    @classmethod
    def filtered(cls, n_streams: int = 10, entries: int = 16) -> "StreamConfig":
        """Unit-stride streams behind the allocation filter (Section 6)."""
        return cls(n_streams=n_streams, unit_filter_entries=entries)

    @classmethod
    def non_unit(
        cls,
        n_streams: int = 10,
        czone_bits: int = 16,
        entries: int = 16,
    ) -> "StreamConfig":
        """Filtered unit-stride streams plus the czone stride detector
        (Section 7: a 16-entry non-unit stride filter *behind* a similarly
        sized unit-stride filter)."""
        return cls(
            n_streams=n_streams,
            unit_filter_entries=entries,
            stride_detector=StrideDetector.CZONE,
            czone_filter_entries=entries,
            czone_bits=czone_bits,
        )

    def with_(self, **changes) -> "StreamConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
