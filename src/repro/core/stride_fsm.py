"""The stride-verification finite state machine (paper Figure 7).

One FSM instance lives in each non-unit stride filter entry.  It watches
the sequence of miss addresses falling into one address-space partition
and verifies a constant stride: the difference between the third and
second addresses must equal the difference between the second and first.

States::

    INVALID --a--> META1 (last_addr = a)
    META1  --a--> META2 (stride = a - last_addr; last_addr = a)
    META2  --a--> verified  if a - last_addr == stride  -> allocate stream
           --a--> META2     otherwise (stride = a - last_addr; last_addr = a)

The FSM works on raw byte addresses; converting the verified stride to a
block stride is the caller's job.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["FsmState", "StrideFsm"]


class FsmState(enum.Enum):
    """Figure 7's states."""

    INVALID = "invalid"
    META1 = "meta1"
    META2 = "meta2"


@dataclass
class StrideFsm:
    """Per-partition stride detector.

    Attributes:
        state: current FSM state.
        last_addr: the previous miss address seen in this partition.
        stride: the current stride guess (meaningful in META2).
    """

    state: FsmState = FsmState.INVALID
    last_addr: int = 0
    stride: int = 0

    def observe(self, addr: int) -> Optional[int]:
        """Feed the next miss address in this partition.

        Returns:
            The verified byte-address stride when the third consecutive
            strided reference confirms it (the caller then allocates a
            stream and frees this entry), else None.
        """
        if self.state is FsmState.INVALID:
            self.last_addr = addr
            self.state = FsmState.META1
            return None
        if self.state is FsmState.META1:
            self.stride = addr - self.last_addr
            self.last_addr = addr
            self.state = FsmState.META2
            return None
        # META2: verify.
        delta = addr - self.last_addr
        if delta == self.stride and delta != 0:
            return delta
        self.stride = delta
        self.last_addr = addr
        return None

    @classmethod
    def starting_at(cls, addr: int) -> "StrideFsm":
        """An FSM that has already observed its first address."""
        return cls(state=FsmState.META1, last_addr=addr)
