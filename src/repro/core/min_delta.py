"""The minimum-delta stride scheme (paper Section 7, last paragraph).

The alternative the paper considered and rejected on hardware cost: cache
the last N miss addresses; on a stream miss, find the history entry at the
minimum absolute distance from the new address and use that distance as
the stride of a newly allocated stream.  The paper reports performance
similar to the partition (czone) scheme but a less attractive
implementation (an N-way magnitude comparison instead of a tag match).

We implement it both to reproduce that claim and as a baseline for the
czone scheme's ablation bench.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.core.nonunit import StrideHit

__all__ = ["MinDeltaDetector"]


class MinDeltaDetector:
    """History buffer with minimum-distance stride inference.

    Attributes:
        hits: strides returned (allocations triggered).
        observations: miss addresses presented.
    """

    def __init__(
        self,
        entries: int,
        block_bits: int,
        allow_negative: bool = True,
        max_stride_blocks: int = 1 << 20,
    ):
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if max_stride_blocks <= 0:
            raise ValueError(f"max_stride_blocks must be positive, got {max_stride_blocks}")
        self.capacity = entries
        self.block_bits = block_bits
        self.allow_negative = allow_negative
        self.max_stride_blocks = max_stride_blocks
        self.hits = 0
        self.observations = 0
        self._history: Deque[int] = deque(maxlen=entries)

    def observe(self, addr: int) -> Optional[StrideHit]:
        """Present a miss address that missed the unit-stride filter.

        Returns:
            A :class:`StrideHit` with the minimum-delta stride, or None
            when the history is empty or no usable delta exists (all
            deltas sub-block, over the stride cap, or negative with
            negative strides disabled).
        """
        self.observations += 1
        best: Optional[int] = None
        for past in self._history:
            delta = addr - past
            if delta == 0:
                continue
            if best is None or abs(delta) < abs(best):
                best = delta
        self._history.append(addr)
        if best is None:
            return None
        stride_blocks = self._block_stride(best)
        if stride_blocks == 0:
            return None
        if stride_blocks < 0 and not self.allow_negative:
            return None
        if abs(stride_blocks) > self.max_stride_blocks:
            return None
        self.hits += 1
        block = addr >> self.block_bits
        return StrideHit(
            start_block=block + stride_blocks,
            stride_blocks=stride_blocks,
            stride_bytes=best,
        )

    def _block_stride(self, delta_bytes: int) -> int:
        if delta_bytes >= 0:
            return delta_bytes >> self.block_bits
        return -((-delta_bytes) >> self.block_bits)

    def history(self) -> List[int]:
        """Recorded miss addresses, oldest first."""
        return list(self._history)
