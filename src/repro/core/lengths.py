"""Stream-length bookkeeping (paper Table 3).

The paper defines *stream length* as the number of references a stream
services before the regular access pattern breaks — operationally, the
number of head hits a stream provides between its allocation and its
reallocation (or the end of the run).  Table 3 reports, for each
benchmark, the percentage of all stream *hits* contributed by streams
whose length falls in the buckets 1-5, 6-10, 11-15, 16-20 and >20.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["LENGTH_BUCKETS", "bucket_label", "bucket_of", "StreamLengthHistogram"]

# (low, high) inclusive bounds; high None = unbounded (the paper's ">20").
LENGTH_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (1, 5),
    (6, 10),
    (11, 15),
    (16, 20),
    (21, 0),  # 0 sentinel = unbounded
)


def bucket_label(bucket: Tuple[int, int]) -> str:
    """Human-readable label matching the paper's column headings."""
    low, high = bucket
    if high == 0:
        return f">{low - 1}"
    return f"{low}-{high}"


def bucket_of(length: int) -> Tuple[int, int]:
    """The bucket containing ``length`` (which must be >= 1).

    Raises:
        ValueError: for lengths < 1 (zero-length streams contribute no
            hits and are tracked separately).
    """
    if length < 1:
        raise ValueError(f"stream length must be >= 1, got {length}")
    for low, high in LENGTH_BUCKETS:
        if high == 0 or length <= high:
            if length >= low:
                return (low, high)
    raise AssertionError("unreachable: buckets cover all lengths >= 1")


@dataclass
class StreamLengthHistogram:
    """Accumulates completed stream lengths, weighted by hits.

    Attributes:
        hits_by_bucket: total hits contributed by streams of each bucket.
        streams_by_bucket: number of completed streams in each bucket.
        zero_length_streams: allocations that never serviced a hit.
    """

    hits_by_bucket: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: {bucket: 0 for bucket in LENGTH_BUCKETS}
    )
    streams_by_bucket: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: {bucket: 0 for bucket in LENGTH_BUCKETS}
    )
    zero_length_streams: int = 0

    def record(self, length: int) -> None:
        """Record a completed stream that serviced ``length`` hits."""
        if length < 0:
            raise ValueError(f"stream length must be non-negative, got {length}")
        if length == 0:
            self.zero_length_streams += 1
            return
        bucket = bucket_of(length)
        self.hits_by_bucket[bucket] += length
        self.streams_by_bucket[bucket] += 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits_by_bucket.values())

    @property
    def total_streams(self) -> int:
        """Completed streams including zero-length allocations."""
        return sum(self.streams_by_bucket.values()) + self.zero_length_streams

    def percent_hits(self) -> Dict[Tuple[int, int], float]:
        """Table 3's row: percent of hits per bucket (0.0 if no hits)."""
        total = self.total_hits
        if not total:
            return {bucket: 0.0 for bucket in LENGTH_BUCKETS}
        return {
            bucket: 100.0 * hits / total for bucket, hits in self.hits_by_bucket.items()
        }

    def as_row(self) -> List[float]:
        """Percent-hits values in bucket order (for table rendering)."""
        percents = self.percent_hits()
        return [percents[bucket] for bucket in LENGTH_BUCKETS]
