"""Serial hybrid stacks: mechanism in front of mechanism (VC+SB, MC+SB).

Jouppi's combined designs place a small associative buffer in front of
the stream buffers: a demand miss probes the members front to back and is
serviced by the first that hits; members behind never observe it.
Write-backs pass *every* member (each must keep its state coherent with
memory traffic).

Two production formulations exist and are proven equivalent:

* **online** — :class:`HybridStack` presents each event to the members in
  order as it arrives (this module);
* **two-phase residual** — each front member filters the trace via
  ``run_filter`` and the next member replays the residual (unserviced
  demand misses plus all write-backs, original order); used by
  ``replay_secondary`` so a trailing stream member can run on the
  vectorized flat-window engine.

They agree because a front member's state never depends on the members
behind it, and the residual preserves exactly the event subsequence a
back member would see online.  The ``hybrid`` differ stage checks both
against :class:`RefHybridStack` over the 200-seed corpus.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.mechanisms.base import MechanismConfig, MechStats, SecondaryMechanism
from repro.mechanisms.misscache import MissCache
from repro.mechanisms.streams import StreamMechanism
from repro.mechanisms.victim import VictimCache

__all__ = ["HybridStack", "build_mechanism", "combine_member_stats"]


def build_mechanism(config: MechanismConfig) -> SecondaryMechanism:
    """Instantiate the mechanism described by ``config``."""
    if config.kind == "streams":
        return StreamMechanism(config)
    if config.kind == "victim":
        return VictimCache(config)
    if config.kind == "misscache":
        return MissCache(config)
    if config.kind == "hybrid":
        return HybridStack(config)
    raise ValueError(f"unknown mechanism kind {config.kind!r}")


def combine_member_stats(
    config: MechanismConfig, member_stats: Sequence[MechStats]
) -> MechStats:
    """Fold per-member statistics into the stack's combined view.

    The front member saw every event, so it owns the trace-level counters;
    hits and resource counters sum across members.  Works identically for
    the online and two-phase formulations.
    """
    front = member_stats[0]
    streams = next((ms.streams for ms in member_stats if ms.streams is not None), None)
    return MechStats(
        config=config,
        demand_misses=front.demand_misses,
        hits=sum(ms.hits for ms in member_stats),
        ifetch_misses=front.ifetch_misses,
        writebacks=front.writebacks,
        invalidations=sum(ms.invalidations for ms in member_stats),
        allocations=sum(ms.allocations for ms in member_stats),
        evictions=sum(ms.evictions for ms in member_stats),
        writebacks_out=sum(ms.writebacks_out for ms in member_stats),
        prefetches_issued=sum(ms.prefetches_issued for ms in member_stats),
        prefetches_used=sum(ms.prefetches_used for ms in member_stats),
        member_hits=tuple(ms.hits for ms in member_stats),
        streams=streams,
    )


class HybridStack(SecondaryMechanism):
    """Online serial composition of member mechanisms."""

    def __init__(self, config: MechanismConfig):
        if config.kind != "hybrid":
            raise ValueError(f"HybridStack requires kind='hybrid', got {config.kind!r}")
        super().__init__(config)
        self.members: List[SecondaryMechanism] = [
            build_mechanism(member) for member in config.members
        ]

    def _probe(self, addr: int, block: int, kind: int) -> bool:
        for member in self.members:
            if member.handle_miss(addr, kind):
                return True
        return False

    def _writeback(self, block: int) -> None:
        addr = block << self.config.block_bits
        for member in self.members:
            member.handle_writeback(addr)

    def finalize(self) -> MechStats:
        combined = combine_member_stats(
            self.config, [member.finalize() for member in self.members]
        )
        if (
            combined.demand_misses != self.stats.demand_misses
            or combined.hits != self.stats.hits
        ):
            raise AssertionError("hybrid member counters diverged from the stack's")
        self.stats = combined
        return combined
