"""Common protocol for secondary mechanisms (paper Section 1, Jouppi '90).

The paper evaluates stream buffers as *the* secondary mechanism between a
small L1 and main memory, but Jouppi's original proposal positioned them
next to two siblings: the **miss cache** (a tiny fully-associative cache
that duplicates recently-missed blocks) and the **victim cache** (the same
buffer holding L1 *evictions* instead, so it is exclusive of L1).  This
module defines the shared vocabulary so all three — plus serial hybrid
stacks such as VC+SB — can be swept, screened, stored, and differ-checked
as peers of :class:`~repro.core.prefetcher.StreamPrefetcher`.

A mechanism consumes the same L1 miss trace a stream prefetcher does:
demand-miss events (read / write / ifetch) it may service on-chip, and
write-back events that travel past it toward memory.  Its figure of merit
is the same as the paper's: the fraction of demand misses serviced without
going to main memory (``hit_rate``), plus bandwidth/allocation accounting
compatible with :class:`~repro.caches.cache.CacheStats` and
:class:`~repro.core.bandwidth.BandwidthReport`.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.caches.cache import MissEventKind, MissTrace
from repro.core.bandwidth import BandwidthReport
from repro.core.config import StreamConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.prefetcher import StreamStats

__all__ = [
    "MechanismConfig",
    "MechStats",
    "SecondaryMechanism",
    "mechanism_label",
    "mechanism_to_dict",
    "mechanism_from_dict",
    "parse_mechanism_spec",
    "MECHANISM_KINDS",
]

#: Recognised mechanism kinds (the tagged-union discriminator).
MECHANISM_KINDS = ("streams", "victim", "misscache", "hybrid")


@dataclass(frozen=True)
class MechanismConfig:
    """Tagged-union description of one secondary mechanism.

    ``kind`` selects the variant; only the fields relevant to that variant
    are meaningful (the rest keep their defaults so configs hash and
    serialise canonically):

    * ``"streams"`` — ``streams`` holds the :class:`StreamConfig`.
    * ``"victim"`` — ``entries`` victim-buffer blocks; ``shadow_sets`` ×
      ``shadow_assoc`` is the shadow L1 tag geometry used to reconstruct
      evictions from the miss trace (defaults match ``CacheConfig.paper_l1``).
    * ``"misscache"`` — ``entries`` miss-cache blocks.
    * ``"hybrid"`` — ``members`` is the front-to-back serial stack
      (no nested hybrids; at most one stream member, which must be last).
    """

    kind: str
    entries: int = 0
    shadow_sets: int = 256
    shadow_assoc: int = 4
    block_bits: int = 6
    streams: Optional[StreamConfig] = None
    members: Tuple["MechanismConfig", ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in MECHANISM_KINDS:
            raise ValueError(f"unknown mechanism kind {self.kind!r}")
        if self.kind == "streams":
            if self.streams is None:
                raise ValueError("streams mechanism requires a StreamConfig")
            if self.streams.block_bits != self.block_bits:
                raise ValueError(
                    f"stream config block_bits {self.streams.block_bits} != "
                    f"mechanism block_bits {self.block_bits}"
                )
        elif self.kind in ("victim", "misscache"):
            if self.entries <= 0:
                raise ValueError(f"{self.kind} mechanism requires entries > 0")
            if self.kind == "victim":
                if self.shadow_sets <= 0 or self.shadow_sets & (self.shadow_sets - 1):
                    raise ValueError("shadow_sets must be a positive power of two")
                if self.shadow_assoc <= 0:
                    raise ValueError("shadow_assoc must be positive")
        else:  # hybrid
            if len(self.members) < 2:
                raise ValueError("hybrid stack needs at least two members")
            if any(m.kind == "hybrid" for m in self.members):
                raise ValueError("hybrid stacks do not nest")
            stream_positions = [i for i, m in enumerate(self.members) if m.kind == "streams"]
            if len(stream_positions) > 1:
                raise ValueError("hybrid stack may hold at most one stream member")
            if stream_positions and stream_positions[0] != len(self.members) - 1:
                raise ValueError("a stream member must be last in the stack")
            if any(m.block_bits != self.block_bits for m in self.members):
                raise ValueError("hybrid members must share the stack's block_bits")

    # -- constructors --------------------------------------------------------

    @classmethod
    def for_streams(cls, config: Optional[StreamConfig] = None) -> "MechanismConfig":
        """A stream-buffer mechanism (defaults to the paper's best config)."""
        config = config if config is not None else StreamConfig.non_unit()
        return cls(kind="streams", streams=config, block_bits=config.block_bits)

    @classmethod
    def victim(
        cls,
        entries: int = 16,
        *,
        shadow_sets: int = 256,
        shadow_assoc: int = 4,
        block_bits: int = 6,
    ) -> "MechanismConfig":
        return cls(
            kind="victim",
            entries=entries,
            shadow_sets=shadow_sets,
            shadow_assoc=shadow_assoc,
            block_bits=block_bits,
        )

    @classmethod
    def misscache(cls, entries: int = 16, *, block_bits: int = 6) -> "MechanismConfig":
        return cls(kind="misscache", entries=entries, block_bits=block_bits)

    @classmethod
    def hybrid(cls, *members: "MechanismConfig") -> "MechanismConfig":
        if not members:
            raise ValueError("hybrid stack needs members")
        return cls(kind="hybrid", members=tuple(members), block_bits=members[0].block_bits)

    @property
    def label(self) -> str:
        return mechanism_label(self)


@dataclass
class MechStats:
    """Counters produced by one mechanism run.

    The hit-rate contract mirrors :class:`StreamStats`: ``demand_misses``
    is the paper's denominator (every L1 miss presented), ``hits`` the
    subset serviced on-chip.  ``writebacks_out`` counts dirty victim
    blocks the mechanism itself pushed to memory (extra write traffic);
    ``prefetches_issued``/``prefetches_used`` are non-zero only when the
    mechanism speculates (streams).
    """

    config: MechanismConfig
    demand_misses: int = 0
    hits: int = 0
    ifetch_misses: int = 0
    writebacks: int = 0
    invalidations: int = 0
    allocations: int = 0
    evictions: int = 0
    writebacks_out: int = 0
    prefetches_issued: int = 0
    prefetches_used: int = 0
    member_hits: Tuple[int, ...] = ()
    streams: Optional["StreamStats"] = None

    @property
    def misses(self) -> int:
        """Demand misses that escaped to the next level."""
        return self.demand_misses - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of demand misses serviced by the mechanism (0..1)."""
        if not self.demand_misses:
            return 0.0
        return self.hits / self.demand_misses

    @property
    def hit_rate_percent(self) -> float:
        return 100.0 * self.hit_rate

    @property
    def stream_hits(self) -> int:
        """Alias so :class:`MechStats` slots into ``RunResult`` reporting."""
        return self.hits

    @property
    def bandwidth(self) -> BandwidthReport:
        """Extra-bandwidth accounting (speculative traffic only)."""
        depth = self.streams.config.depth if self.streams is not None else 1
        return BandwidthReport(
            prefetches_issued=self.prefetches_issued,
            prefetches_used=self.prefetches_used,
            l1_misses=self.demand_misses,
            allocations=self.allocations,
            depth=depth,
        )


class SecondaryMechanism(abc.ABC):
    """Event-driven protocol shared by every secondary mechanism.

    Subclasses implement ``_probe`` (one demand miss; return True when
    serviced on-chip) and ``_writeback`` (a dirty block passing by).  The
    base class owns the shared counters so the per-event and bulk paths
    count identically — the differ relies on that.
    """

    def __init__(self, config: MechanismConfig):
        self.config = config
        self.stats = MechStats(config=config)

    # -- event API -----------------------------------------------------------

    def handle_miss(self, addr: int, kind: int = int(MissEventKind.READ_MISS)) -> bool:
        """Present one demand miss; True when the mechanism serviced it."""
        stats = self.stats
        stats.demand_misses += 1
        if kind == int(MissEventKind.IFETCH_MISS):
            stats.ifetch_misses += 1
        serviced = self._probe(addr, addr >> self.config.block_bits, kind)
        if serviced:
            stats.hits += 1
        return serviced

    def handle_writeback(self, addr: int) -> None:
        """A dirty block travelling to memory passes the mechanism."""
        self.stats.writebacks += 1
        self._writeback(addr >> self.config.block_bits)

    def reset(self) -> None:
        """Discard all state and counters (fresh run)."""
        self.__init__(self.config)  # type: ignore[misc]

    # -- bulk API ------------------------------------------------------------

    def run(self, miss_trace: MissTrace) -> MechStats:
        """Consume a whole miss trace and return the final statistics."""
        self._check_geometry(miss_trace)
        wb_kind = int(MissEventKind.WRITEBACK)
        handle_miss = self.handle_miss
        handle_writeback = self.handle_writeback
        for addr, kind in zip(miss_trace.addrs.tolist(), miss_trace.kinds.tolist()):
            if kind == wb_kind:
                handle_writeback(addr)
            else:
                handle_miss(addr, kind)
        return self.finalize()

    def run_filter(self, miss_trace: MissTrace) -> Tuple[MechStats, MissTrace]:
        """Consume a trace; also return the residual trace for the next
        stack member: unserviced demand misses plus *all* write-backs, in
        original order.  (Residuals drop PCs — no mechanism consumes them.)
        """
        self._check_geometry(miss_trace)
        wb_kind = int(MissEventKind.WRITEBACK)
        handle_miss = self.handle_miss
        handle_writeback = self.handle_writeback
        keep: List[int] = []
        for i, (addr, kind) in enumerate(
            zip(miss_trace.addrs.tolist(), miss_trace.kinds.tolist())
        ):
            if kind == wb_kind:
                handle_writeback(addr)
                keep.append(i)
            elif not handle_miss(addr, kind):
                keep.append(i)
        idx = np.asarray(keep, dtype=np.int64)
        residual = MissTrace(
            addrs=miss_trace.addrs[idx],
            kinds=miss_trace.kinds[idx],
            block_bits=miss_trace.block_bits,
        )
        return self.finalize(), residual

    def finalize(self) -> MechStats:
        """Close out the run; subclasses fold component counters here."""
        return self.stats

    # -- subclass surface ----------------------------------------------------

    @abc.abstractmethod
    def _probe(self, addr: int, block: int, kind: int) -> bool:
        """Service one demand miss for ``block``; True when hit on-chip."""

    @abc.abstractmethod
    def _writeback(self, block: int) -> None:
        """Observe a dirty ``block`` travelling to memory."""

    def _check_geometry(self, miss_trace: MissTrace) -> None:
        if miss_trace.block_bits != self.config.block_bits:
            raise ValueError(
                f"miss trace block_bits {miss_trace.block_bits} != "
                f"mechanism block_bits {self.config.block_bits}"
            )


# -- (de)serialisation -------------------------------------------------------


def mechanism_to_dict(config: MechanismConfig) -> dict:
    """JSON-safe plain-type rendering; exact (ints/bools/strings only)."""
    return {
        "kind": config.kind,
        "entries": config.entries,
        "shadow_sets": config.shadow_sets,
        "shadow_assoc": config.shadow_assoc,
        "block_bits": config.block_bits,
        "streams": None
        if config.streams is None
        else {f.name: getattr(config.streams, f.name) for f in dataclasses.fields(config.streams)},
        "members": [mechanism_to_dict(m) for m in config.members],
    }


def mechanism_from_dict(payload: dict) -> MechanismConfig:
    """Rebuild a :class:`MechanismConfig` written by :func:`mechanism_to_dict`.

    Raises:
        KeyError/TypeError/ValueError: on malformed payloads (store
        callers treat any of these as a miss; wire callers as a 400).
    """
    streams = payload.get("streams")
    return MechanismConfig(
        kind=payload["kind"],
        entries=int(payload.get("entries", 0)),
        shadow_sets=int(payload.get("shadow_sets", 256)),
        shadow_assoc=int(payload.get("shadow_assoc", 4)),
        block_bits=int(payload.get("block_bits", 6)),
        streams=None if streams is None else StreamConfig(**streams),
        members=tuple(mechanism_from_dict(m) for m in payload.get("members") or ()),
    )


# -- labels and parsing ------------------------------------------------------


def mechanism_label(config: MechanismConfig) -> str:
    """Short human/manifest label, invertible by :func:`parse_mechanism_spec`
    for the spec-expressible subset."""
    if config.kind == "streams":
        return "streams"
    if config.kind == "victim":
        return f"victim:{config.entries}"
    if config.kind == "misscache":
        return f"misscache:{config.entries}"
    return "+".join(mechanism_label(m) for m in config.members)


def _parse_single(token: str) -> MechanismConfig:
    name, _, arg = token.strip().partition(":")
    name = name.strip().lower()
    if name in ("streams", "sb"):
        if arg:
            raise ValueError(f"streams takes no :N argument (got {token!r})")
        return MechanismConfig.for_streams()
    if name in ("victim", "vc"):
        return MechanismConfig.victim(int(arg) if arg else 16)
    if name in ("misscache", "miss", "mc"):
        return MechanismConfig.misscache(int(arg) if arg else 16)
    raise ValueError(
        f"unknown mechanism {name!r} (expected streams, victim[:N], "
        f"misscache[:N], or a '+'-joined hybrid)"
    )


def parse_mechanism_spec(text: str) -> MechanismConfig:
    """Parse a CLI mechanism spec.

    Examples: ``streams``, ``victim:8``, ``misscache`` (16 entries), and
    hybrid stacks like ``victim:4+streams`` (front to back).
    """
    parts = [p for p in (piece.strip() for piece in text.split("+")) if p]
    if not parts:
        raise ValueError("empty mechanism spec")
    members = [_parse_single(p) for p in parts]
    if len(members) == 1:
        return members[0]
    return MechanismConfig.hybrid(*members)
