"""Stream buffers adapted to the :class:`SecondaryMechanism` protocol.

The adapter wraps a :class:`StreamPrefetcher` and reports the same
hit-rate the paper does: only :data:`Lookup.HIT` services a miss
(``in_flight_matches`` are tracked inside the embedded
:class:`StreamStats` but do not count as mechanism hits).  The full
stream statistics survive on ``MechStats.streams`` so bandwidth/EB
reporting keeps its depth-aware accounting.
"""

from __future__ import annotations

from repro.caches.cache import MissEventKind
from repro.core.prefetcher import Lookup, StreamPrefetcher, StreamStats
from repro.mechanisms.base import MechanismConfig, MechStats, SecondaryMechanism

__all__ = ["StreamMechanism", "mech_stats_from_streams"]


def mech_stats_from_streams(config: MechanismConfig, stream_stats: StreamStats) -> MechStats:
    """Wrap a finished :class:`StreamStats` as mechanism statistics.

    Used both by the adapter's ``finalize`` and by the replay dispatcher
    when the vectorized flat-window engine produced the stream stats — the
    wrapping must be identical either way for store round-trips to be
    bit-exact.
    """
    return MechStats(
        config=config,
        demand_misses=stream_stats.demand_misses,
        hits=stream_stats.stream_hits,
        ifetch_misses=stream_stats.ifetch_misses,
        writebacks=stream_stats.writebacks,
        invalidations=stream_stats.invalidations,
        allocations=stream_stats.allocations,
        prefetches_issued=stream_stats.prefetches_issued,
        prefetches_used=stream_stats.prefetches_used,
        streams=stream_stats,
    )


class StreamMechanism(SecondaryMechanism):
    """A :class:`StreamPrefetcher` behind the mechanism protocol."""

    def __init__(self, config: MechanismConfig):
        if config.kind != "streams":
            raise ValueError(f"StreamMechanism requires kind='streams', got {config.kind!r}")
        super().__init__(config)
        assert config.streams is not None
        self._prefetcher = StreamPrefetcher(config.streams)

    def _probe(self, addr: int, block: int, kind: int) -> bool:
        result = self._prefetcher.handle_miss(
            addr, is_ifetch=kind == int(MissEventKind.IFETCH_MISS)
        )
        return result is Lookup.HIT

    def _writeback(self, block: int) -> None:
        # The prefetcher keys on byte addresses; reconstruct one.
        self._prefetcher.handle_writeback(block << self.config.block_bits)

    def finalize(self) -> MechStats:
        stream_stats = self._prefetcher.finalize()
        stats = mech_stats_from_streams(self.config, stream_stats)
        # The base class counted events as they were presented; the two
        # views must agree or the adapter dropped an event.
        if stats.demand_misses != self.stats.demand_misses or stats.hits != self.stats.hits:
            raise AssertionError("stream adapter counters diverged from prefetcher")
        self.stats = stats
        return stats
