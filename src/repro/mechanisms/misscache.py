"""Miss cache as a secondary mechanism (Jouppi '90, Section 3.1).

A miss cache is a tiny fully-associative LRU cache loaded with every
block that misses in L1 — it *duplicates* L1 contents (inclusive), so it
only helps when a block is evicted from L1 and re-missed while its copy
still survives the miss cache's own LRU churn.

Event semantics, fixed by :class:`RefMissCache` in ``repro.check``:

* demand miss on ``b``: probe — a hit moves ``b`` to MRU; a miss installs
  ``b`` MRU (``allocations``), dropping the LRU entry on overflow
  (``evictions``; never dirty, the copy in L1 owns the dirty state).
* write-back of ``b``: L1 evicted dirty ``b`` — the duplicate is now the
  only copy but a miss cache holds clean duplicates only, so invalidate
  it (``invalidations``).  No write traffic is added (``writebacks_out``
  stays 0).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mechanisms.base import MechanismConfig, SecondaryMechanism

__all__ = ["MissCache"]


class MissCache(SecondaryMechanism):
    """Fully-associative LRU cache of recently-missed blocks."""

    def __init__(self, config: MechanismConfig):
        if config.kind != "misscache":
            raise ValueError(f"MissCache requires kind='misscache', got {config.kind!r}")
        super().__init__(config)
        self._buffer: "OrderedDict[int, None]" = OrderedDict()

    def _probe(self, addr: int, block: int, kind: int) -> bool:
        buffer = self._buffer
        if block in buffer:
            buffer.move_to_end(block)
            return True
        buffer[block] = None
        self.stats.allocations += 1
        if len(buffer) > self.config.entries:
            buffer.popitem(last=False)
            self.stats.evictions += 1
        return False

    def _writeback(self, block: int) -> None:
        if block in self._buffer:
            del self._buffer[block]
            self.stats.invalidations += 1
