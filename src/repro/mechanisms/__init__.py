"""Secondary mechanisms: stream buffers and their Jouppi '90 siblings.

The paper's question — can a small hardware structure replace a
megabyte-class L2? — is asked here for the whole mechanism zoo:

* :class:`StreamMechanism` — the paper's stream buffers (adapter over
  :class:`~repro.core.prefetcher.StreamPrefetcher`);
* :class:`VictimCache` — small FA buffer of L1 evictions (exclusive);
* :class:`MissCache` — small FA cache of missed blocks (inclusive);
* :class:`HybridStack` — serial composition (VC+SB, MC+SB).

All share the :class:`SecondaryMechanism` protocol and produce
:class:`MechStats`.  Engine-aware replay (vector dispatch for stream
members) lives in :func:`repro.sim.vector.replay_secondary`; this package
stays free of sim-layer imports so oracles and tools can use it directly.

See ``docs/mechanisms.md`` for semantics and composition rules.
"""

from repro.mechanisms.base import (
    MECHANISM_KINDS,
    MechanismConfig,
    MechStats,
    SecondaryMechanism,
    mechanism_from_dict,
    mechanism_label,
    mechanism_to_dict,
    parse_mechanism_spec,
)
from repro.mechanisms.hybrid import HybridStack, build_mechanism, combine_member_stats
from repro.mechanisms.misscache import MissCache
from repro.mechanisms.streams import StreamMechanism, mech_stats_from_streams
from repro.mechanisms.victim import VictimCache

__all__ = [
    "MECHANISM_KINDS",
    "MechanismConfig",
    "MechStats",
    "SecondaryMechanism",
    "mechanism_label",
    "mechanism_to_dict",
    "mechanism_from_dict",
    "parse_mechanism_spec",
    "HybridStack",
    "build_mechanism",
    "combine_member_stats",
    "MissCache",
    "StreamMechanism",
    "mech_stats_from_streams",
    "VictimCache",
]
