"""Victim cache as a secondary mechanism (Jouppi '90, Section 3.2).

A victim cache is a small fully-associative buffer that holds blocks
*evicted* from L1 — it is exclusive of L1, so conflict misses that
ping-pong between a few blocks in one set can be serviced on-chip.

The simulator is trace-driven: it sees the L1 *miss* stream, not the L1's
internal evictions.  We therefore reconstruct evictions with a **shadow
tag array** mirroring the L1 geometry (``shadow_sets`` × ``shadow_assoc``),
maintained in miss order with MRU replacement: each demand miss installs
its block, and the shadow victim of that install enters the victim buffer.
This is the standard trace-level victim-cache approximation (the true L1
uses random replacement, whose eviction choices are not recoverable from
the miss trace alone); the golden oracle and differ pin the approximation
bit-exactly.

Event semantics, fixed by :class:`RefVictimCache` in ``repro.check``:

* demand miss on ``b``: probe the buffer — a hit removes ``b`` (it swaps
  back into L1; the dirty bit returns with it).  Then shadow-install
  ``b``; if the set overflows, the shadow victim enters the buffer MRU as
  a clean block (``allocations``), and a buffer overflow drops the LRU
  entry (``evictions``; dirty drops count ``writebacks_out``).
* write-back of ``b``: L1 evicted dirty ``b``.  Remove ``b`` from the
  shadow set and insert it dirty into the buffer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.mechanisms.base import MechanismConfig, SecondaryMechanism

__all__ = ["VictimCache"]


class VictimCache(SecondaryMechanism):
    """Fully-associative LRU victim buffer behind a shadow L1 tag array."""

    def __init__(self, config: MechanismConfig):
        if config.kind != "victim":
            raise ValueError(f"VictimCache requires kind='victim', got {config.kind!r}")
        super().__init__(config)
        # Shadow sets are MRU-first block lists; the buffer maps
        # block -> dirty with LRU order (oldest first).
        self._shadow: List[List[int]] = [[] for _ in range(config.shadow_sets)]
        self._buffer: "OrderedDict[int, bool]" = OrderedDict()

    def _probe(self, addr: int, block: int, kind: int) -> bool:
        buffer = self._buffer
        serviced = block in buffer
        if serviced:
            # Swap back into L1; the (possibly dirty) block now lives there
            # and its next eviction will re-surface via the trace.
            del buffer[block]
        tags = self._shadow[block & (self.config.shadow_sets - 1)]
        if block in tags:
            tags.remove(block)
            tags.insert(0, block)
        else:
            tags.insert(0, block)
            if len(tags) > self.config.shadow_assoc:
                self._insert_victim(tags.pop(), dirty=False)
        return serviced

    def _writeback(self, block: int) -> None:
        tags = self._shadow[block & (self.config.shadow_sets - 1)]
        if block in tags:
            tags.remove(block)
        self._insert_victim(block, dirty=True)

    def _insert_victim(self, block: int, dirty: bool) -> None:
        stats = self.stats
        buffer = self._buffer
        stats.allocations += 1
        if block in buffer:
            buffer[block] = buffer[block] or dirty
            buffer.move_to_end(block)
            return
        buffer[block] = dirty
        if len(buffer) > self.config.entries:
            _, old_dirty = buffer.popitem(last=False)
            stats.evictions += 1
            if old_dirty:
                stats.writebacks_out += 1
